//! The **Apache Flink Statefun** binding (paper §III): exactly-once
//! stateful dataflow.
//!
//! Every service becomes a keyed stateful function; the checkout workflow
//! is a message cascade inside the dataflow, and clients observe results
//! through the committed egress. Exactly-once processing is inherited
//! from `om-dataflow`'s epoch checkpointing: no event of the workflow is
//! ever lost or double-applied, even across injected crashes — but there
//! are **no cross-function transactions**, so the atomicity criterion is
//! met only in the absence of logic-level rejections, and the dashboard
//! remains two non-atomic reads (paper: Statefun "shows lower scalability
//! compared to Orleans Eventual but outperforms Orleans Transactions").

use crossbeam::channel::{bounded, Sender};
use om_common::entity::{
    Customer, OrderEntry, OrderStatus, PaymentMethod, Product, Seller, SellerDashboard,
};
use om_common::entity::CartItem;
use om_common::event::OrderLineRef;
use om_common::ids::*;
use om_common::stats::CounterSet;
use om_common::time::EventTime;
use om_common::{Money, OmError, OmResult};
use om_dataflow::{Address, CheckpointStore, Dataflow, Effects};
use parking_lot::{Mutex, RwLock};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use super::kinds;
use crate::api::{
    CheckoutItem, CheckoutOutcome, CheckoutRequest, MarketSnapshot, MarketplacePlatform,
    PackageSnapshot, PlatformKind, StockSnapshot,
};
use crate::domain::{
    CartService, OrderService, PaymentService, ProductReplica, SellerView,
    ShipmentService, StockService,
};

/// Function type for the delivery workflow coordinator.
const DELIVERY_FN: &str = "delivery";

/// Function type of the crash-recovery drill: a registered no-op, so a
/// drill wave burns invocations (arming the injected crash) without ever
/// touching business state or the unroutable counter.
const DRILL_FN: &str = "recovery_drill";

/// Messages flowing through the dataflow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum DfMsg {
    // Ingestion.
    IngestProduct(Product),
    IngestStock { key: StockKey, qty: u32 },
    IngestSeller(Seller),
    IngestCustomer(Customer),

    // Cart / checkout chain.
    CartAdd(CartItem),
    Checkout { tid: TransactionId, method: PaymentMethod, decline_rate_bp: u32, at: EventTime },
    Reserve {
        tid: TransactionId,
        customer: CustomerId,
        item: CartItem,
        method: PaymentMethod,
        decline_rate_bp: u32,
        at: EventTime,
    },
    BeginAssembly { tid: TransactionId, customer: CustomerId, expected: usize, at: EventTime },
    StockAnswer {
        tid: TransactionId,
        customer: CustomerId,
        item: CartItem,
        reserved: bool,
        method: PaymentMethod,
        decline_rate_bp: u32,
        at: EventTime,
    },
    ProcessPayment {
        tid: TransactionId,
        order: OrderId,
        customer: CustomerId,
        method: PaymentMethod,
        amount: Money,
        decline_rate_bp: u32,
        lines: Vec<OrderLineRef>,
        at: EventTime,
    },
    CreatePackages {
        tid: TransactionId,
        shipment: ShipmentId,
        order: OrderId,
        customer: CustomerId,
        lines: Vec<OrderLineRef>,
        at: EventTime,
    },
    SetStatus { order: OrderId, status: OrderStatus, at: EventTime },
    PackagesDelivered { order: OrderId, packages: u32, at: EventTime },
    AddEntry(OrderEntry),
    ApplyStatus { order: OrderId, status: OrderStatus },
    PaymentResult { approved: bool, amount: Money },
    CustomerDelivery,

    // Post-payment stock settlement.
    StockConfirm { qty: u32 },
    StockCancel { qty: u32 },

    // Product replication.
    PriceUpdate { price: Money },
    ProductDelete,
    ReplicaUpdate { price: Money, version: u64 },
    ReplicaDelete { version: u64 },
    StockDelete { version: u64 },

    // Update-delivery workflow.
    DeliveryRequest { tid: TransactionId, sellers: Vec<SellerId>, max: u32, at: EventTime },
    OldestQuery { tid: TransactionId },
    OldestReply { tid: TransactionId, seller: SellerId, oldest: Option<EventTime> },
    DeliverOldest { tid: TransactionId, at: EventTime },
    DeliverReply { tid: TransactionId, seller: SellerId, packages: u32 },

    // Egress records.
    Egress(Eg),
}

/// Client-visible completions, released at checkpoint commit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Eg {
    CheckoutDone {
        tid: TransactionId,
        order: Option<OrderId>,
        total: Option<Money>,
        accepted: bool,
        reason: String,
    },
    DeliveryDone { tid: TransactionId, packages: u32 },
}

impl Eg {
    fn tid(&self) -> TransactionId {
        match self {
            Eg::CheckoutDone { tid, .. } | Eg::DeliveryDone { tid, .. } => *tid,
        }
    }
}

/// Completion registry: waiters are registered *before* the triggering
/// submission, and completions that arrive with no waiter yet are parked
/// until claimed (the pump races client registration otherwise).
#[derive(Default)]
struct WaiterRegistry {
    waiting: HashMap<u64, Sender<Eg>>,
    orphaned: HashMap<u64, Eg>,
}

impl WaiterRegistry {
    fn complete(&mut self, eg: Eg) {
        let tid = eg.tid().0;
        match self.waiting.remove(&tid) {
            Some(tx) => {
                let _ = tx.send(eg);
            }
            None => {
                self.orphaned.insert(tid, eg);
            }
        }
    }

    fn register(&mut self, tid: u64, tx: Sender<Eg>) {
        if let Some(eg) = self.orphaned.remove(&tid) {
            let _ = tx.send(eg);
        } else {
            self.waiting.insert(tid, tx);
        }
    }
}

// Keyed state is encoded with the workspace's compact binary codec: the
// runtime checkpoints raw bytes, and every invocation pays a decode +
// encode, so the codec's speed directly bounds function throughput
// (real Statefun uses binary Protobuf state for the same reason).
fn load<T: DeserializeOwned>(state: Option<&[u8]>) -> Option<T> {
    state.map(|b| om_common::codec::from_bytes(b).expect("state deserializes"))
}

fn save<T: Serialize>(out: &mut Effects<DfMsg>, value: &T) {
    out.set_state(om_common::codec::to_bytes(value).expect("state serializes"));
}

fn addr(fn_type: &'static str, key: u64) -> Address {
    Address::new(fn_type, key)
}

/// Delivery-workflow coordinator state (keyed by transaction id).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct DeliveryState {
    max: u32,
    waiting_oldest: usize,
    ranked: Vec<(EventTime, SellerId)>,
    waiting_deliver: usize,
    packages: u32,
    at: EventTime,
}

/// Every function type the marketplace topology registers — the closed
/// set [`DfRecordCodec`] interns persisted addresses against.
const FN_TYPES: [&str; 11] = [
    kinds::PRODUCT,
    kinds::REPLICA,
    kinds::STOCK,
    kinds::CART,
    kinds::ORDER,
    kinds::PAYMENT,
    kinds::SHIPMENT,
    kinds::SELLER,
    kinds::CUSTOMER,
    DELIVERY_FN,
    DRILL_FN,
];

/// Codec for persisted ingress records. [`Address::fn_type`] is a
/// `&'static str`, which no deserializer can mint — so the codec writes
/// the name as bytes and interns it back against the topology's closed
/// function set ([`FN_TYPES`]) on decode, exactly as the checkpoint
/// store interns function types during state recovery.
struct DfRecordCodec;

fn intern_fn_type(name: &str) -> Option<&'static str> {
    FN_TYPES.iter().copied().find(|k| *k == name)
}

impl om_log::RecordCodec<(Address, DfMsg)> for DfRecordCodec {
    fn encode(&self, (addr, msg): &(Address, DfMsg)) -> OmResult<Vec<u8>> {
        let body = om_common::codec::to_bytes(msg)
            .map_err(|e| OmError::Internal(format!("ingress record encode: {e:?}")))?;
        let mut out = Vec::with_capacity(2 + addr.fn_type.len() + 8 + body.len());
        out.extend_from_slice(&(addr.fn_type.len() as u16).to_be_bytes());
        out.extend_from_slice(addr.fn_type.as_bytes());
        out.extend_from_slice(&addr.key.to_le_bytes());
        out.extend_from_slice(&body);
        Ok(out)
    }

    fn decode(&self, bytes: &[u8]) -> OmResult<(Address, DfMsg)> {
        let corrupt = || OmError::Internal("corrupt persisted ingress record".into());
        if bytes.len() < 2 {
            return Err(corrupt());
        }
        let fn_len = u16::from_be_bytes(bytes[..2].try_into().unwrap()) as usize;
        if bytes.len() < 2 + fn_len + 8 {
            return Err(corrupt());
        }
        let name = std::str::from_utf8(&bytes[2..2 + fn_len]).map_err(|_| corrupt())?;
        let fn_type = intern_fn_type(name).ok_or_else(|| {
            OmError::Internal(format!("persisted ingress record targets unknown function {name:?}"))
        })?;
        let key = u64::from_le_bytes(bytes[2 + fn_len..10 + fn_len].try_into().unwrap());
        let msg = om_common::codec::from_bytes(&bytes[10 + fn_len..])
            .map_err(|e| OmError::Internal(format!("ingress record decode: {e:?}")))?;
        Ok((Address::new(fn_type, key), msg))
    }
}

/// Opens (or recovers) the dataflow binding's **persistent ingress
/// topic** at `dir` — segment files + offset index per partition, so a
/// cold-started platform can replay in-flight records from disk alone.
/// The factory calls this when a `PlatformSpec` carries a `data_dir`.
pub fn persistent_ingress(
    dir: impl AsRef<std::path::Path>,
    partitions: usize,
) -> OmResult<Arc<om_log::PersistentTopic<(Address, DfMsg)>>> {
    persistent_ingress_with(dir, partitions, om_log::PersistentTopicOptions::default())
}

/// [`persistent_ingress`] with explicit topic options — how the factory
/// threads the spec's group-flush window down to the ingress log, so
/// durable matrix cells batch the per-record segment flush the same way
/// the state WAL batches fsyncs.
pub fn persistent_ingress_with(
    dir: impl AsRef<std::path::Path>,
    partitions: usize,
    options: om_log::PersistentTopicOptions,
) -> OmResult<Arc<om_log::PersistentTopic<(Address, DfMsg)>>> {
    Ok(Arc::new(om_log::PersistentTopic::open_with(
        dir,
        "ingress",
        partitions,
        Arc::new(DfRecordCodec),
        options,
    )?))
}

/// [`persistent_ingress_with`] over an explicit
/// [`om_storage::vfs::Vfs`] — the fault-injection seam: the torture
/// harness records (or faults) every byte the ingress log writes, the
/// same way it drives the state backend's WAL and snapshots.
pub fn persistent_ingress_with_vfs(
    dir: impl AsRef<std::path::Path>,
    partitions: usize,
    options: om_log::PersistentTopicOptions,
    vfs: Arc<dyn om_storage::vfs::Vfs>,
) -> OmResult<Arc<om_log::PersistentTopic<(Address, DfMsg)>>> {
    Ok(Arc::new(om_log::PersistentTopic::open_with_vfs(
        dir,
        "ingress",
        partitions,
        Arc::new(DfRecordCodec),
        options,
        vfs,
    )?))
}

/// Builds the marketplace dataflow topology. A `store` holding a
/// committed checkpoint makes this a **restart**: the topology resumes
/// from the last committed epoch (paired with `ingress`, in-flight
/// records replay too).
fn build_dataflow(
    partitions: usize,
    max_batch: usize,
    workers: usize,
    store: Option<Arc<dyn CheckpointStore>>,
    ingress: Option<Arc<dyn om_log::EventLog<(Address, DfMsg)>>>,
) -> Dataflow<DfMsg> {
    let mut builder = Dataflow::builder()
        .partitions(partitions)
        .max_batch(max_batch)
        .workers(workers);
    if let Some(store) = store {
        builder = builder.checkpoint_store(store);
    }
    if let Some(ingress) = ingress {
        builder = builder.ingress_topic(ingress);
    }
    builder
        .register(kinds::PRODUCT, product_fn)
        .register(kinds::REPLICA, replica_fn)
        .register(kinds::STOCK, stock_fn)
        .register(kinds::CART, cart_fn)
        .register(kinds::ORDER, order_fn)
        .register(kinds::PAYMENT, payment_fn)
        .register(kinds::SHIPMENT, shipment_fn)
        .register(kinds::SELLER, seller_fn)
        .register(kinds::CUSTOMER, customer_fn)
        .register(DELIVERY_FN, delivery_fn)
        .register(DRILL_FN, |_key, _state: Option<&[u8]>, _msg: DfMsg, _out: &mut Effects<DfMsg>| {})
        .build()
}

fn product_fn(key: u64, state: Option<&[u8]>, msg: DfMsg, out: &mut Effects<DfMsg>) {
    let mut product: Option<Product> = load(state);
    match msg {
        DfMsg::IngestProduct(p) => {
            let replica = ProductReplica {
                price: p.price,
                freight_value: p.freight_value,
                version: p.version,
                active: p.active,
            };
            out.send(
                addr(kinds::REPLICA, key),
                DfMsg::ReplicaUpdate {
                    price: replica.price,
                    version: replica.version,
                },
            );
            save(out, &p);
            product = Some(p);
            let _ = product;
        }
        DfMsg::PriceUpdate { price } => {
            if let Some(p) = product.as_mut() {
                if p.active {
                    p.set_price(price);
                    out.send(
                        addr(kinds::REPLICA, key),
                        DfMsg::ReplicaUpdate {
                            price,
                            version: p.version,
                        },
                    );
                    save(out, p);
                }
            }
        }
        DfMsg::ProductDelete => {
            if let Some(p) = product.as_mut() {
                if p.active {
                    p.delete();
                    out.send(addr(kinds::REPLICA, key), DfMsg::ReplicaDelete { version: p.version });
                    out.send(addr(kinds::STOCK, key), DfMsg::StockDelete { version: p.version });
                    save(out, p);
                }
            }
        }
        _ => {}
    }
}

fn replica_fn(_key: u64, state: Option<&[u8]>, msg: DfMsg, out: &mut Effects<DfMsg>) {
    let mut replica: ProductReplica =
        load(state).unwrap_or_else(|| ProductReplica::new(Money::ZERO, Money::ZERO));
    match msg {
        DfMsg::ReplicaUpdate { price, version } => {
            // Version 0 is initial ingestion (always applied).
            if version == 0 {
                replica.price = price;
                save(out, &replica);
            } else if replica.apply_update(price, version) {
                save(out, &replica);
            }
        }
        DfMsg::ReplicaDelete { version } if replica.apply_delete(version) => {
            save(out, &replica);
        }
        _ => {}
    }
}

fn stock_fn(key: u64, state: Option<&[u8]>, msg: DfMsg, out: &mut Effects<DfMsg>) {
    let mut stock: Option<StockService> = load(state);
    match msg {
        DfMsg::IngestStock { key: sk, qty } => {
            let mut s = stock.unwrap_or_else(|| StockService::new(sk, 0));
            s.item.replenish(qty);
            save(out, &s);
        }
        DfMsg::Reserve {
            tid,
            customer,
            item,
            method,
            decline_rate_bp,
            at,
        } => {
            let reserved = match stock.as_mut() {
                Some(s) => {
                    let ok = s.reserve(item.quantity).is_ok();
                    save(out, s);
                    ok
                }
                None => false,
            };
            out.send(
                addr(kinds::ORDER, customer.0),
                DfMsg::StockAnswer {
                    tid,
                    customer,
                    item,
                    reserved,
                    method,
                    decline_rate_bp,
                    at,
                },
            );
        }
        DfMsg::StockConfirm { qty } => {
            if let Some(s) = stock.as_mut() {
                s.confirm(qty);
                save(out, s);
            }
        }
        DfMsg::StockCancel { qty } => {
            if let Some(s) = stock.as_mut() {
                s.cancel(qty);
                save(out, s);
            }
        }
        DfMsg::StockDelete { version } => {
            if let Some(s) = stock.as_mut() {
                s.apply_product_delete(version);
                save(out, s);
            }
        }
        _ => {}
    }
    let _ = key;
}

fn cart_fn(key: u64, state: Option<&[u8]>, msg: DfMsg, out: &mut Effects<DfMsg>) {
    let customer = CustomerId(key);
    let mut cart: CartService = load(state).unwrap_or_else(|| CartService::new(customer));
    match msg {
        DfMsg::CartAdd(item) => {
            let _ = cart.add_item(item);
            save(out, &cart);
        }
        DfMsg::Checkout {
            tid,
            method,
            decline_rate_bp,
            at,
        } => match cart.begin_checkout() {
            Ok(items) => {
                out.send(
                    addr(kinds::ORDER, customer.0),
                    DfMsg::BeginAssembly {
                        tid,
                        customer,
                        expected: items.len(),
                        at,
                    },
                );
                for item in items {
                    out.send(
                        addr(kinds::STOCK, item.product.0),
                        DfMsg::Reserve {
                            tid,
                            customer,
                            item: item.clone(),
                            method,
                            decline_rate_bp,
                            at,
                        },
                    );
                }
                cart.finish_checkout();
                save(out, &cart);
            }
            Err(e) => {
                out.emit(DfMsg::Egress(Eg::CheckoutDone {
                    tid,
                    order: None,
                    total: None,
                    accepted: false,
                    reason: e.to_string(),
                }));
            }
        },
        DfMsg::ReplicaUpdate { price, version } => {
            // Price replication also reaches open carts in this topology.
            let mut changed = false;
            for item in cart.cart.items.clone() {
                changed |= cart.apply_price_update(item.product, price, version);
            }
            if changed {
                save(out, &cart);
            }
        }
        _ => {}
    }
}

fn order_fn(key: u64, state: Option<&[u8]>, msg: DfMsg, out: &mut Effects<DfMsg>) {
    let customer = CustomerId(key);
    #[derive(Serialize, Deserialize)]
    struct OrderFnState {
        svc: OrderService,
        delivered: BTreeMap<OrderId, u32>,
    }
    let mut st: OrderFnState = load(state).unwrap_or_else(|| OrderFnState {
        svc: OrderService::new(customer),
        delivered: BTreeMap::new(),
    });
    match msg {
        DfMsg::BeginAssembly {
            tid, expected, at, ..
        } => {
            st.svc.begin_assembly(tid, expected, at);
            save(out, &st);
        }
        DfMsg::StockAnswer {
            tid,
            customer: cust,
            item,
            reserved,
            method,
            decline_rate_bp,
            at,
        } => {
            let completed = st.svc.record_stock_answer(tid, item, reserved);
            if let Some(done) = completed {
                if done.confirmed.is_empty() {
                    out.emit(DfMsg::Egress(Eg::CheckoutDone {
                        tid,
                        order: None,
                        total: None,
                        accepted: false,
                        reason: "no line could be reserved".into(),
                    }));
                } else {
                    let at2 = EventTime(at.0 + 1);
                    match st.svc.create_order(&done.confirmed, at2) {
                        Ok(order) => {
                            for item in &order.items {
                                out.send(
                                    addr(kinds::SELLER, item.seller.0),
                                    DfMsg::AddEntry(OrderEntry {
                                        order: order.id,
                                        seller: item.seller,
                                        product: item.product,
                                        quantity: item.quantity,
                                        total_amount: item.total_amount,
                                        status: OrderStatus::Invoiced,
                                    }),
                                );
                            }
                            let lines: Vec<OrderLineRef> = order
                                .items
                                .iter()
                                .map(|i| OrderLineRef {
                                    seller: i.seller,
                                    product: i.product,
                                    quantity: i.quantity,
                                    total_amount: i.total_amount,
                                    freight_value: i.freight_value,
                                })
                                .collect();
                            out.send(
                                addr(kinds::PAYMENT, cust.0),
                                DfMsg::ProcessPayment {
                                    tid,
                                    order: order.id,
                                    customer: cust,
                                    method,
                                    amount: order.total_invoice(),
                                    decline_rate_bp,
                                    lines,
                                    at: EventTime(at2.0 + 1),
                                },
                            );
                        }
                        Err(e) => {
                            out.emit(DfMsg::Egress(Eg::CheckoutDone {
                                tid,
                                order: None,
                                total: None,
                                accepted: false,
                                reason: e.to_string(),
                            }));
                        }
                    }
                }
            }
            save(out, &st);
        }
        DfMsg::SetStatus { order, status, at } => {
            let _ = st.svc.set_status(order, status, at);
            save(out, &st);
        }
        DfMsg::PackagesDelivered { order, packages, at } => {
            let total = {
                let e = st.delivered.entry(order).or_insert(0);
                *e += packages;
                *e
            };
            let expected = st
                .svc
                .orders
                .get(&order)
                .map(|o| o.items.len() as u32)
                .unwrap_or(u32::MAX);
            if total >= expected {
                let _ = st.svc.set_status(order, OrderStatus::Delivered, at);
                out.send(addr(kinds::CUSTOMER, customer.0), DfMsg::CustomerDelivery);
            }
            save(out, &st);
        }
        _ => {}
    }
}

fn payment_fn(key: u64, state: Option<&[u8]>, msg: DfMsg, out: &mut Effects<DfMsg>) {
    let customer = CustomerId(key);
    let mut svc: PaymentService = load(state).unwrap_or_else(|| PaymentService::new(customer));
    if let DfMsg::ProcessPayment {
        tid,
        order,
        customer: cust,
        method,
        amount,
        decline_rate_bp,
        lines,
        at,
    } = msg
    {
        let payment = svc.process(
            order,
            method,
            amount,
            decline_rate_bp as f64 / 10_000.0,
            at,
        );
        save(out, &svc);
        let status = if payment.approved {
            OrderStatus::Paid
        } else {
            OrderStatus::PaymentFailed
        };
        out.send(
            addr(kinds::ORDER, cust.0),
            DfMsg::SetStatus {
                order,
                status,
                at: EventTime(at.0 + 1),
            },
        );
        out.send(
            addr(kinds::CUSTOMER, cust.0),
            DfMsg::PaymentResult {
                approved: payment.approved,
                amount: payment.amount,
            },
        );
        for line in &lines {
            out.send(
                addr(kinds::SELLER, line.seller.0),
                DfMsg::ApplyStatus { order, status },
            );
        }
        for line in &lines {
            let settle = if payment.approved {
                DfMsg::StockConfirm { qty: line.quantity }
            } else {
                DfMsg::StockCancel { qty: line.quantity }
            };
            out.send(addr(kinds::STOCK, line.product.0), settle);
        }
        if payment.approved {
            let mut by_seller: HashMap<SellerId, Vec<OrderLineRef>> = HashMap::new();
            for line in lines {
                by_seller.entry(line.seller).or_default().push(line);
            }
            for (seller, seller_lines) in by_seller {
                out.send(
                    addr(kinds::SHIPMENT, seller.0),
                    DfMsg::CreatePackages {
                        tid,
                        shipment: ShipmentId(order.0),
                        order,
                        customer: cust,
                        lines: seller_lines,
                        at: EventTime(at.0 + 2),
                    },
                );
            }
            out.emit(DfMsg::Egress(Eg::CheckoutDone {
                tid,
                order: Some(order),
                total: Some(payment.amount),
                accepted: true,
                reason: String::new(),
            }));
        } else {
            out.emit(DfMsg::Egress(Eg::CheckoutDone {
                tid,
                order: Some(order),
                total: None,
                accepted: false,
                reason: "payment declined".into(),
            }));
        }
    }
}

fn shipment_fn(key: u64, state: Option<&[u8]>, msg: DfMsg, out: &mut Effects<DfMsg>) {
    let seller = SellerId(key);
    let mut svc: ShipmentService = load(state).unwrap_or_else(|| ShipmentService::new(seller));
    match msg {
        DfMsg::CreatePackages {
            shipment,
            order,
            customer,
            lines,
            at,
            ..
        } => {
            svc.create_packages(shipment, order, customer, &lines, at);
            save(out, &svc);
            out.send(
                addr(kinds::ORDER, customer.0),
                DfMsg::SetStatus {
                    order,
                    status: OrderStatus::InTransit,
                    at: EventTime(at.0 + 1),
                },
            );
            out.send(
                addr(kinds::SELLER, seller.0),
                DfMsg::ApplyStatus {
                    order,
                    status: OrderStatus::InTransit,
                },
            );
        }
        DfMsg::OldestQuery { tid } => {
            out.send(
                addr(DELIVERY_FN, tid.0),
                DfMsg::OldestReply {
                    tid,
                    seller,
                    oldest: svc.oldest_undelivered(),
                },
            );
        }
        DfMsg::DeliverOldest { tid, at } => {
            let mut packages = 0;
            if let Some((order, pkgs)) = svc.deliver_oldest_order(at) {
                packages = pkgs.len() as u32;
                save(out, &svc);
                out.send(
                    addr(
                        kinds::ORDER,
                        crate::bindings::actor_grains::customer_of_order(order).0,
                    ),
                    DfMsg::PackagesDelivered {
                        order,
                        packages,
                        at: EventTime(at.0 + 1),
                    },
                );
                out.send(
                    addr(kinds::SELLER, seller.0),
                    DfMsg::ApplyStatus {
                        order,
                        status: OrderStatus::Delivered,
                    },
                );
            }
            out.send(
                addr(DELIVERY_FN, tid.0),
                DfMsg::DeliverReply {
                    tid,
                    seller,
                    packages,
                },
            );
        }
        _ => {}
    }
}

fn seller_fn(key: u64, state: Option<&[u8]>, msg: DfMsg, out: &mut Effects<DfMsg>) {
    let seller = SellerId(key);
    let mut view: Option<SellerView> = load(state);
    match msg {
        DfMsg::IngestSeller(s) => {
            save(out, &SellerView::new(s));
        }
        DfMsg::AddEntry(entry) => {
            if let Some(v) = view.as_mut() {
                v.add_entry(entry);
                save(out, v);
            }
        }
        DfMsg::ApplyStatus { order, status } => {
            if let Some(v) = view.as_mut() {
                v.apply_status(order, status);
                save(out, v);
            }
        }
        _ => {}
    }
    let _ = seller;
}

fn customer_fn(key: u64, state: Option<&[u8]>, msg: DfMsg, out: &mut Effects<DfMsg>) {
    let mut customer: Option<Customer> = load(state);
    match msg {
        DfMsg::IngestCustomer(c) => {
            save(out, &c);
        }
        DfMsg::PaymentResult { approved, amount } => {
            if let Some(c) = customer.as_mut() {
                if approved {
                    c.success_payment_count += 1;
                    c.total_spent += amount;
                } else {
                    c.failed_payment_count += 1;
                }
                save(out, c);
            }
        }
        DfMsg::CustomerDelivery => {
            if let Some(c) = customer.as_mut() {
                c.delivery_count += 1;
                save(out, c);
            }
        }
        _ => {}
    }
    let _ = key;
}

fn delivery_fn(key: u64, state: Option<&[u8]>, msg: DfMsg, out: &mut Effects<DfMsg>) {
    let tid = TransactionId(key);
    match msg {
        DfMsg::DeliveryRequest {
            sellers, max, at, ..
        } => {
            if sellers.is_empty() {
                out.emit(DfMsg::Egress(Eg::DeliveryDone { tid, packages: 0 }));
                return;
            }
            let st = DeliveryState {
                max,
                waiting_oldest: sellers.len(),
                ranked: Vec::new(),
                waiting_deliver: 0,
                packages: 0,
                at,
            };
            for s in sellers {
                out.send(addr(kinds::SHIPMENT, s.0), DfMsg::OldestQuery { tid });
            }
            save(out, &st);
        }
        DfMsg::OldestReply { seller, oldest, .. } => {
            let Some(mut st) = load::<DeliveryState>(state) else {
                return;
            };
            st.waiting_oldest -= 1;
            if let Some(t) = oldest {
                st.ranked.push((t, seller));
            }
            if st.waiting_oldest == 0 {
                st.ranked.sort();
                let chosen: Vec<SellerId> = st
                    .ranked
                    .iter()
                    .take(st.max as usize)
                    .map(|&(_, s)| s)
                    .collect();
                if chosen.is_empty() {
                    out.emit(DfMsg::Egress(Eg::DeliveryDone { tid, packages: 0 }));
                    out.clear_state();
                    return;
                }
                st.waiting_deliver = chosen.len();
                let at = st.at;
                for s in chosen {
                    out.send(addr(kinds::SHIPMENT, s.0), DfMsg::DeliverOldest { tid, at });
                }
            }
            save(out, &st);
        }
        DfMsg::DeliverReply { packages, .. } => {
            let Some(mut st) = load::<DeliveryState>(state) else {
                return;
            };
            st.packages += packages;
            st.waiting_deliver -= 1;
            if st.waiting_deliver == 0 {
                out.emit(DfMsg::Egress(Eg::DeliveryDone {
                    tid,
                    packages: st.packages,
                }));
                out.clear_state();
            } else {
                save(out, &st);
            }
        }
        _ => {}
    }
}

/// Configuration for the dataflow platform.
#[derive(Clone)]
pub struct DataflowPlatformConfig {
    pub partitions: usize,
    /// Checkpoint interval in ingress records per partition.
    pub max_batch: usize,
    /// Epoch worker threads of the runtime: 0 = core count, 1 = serial
    /// baseline, n > 1 = fan epochs out over n long-lived
    /// `om-df-worker-N` threads (capped at `partitions`).
    pub workers: usize,
    pub decline_rate: f64,
    /// Where epoch checkpoints live; `None` uses the runtime's default
    /// in-memory store. Passing a [`BackendCheckpointStore`] over a
    /// shared backend makes the platform restartable: a second platform
    /// built over the same store resumes from the last committed epoch.
    ///
    /// [`BackendCheckpointStore`]: om_dataflow::BackendCheckpointStore
    pub checkpoint_store: Option<Arc<dyn CheckpointStore>>,
    /// Reuse an existing ingress log (pairs with `checkpoint_store` for
    /// full restarts that also replay in-flight records). Any
    /// [`om_log::EventLog`] works: a shared in-memory topic, or the
    /// [`persistent_ingress`] topic for restarts from a cold process.
    pub ingress: Option<Arc<dyn om_log::EventLog<(Address, DfMsg)>>>,
}

impl std::fmt::Debug for DataflowPlatformConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataflowPlatformConfig")
            .field("partitions", &self.partitions)
            .field("max_batch", &self.max_batch)
            .field("workers", &self.workers)
            .field("decline_rate", &self.decline_rate)
            .field(
                "checkpoint_store",
                &self.checkpoint_store.as_ref().map(|s| s.label()),
            )
            .field("shared_ingress", &self.ingress.is_some())
            .finish()
    }
}

impl Default for DataflowPlatformConfig {
    fn default() -> Self {
        Self {
            partitions: 4,
            max_batch: 64,
            workers: 0,
            decline_rate: 0.05,
            checkpoint_store: None,
            ingress: None,
        }
    }
}

/// The Statefun-like platform: topology + pump thread + completion
/// registry.
pub struct DataflowPlatform {
    df: Arc<Dataflow<DfMsg>>,
    catalog: super::actor_core::Catalog,
    tids: IdSequence,
    clock: om_common::time::LogicalClock,
    decline_rate: f64,
    counters: Arc<CounterSet>,
    waiters: Arc<Mutex<WaiterRegistry>>,
    /// Number of clients currently blocked in [`Self::await_completion`];
    /// while nonzero the pump yields epoch-driving to them.
    active_waiters: Arc<std::sync::atomic::AtomicUsize>,
    stop: Arc<AtomicBool>,
    pump: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Serializes dashboard reads against pump commits for the staleness
    /// experiment; not held during normal operation.
    _reserved: RwLock<()>,
}

impl DataflowPlatform {
    pub fn new(config: DataflowPlatformConfig) -> Self {
        let df = Arc::new(build_dataflow(
            config.partitions,
            config.max_batch,
            config.workers,
            config.checkpoint_store,
            config.ingress,
        ));
        // A restarted platform rebuilds its entity catalog — snapshots,
        // dashboards and the delivery fan-out must see the pre-crash
        // entities even though the catalog itself is process-local. Two
        // sources: the recovered checkpoint's function states, and
        // ingest records still in flight in the (persistent or shared)
        // ingress log — durably appended but not yet checkpointed, they
        // will replay into function state, so they belong in the
        // catalog too.
        let catalog = super::actor_core::Catalog::default();
        if let Ok(Some(snap)) = df.checkpoint_store().load() {
            for (_, fn_type, key, _) in &snap.states {
                match fn_type.as_str() {
                    kinds::SELLER => catalog.add_seller(SellerId(*key)),
                    kinds::CUSTOMER => catalog.add_customer(CustomerId(*key)),
                    kinds::PRODUCT => catalog.add_product(ProductId(*key)),
                    _ => {}
                }
            }
        }
        let ingress = df.ingress_topic();
        for (partition, &from) in df.committed_offsets().iter().enumerate() {
            for entry in ingress.read_from(partition, from, usize::MAX) {
                match entry.payload.1 {
                    DfMsg::IngestSeller(s) => catalog.add_seller(s.id),
                    DfMsg::IngestCustomer(c) => catalog.add_customer(c.id),
                    DfMsg::IngestProduct(p) => catalog.add_product(p.id),
                    _ => {}
                }
            }
        }
        let waiters: Arc<Mutex<WaiterRegistry>> = Arc::new(Mutex::new(WaiterRegistry::default()));
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(CounterSet::new());
        let active_waiters = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let pump = {
            let df = df.clone();
            let waiters = waiters.clone();
            let stop = stop.clone();
            let counters = counters.clone();
            let active_waiters = active_waiters.clone();
            std::thread::Builder::new()
                .name("om-dataflow-pump".into())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        // Clients awaiting results drive epochs themselves
                        // (caller-runs); the pump stands down entirely
                        // while any are active so two drivers never
                        // interleave on the epoch mutex.
                        if active_waiters.load(Ordering::Acquire) == 0
                            && df.pending_ingress() > 0
                        {
                            let started = std::time::Instant::now();
                            let _ = df.run_epoch();
                            counters
                                .add("df.pump_epoch_us", started.elapsed().as_micros() as u64);
                            for record in df.take_committed_egress() {
                                if let DfMsg::Egress(eg) = record {
                                    waiters.lock().complete(eg);
                                }
                            }
                        }
                        // The pump is only the asynchronous fallback for
                        // fire-and-forget traffic — clients awaiting a
                        // result drive epochs themselves (caller-runs).
                        // Sleeping every iteration keeps the pump from
                        // competing with those callers for the CPU.
                        std::thread::sleep(Duration::from_millis(1));
                    }
                })
                .expect("spawn pump")
        };
        Self {
            df,
            catalog,
            tids: IdSequence::new(1),
            clock: om_common::time::LogicalClock::new(),
            decline_rate: config.decline_rate,
            counters,
            waiters,
            active_waiters,
            stop,
            pump: Mutex::new(Some(pump)),
            _reserved: RwLock::new(()),
        }
    }

    /// The underlying dataflow (tests / fault injection).
    pub fn dataflow(&self) -> &Dataflow<DfMsg> {
        &self.df
    }

    /// Registers interest in `tid` *before* the triggering submission so
    /// the pump can never complete it unseen.
    fn register_waiter(&self, tid: TransactionId) -> crossbeam::channel::Receiver<Eg> {
        let (tx, rx) = bounded(1);
        self.waiters.lock().register(tid.0, tx);
        rx
    }

    /// Waits for `tid`'s completion while *helping*: if dataflow work is
    /// pending, the calling thread drives epochs itself (caller-runs, as
    /// embedded Statefun deployments do) instead of bouncing to the pump
    /// thread — on small machines the scheduler round-trip per epoch
    /// otherwise dominates end-to-end latency. The pump thread remains as
    /// the asynchronous driver for fire-and-forget traffic.
    fn await_completion(
        &self,
        tid: TransactionId,
        rx: crossbeam::channel::Receiver<Eg>,
    ) -> OmResult<Eg> {
        // While registered, the pump stands down (see the pump loop).
        struct WaiterGuard<'a>(&'a std::sync::atomic::AtomicUsize);
        impl Drop for WaiterGuard<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::AcqRel);
            }
        }
        self.active_waiters.fetch_add(1, Ordering::AcqRel);
        let _guard = WaiterGuard(&self.active_waiters);

        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            if let Ok(eg) = rx.try_recv() {
                return Ok(eg);
            }
            // Become the epoch driver if nobody else is; otherwise block
            // on the completion channel (the current driver delivers our
            // result the moment its epoch commits).
            let drove = self.df.pending_ingress() > 0 && self.drive_one_epoch();
            if !drove {
                match rx.recv_timeout(Duration::from_millis(1)) {
                    Ok(eg) => return Ok(eg),
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                        return Err(OmError::Unavailable(format!(
                            "dataflow completion channel for {tid} closed"
                        )));
                    }
                }
            }
            if std::time::Instant::now() > deadline {
                return Err(OmError::Timeout(format!("dataflow completion for {tid}")));
            }
        }
    }

    /// Runs one epoch from the calling thread (if no other driver is
    /// active) and routes committed egress to waiting clients. Returns
    /// whether an epoch was actually driven by this call.
    fn drive_one_epoch(&self) -> bool {
        let started = std::time::Instant::now();
        let drove = matches!(self.df.try_run_epoch(), Ok(Some(_)));
        if drove {
            self.counters
                .add("df.caller_epoch_us", started.elapsed().as_micros() as u64);
        }
        for record in self.df.take_committed_egress() {
            if let DfMsg::Egress(eg) = record {
                self.waiters.lock().complete(eg);
            }
        }
        drove
    }

    fn replica_view(&self, product: ProductId) -> Option<ProductReplica> {
        self.df
            .state_of(addr(kinds::REPLICA, product.0))
            .and_then(|b| om_common::codec::from_bytes(&b).ok())
    }

    fn product_view(&self, product: ProductId) -> Option<Product> {
        self.df
            .state_of(addr(kinds::PRODUCT, product.0))
            .and_then(|b| om_common::codec::from_bytes(&b).ok())
    }

    fn seller_view(&self, seller: SellerId) -> Option<SellerView> {
        self.df
            .state_of(addr(kinds::SELLER, seller.0))
            .and_then(|b| om_common::codec::from_bytes(&b).ok())
    }
}

impl Drop for DataflowPlatform {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.pump.lock().take() {
            let _ = h.join();
        }
    }
}

impl MarketplacePlatform for DataflowPlatform {
    fn kind(&self) -> PlatformKind {
        PlatformKind::Dataflow
    }

    /// The backend behind the checkpoint store, when checkpoints are
    /// durable; `None` with the in-memory store (runtime-native state).
    fn backend(&self) -> Option<om_common::config::BackendKind> {
        self.df.checkpoint_store().backend_kind()
    }

    fn is_wedged(&self) -> bool {
        self.df.checkpoint_store().is_wedged()
    }

    fn unwedge(&self) -> Option<OmResult<crate::api::UnwedgeOutcome>> {
        let store = self.df.checkpoint_store();
        let was_wedged = store.is_wedged();
        let repair = store.unwedge()?;
        Some(repair.map(|torn| crate::api::UnwedgeOutcome {
            was_wedged,
            torn_bytes_dropped: torn,
            healthy: !store.is_wedged(),
        }))
    }

    fn ingest_seller(&self, seller: Seller) -> OmResult<()> {
        let id = seller.id;
        self.df.submit(addr(kinds::SELLER, id.0), DfMsg::IngestSeller(seller));
        self.catalog.add_seller(id);
        Ok(())
    }

    fn ingest_customer(&self, customer: Customer) -> OmResult<()> {
        let id = customer.id;
        self.df
            .submit(addr(kinds::CUSTOMER, id.0), DfMsg::IngestCustomer(customer));
        self.catalog.add_customer(id);
        Ok(())
    }

    fn ingest_product(&self, product: Product, initial_stock: u32) -> OmResult<()> {
        let id = product.id;
        let key = StockKey::new(product.seller, id);
        self.df
            .submit(addr(kinds::PRODUCT, id.0), DfMsg::IngestProduct(product));
        self.df.submit(
            addr(kinds::STOCK, id.0),
            DfMsg::IngestStock {
                key,
                qty: initial_stock,
            },
        );
        self.catalog.add_product(id);
        Ok(())
    }

    fn add_to_cart(&self, customer: CustomerId, item: CheckoutItem) -> OmResult<()> {
        let replica = self
            .replica_view(item.product)
            .ok_or_else(|| OmError::NotFound(format!("replica of {}", item.product)))?;
        if !replica.active {
            return Err(OmError::Rejected(format!("{} deleted", item.product)));
        }
        if let Some(p) = self.product_view(item.product) {
            if replica.version < p.version {
                self.counters.incr("stale_price_reads");
            }
        }
        self.counters.incr("cart_adds");
        self.df.submit(
            addr(kinds::CART, customer.0),
            DfMsg::CartAdd(CartItem {
                seller: item.seller,
                product: item.product,
                quantity: item.quantity,
                unit_price: replica.price,
                freight_value: replica.freight_value,
                product_version: replica.version,
            }),
        );
        Ok(())
    }

    fn checkout(&self, request: CheckoutRequest) -> OmResult<CheckoutOutcome> {
        let tid = TransactionId(self.tids.next_raw());
        let at = self.clock.tick();
        let rx = self.register_waiter(tid);
        self.df.submit(
            addr(kinds::CART, request.customer.0),
            DfMsg::Checkout {
                tid,
                method: request.method,
                decline_rate_bp: super::actor_msg::to_basis_points(self.decline_rate),
                at,
            },
        );
        match self.await_completion(tid, rx)? {
            Eg::CheckoutDone {
                order,
                total,
                accepted,
                reason,
                ..
            } => {
                if accepted {
                    self.counters.incr("checkouts_committed");
                    Ok(CheckoutOutcome::Placed { order, total })
                } else {
                    self.counters.incr("checkouts_rejected");
                    Ok(CheckoutOutcome::Rejected(reason))
                }
            }
            other => Err(OmError::Internal(format!("unexpected egress {other:?}"))),
        }
    }

    fn price_update(&self, _seller: SellerId, product: ProductId, price: Money) -> OmResult<()> {
        self.counters.incr("price_updates");
        self.df
            .submit(addr(kinds::PRODUCT, product.0), DfMsg::PriceUpdate { price });
        Ok(())
    }

    fn product_delete(&self, _seller: SellerId, product: ProductId) -> OmResult<()> {
        self.counters.incr("product_deletes");
        self.df
            .submit(addr(kinds::PRODUCT, product.0), DfMsg::ProductDelete);
        Ok(())
    }

    fn update_delivery(&self, max_sellers: usize) -> OmResult<u32> {
        let tid = TransactionId(self.tids.next_raw());
        let sellers: Vec<SellerId> = self.catalog.sellers.read().clone();
        let at = self.clock.tick();
        let rx = self.register_waiter(tid);
        self.df.submit(
            addr(DELIVERY_FN, tid.0),
            DfMsg::DeliveryRequest {
                tid,
                sellers,
                max: max_sellers as u32,
                at,
            },
        );
        match self.await_completion(tid, rx)? {
            Eg::DeliveryDone { packages, .. } => {
                self.counters.incr("update_deliveries");
                Ok(packages)
            }
            other => Err(OmError::Internal(format!("unexpected egress {other:?}"))),
        }
    }

    /// Two reads of the committed seller state. The pump may commit a
    /// checkpoint between them, so the halves can disagree — the
    /// consistent-querying criterion Statefun does not provide.
    fn seller_dashboard(&self, seller: SellerId) -> OmResult<SellerDashboard> {
        let v1 = self
            .seller_view(seller)
            .ok_or_else(|| OmError::NotFound(format!("{seller}")))?;
        let (amount, count) = v1.aggregate();
        let v2 = self
            .seller_view(seller)
            .ok_or_else(|| OmError::NotFound(format!("{seller}")))?;
        self.counters.incr("dashboards");
        Ok(SellerDashboard {
            seller: v1.seller.id,
            in_progress_amount: amount,
            in_progress_count: count,
            entries: v2.entry_list(),
        })
    }

    fn quiesce(&self) {
        // Wait until the pump drains the ingress.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while self.df.pending_ingress() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    fn snapshot(&self) -> OmResult<MarketSnapshot> {
        let mut snap = MarketSnapshot::default();
        for &p in self.catalog.products.read().iter() {
            if let Some(prod) = self.product_view(p) {
                snap.products.push(prod);
            }
            if let Some(b) = self.df.state_of(addr(kinds::STOCK, p.0)) {
                if let Ok(s) = om_common::codec::from_bytes::<StockService>(&b) {
                    snap.stock.push(StockSnapshot {
                        item: s.item.clone(),
                        qty_sold: s.qty_sold,
                    });
                }
            }
        }
        for &c in self.catalog.customers.read().iter() {
            if let Some(b) = self.df.state_of(addr(kinds::ORDER, c.0)) {
                // Must mirror order_fn's state exactly: the binary codec
                // is positional, so partial probe structs cannot skip
                // fields the way JSON could.
                #[derive(Deserialize)]
                struct OrderFnState {
                    svc: OrderService,
                    #[allow(dead_code)]
                    delivered: BTreeMap<OrderId, u32>,
                }
                if let Ok(st) = om_common::codec::from_bytes::<OrderFnState>(&b) {
                    snap.stuck_assemblies += st.svc.stuck_assemblies() as u64;
                    snap.orders.extend(st.svc.orders.values().cloned());
                }
            }
            if let Some(b) = self.df.state_of(addr(kinds::PAYMENT, c.0)) {
                if let Ok(svc) = om_common::codec::from_bytes::<PaymentService>(&b) {
                    snap.payments.extend(svc.payments.values().cloned());
                }
            }
            if let Some(b) = self.df.state_of(addr(kinds::CUSTOMER, c.0)) {
                if let Ok(profile) = om_common::codec::from_bytes::<Customer>(&b) {
                    snap.customers.push(profile);
                }
            }
        }
        for &s in self.catalog.sellers.read().iter() {
            if let Some(v) = self.seller_view(s) {
                snap.sellers.push(v.seller.clone());
            }
            if let Some(b) = self.df.state_of(addr(kinds::SHIPMENT, s.0)) {
                if let Ok(svc) = om_common::codec::from_bytes::<ShipmentService>(&b) {
                    snap.shipments.extend(svc.packages.iter().map(|p| PackageSnapshot {
                        order: p.order,
                        seller: p.seller,
                        product: p.product,
                        delivered: p.status == om_common::entity::PackageStatus::Delivered,
                        shipped_at: p.shipped_at.raw(),
                    }));
                }
            }
        }
        Ok(snap)
    }

    fn counters(&self) -> std::collections::BTreeMap<String, u64> {
        let mut out = self.counters.snapshot();
        let (epochs, replays, invocations, unroutable) = self.df.stats();
        out.insert("df.epochs".into(), epochs);
        out.insert("df.replays".into(), replays);
        out.insert("df.invocations".into(), invocations);
        out.insert("df.unroutable".into(), unroutable);
        let (recoveries, last_recovery_us) = self.df.recovery_stats();
        out.insert("df.recoveries".into(), recoveries);
        out.insert("df.last_recovery_us".into(), last_recovery_us);
        out.insert(
            "df.checkpoint_commits".into(),
            self.df.checkpoint_store().commits(),
        );
        // Worker-pool / epoch-barrier counters: pool size and how many
        // parallel epochs went through the CommitGroup barrier (serial
        // epochs never touch it, so barrier_epochs == 0 at workers(1)).
        out.insert("df.workers".into(), self.df.workers() as u64);
        let barrier = self.df.barrier_stats();
        out.insert("df.barrier_epochs".into(), barrier.flushes);
        out.insert("df.barrier_max_cohort".into(), barrier.max_cohort);
        // Storage-layer counters of the checkpoint store's backend
        // (group-commit amortization, snapshot deltas), prefixed the
        // same way the actor bindings prefix theirs.
        for (k, v) in self.df.checkpoint_store().backend_counters() {
            out.insert(format!("storage.{k}"), v);
        }
        out
    }

    /// The dataflow recovery cell: crash mid-epoch, restore from the
    /// checkpoint store, replay. The drill wave targets the registered
    /// no-op drill function, so it leaves no state behind — only
    /// committed epochs (meta-only checkpoints) and the measured restore.
    fn crash_and_recover(&self) -> Option<crate::api::RecoveryOutcome> {
        // Drain outstanding work so the drill measures only itself.
        self.quiesce();
        const DRILL_RECORDS: u64 = 32;
        let replays_before = self.df.stats().1;
        // Arm the crash *before* submitting the wave: the pump thread
        // races this method, and an unarmed wave could be fully committed
        // first, leaving a countdown that never fires.
        self.df.inject_crash_after(DRILL_RECORDS / 2);
        for i in 0..DRILL_RECORDS {
            self.df.submit(addr(DRILL_FN, i), DfMsg::CustomerDelivery);
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while (self.df.pending_ingress() > 0 || self.df.stats().1 == replays_before)
            && std::time::Instant::now() < deadline
        {
            if !self.drive_one_epoch() {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        if self.df.stats().1 == replays_before {
            // Deadline expired without the crash firing (e.g. a starved
            // pump): disarm and report no drill rather than a misleading
            // outcome built from the previous (build-time) recovery.
            self.df.disarm_crash();
            return None;
        }
        let recovery = self.df.last_recovery()?;
        Some(crate::api::RecoveryOutcome {
            store: self.df.checkpoint_store().label().to_string(),
            recovered_epoch: recovery.epoch,
            final_epoch: self.df.committed_epoch(),
            recovery_us: recovery.duration.as_micros() as u64,
            replayed_ingress: recovery.replayable_ingress,
        })
    }
}
