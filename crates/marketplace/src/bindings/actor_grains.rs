//! Grain implementations shared by the actor bindings.
//!
//! Every stateful service grain wraps its domain state in a
//! [`TxParticipant`] so the same cluster serves both the *Eventual*
//! binding (which only touches committed state via events/calls) and the
//! *Transactional*/*Customized* bindings (which additionally drive the
//! `Tx*` message surface under 2PL + 2PC). The participant adds a lock
//! check on the non-transactional path — negligible next to messaging —
//! so measured differences between bindings come from workflow shape, not
//! divergent grain code.

use om_actor::tx::{LockMode, TxParticipant};
use om_actor::{Cluster, FaultConfig, GrainContext, GrainId};
use om_common::entity::{Customer, OrderStatus, PaymentMethod};
use om_common::event::OrderLineRef;
use om_common::ids::*;
use om_common::OmError;
use std::collections::HashMap;
use std::time::Duration;

use super::actor_msg::{from_basis_points, Msg, Reply};
use super::kinds;
use crate::api::{PackageSnapshot, StockSnapshot};
use crate::domain::{
    CartService, OrderService, PaymentService, ProductReplica, SellerView, ShipmentService,
    StockService,
};

/// Grain id helpers.
pub fn product_grain(p: ProductId) -> GrainId {
    GrainId::new(kinds::PRODUCT, p.0)
}
pub fn replica_grain(p: ProductId) -> GrainId {
    GrainId::new(kinds::REPLICA, p.0)
}
pub fn stock_grain(p: ProductId) -> GrainId {
    GrainId::new(kinds::STOCK, p.0)
}
pub fn cart_grain(c: CustomerId) -> GrainId {
    GrainId::new(kinds::CART, c.0)
}
pub fn order_grain(c: CustomerId) -> GrainId {
    GrainId::new(kinds::ORDER, c.0)
}
pub fn payment_grain(c: CustomerId) -> GrainId {
    GrainId::new(kinds::PAYMENT, c.0)
}
pub fn shipment_grain(s: SellerId) -> GrainId {
    GrainId::new(kinds::SHIPMENT, s.0)
}
pub fn seller_grain(s: SellerId) -> GrainId {
    GrainId::new(kinds::SELLER, s.0)
}
pub fn customer_grain(c: CustomerId) -> GrainId {
    GrainId::new(kinds::CUSTOMER, c.0)
}

/// Routes an order id back to the customer-keyed grains that own it.
pub fn customer_of_order(order: OrderId) -> CustomerId {
    CustomerId(order.0 / crate::domain::order::ORDERS_PER_CUSTOMER)
}

fn not_mine(id: GrainId, msg: &Msg) -> Reply {
    Reply::Err(OmError::Internal(format!(
        "grain {id} received foreign message {msg:?}"
    )))
}

/// Runs a 2PC surface message against a participant; `commit_hook` runs on
/// commit with the newly committed state (for post-commit events).
fn handle_tx_protocol<S: Clone, M>(
    part: &mut TxParticipant<S>,
    msg: &Msg,
    ctx: &mut GrainContext<'_, M>,
    commit_hook: impl FnOnce(&S, &mut GrainContext<'_, M>),
) -> Option<Reply> {
    match msg {
        Msg::TxPrepare { tid } => Some(match part.prepare(*tid) {
            Ok(vote) => Reply::Vote(vote),
            Err(e) => Reply::Err(e),
        }),
        Msg::TxCommit { tid } => {
            part.commit(*tid);
            commit_hook(part.committed(), ctx);
            Some(Reply::Ok)
        }
        Msg::TxAbort { tid } => {
            part.abort(*tid);
            Some(Reply::Ok)
        }
        _ => None,
    }
}

/// Builds the marketplace cluster shared by the actor bindings.
///
/// `decline_rate` only matters for the *event-driven* payment path; the
/// transactional path carries the rate in its messages. Grain snapshots
/// persist through the `backend`-selected [`om_storage::StateBackend`]:
/// stock grains (the hottest persisted state — every checkout writes
/// them) plus the catalog entities — products, replicas, sellers,
/// customers — so a platform rebuilt over a durable backend reactivates
/// them from their last committed snapshot and
/// [`super::actor_core::Catalog::recover_from`] can re-list them on a
/// cold start.
pub fn build_cluster(
    silos: usize,
    workers_per_silo: usize,
    faults: FaultConfig,
    backend: std::sync::Arc<dyn om_storage::StateBackend>,
) -> Cluster<Msg, Reply> {
    Cluster::builder()
        .silos(silos)
        .workers_per_silo(workers_per_silo)
        .faults(faults)
        .call_timeout(Duration::from_secs(30))
        .storage_backend(backend)
        .register(kinds::PRODUCT, |_id, snap| make_product_grain(snap))
        .register(kinds::REPLICA, |_id, snap| make_replica_grain(snap))
        .register(kinds::STOCK, |_id, snap| make_stock_grain(snap))
        .register(kinds::CART, |id, _snap| make_cart_grain(CustomerId(id.key)))
        .register(kinds::ORDER, |id, _snap| make_order_grain(CustomerId(id.key)))
        .register(kinds::PAYMENT, |id, _snap| {
            make_payment_grain(CustomerId(id.key))
        })
        .register(kinds::SHIPMENT, |id, _snap| {
            make_shipment_grain(SellerId(id.key))
        })
        .register(kinds::SELLER, |id, snap| {
            make_seller_grain(SellerId(id.key), snap)
        })
        .register(kinds::CUSTOMER, |id, snap| {
            make_customer_grain(CustomerId(id.key), snap)
        })
        .build()
}

/// Persists any serializable grain state as its snapshot (catalog
/// entities persist their full committed state so cold restarts rebuild
/// the catalog from the backend alone).
fn persist_state<S: serde::Serialize>(ctx: &mut GrainContext<'_, Msg>, state: &S) {
    if let Ok(bytes) = om_common::codec::to_bytes(state) {
        ctx.persist(bytes);
    }
}

/// Decodes a reactivation snapshot, if one was stored.
fn restore<S: serde::de::DeserializeOwned>(snapshot: Option<Vec<u8>>) -> Option<S> {
    snapshot.and_then(|bytes| om_common::codec::from_bytes::<S>(&bytes).ok())
}

// ---------------------------------------------------------------------
// Product
// ---------------------------------------------------------------------

fn make_product_grain(snapshot: Option<Vec<u8>>) -> Box<dyn om_actor::Grain<Msg, Reply>> {
    let mut state: Option<om_common::entity::Product> = restore(snapshot);
    Box::new(move |ctx: &mut GrainContext<'_, Msg>, msg: Msg, _| match msg {
        Msg::ProductIngest(p) => {
            persist_state(ctx, &p);
            state = Some(p);
            Reply::Ok
        }
        Msg::ProductGet => Reply::Product(state.clone()),
        Msg::ProductPriceUpdate(price) => match state.as_mut() {
            Some(p) if p.active => {
                p.set_price(price);
                let at = ctx.tick();
                let _ = at;
                persist_state(ctx, p);
                ctx.send(
                    replica_grain(p.id),
                    Msg::ReplicaApplyUpdate {
                        price,
                        version: p.version,
                    },
                );
                Reply::Count(p.version)
            }
            Some(_) => Reply::Err(OmError::Rejected("product deleted".into())),
            None => Reply::Err(OmError::NotFound("product".into())),
        },
        Msg::ProductDelete => match state.as_mut() {
            Some(p) if p.active => {
                p.delete();
                persist_state(ctx, p);
                ctx.send(replica_grain(p.id), Msg::ReplicaApplyDelete { version: p.version });
                ctx.send(stock_grain(p.id), Msg::StockApplyDelete { version: p.version });
                Reply::Count(p.version)
            }
            Some(_) => Reply::Err(OmError::Rejected("already deleted".into())),
            None => Reply::Err(OmError::NotFound("product".into())),
        },
        other => not_mine(ctx.id(), &other),
    })
}

// ---------------------------------------------------------------------
// Replica (cart-side product view)
// ---------------------------------------------------------------------

fn make_replica_grain(snapshot: Option<Vec<u8>>) -> Box<dyn om_actor::Grain<Msg, Reply>> {
    let mut state: Option<ProductReplica> = restore(snapshot);
    Box::new(move |ctx: &mut GrainContext<'_, Msg>, msg: Msg, _| match msg {
        Msg::ReplicaIngest(r) => {
            persist_state(ctx, &r);
            state = Some(r);
            Reply::Ok
        }
        Msg::ReplicaApplyUpdate { price, version } => match state.as_mut() {
            Some(r) => {
                let applied = r.apply_update(price, version);
                if applied {
                    persist_state(ctx, r);
                }
                Reply::Bool(applied)
            }
            None => Reply::Err(OmError::NotFound("replica".into())),
        },
        Msg::ReplicaApplyDelete { version } => match state.as_mut() {
            Some(r) => {
                let applied = r.apply_delete(version);
                if applied {
                    persist_state(ctx, r);
                }
                Reply::Bool(applied)
            }
            None => Reply::Err(OmError::NotFound("replica".into())),
        },
        Msg::ReplicaGet => Reply::Replica(state.clone()),
        other => not_mine(ctx.id(), &other),
    })
}

// ---------------------------------------------------------------------
// Stock
// ---------------------------------------------------------------------

/// Persists the stock grain's committed state as a codec snapshot. Stock
/// is the grain kind the benchmark writes hardest (every checkout), so it
/// is the state the storage backend is measured against.
fn persist_stock(ctx: &mut GrainContext<'_, Msg>, svc: &StockService) {
    if let Ok(bytes) = om_common::codec::to_bytes(svc) {
        ctx.persist(bytes);
    }
}

fn make_stock_grain(snapshot: Option<Vec<u8>>) -> Box<dyn om_actor::Grain<Msg, Reply>> {
    // Reactivation: restore the last committed state saved by a previous
    // activation, if the backend holds one.
    let mut part: Option<TxParticipant<StockService>> = snapshot
        .and_then(|bytes| om_common::codec::from_bytes::<StockService>(&bytes).ok())
        .map(TxParticipant::new);
    // A replicated product deletion arriving while a checkout transaction
    // holds the write lock cannot touch committed state; it parks here and
    // applies as soon as the lock is released (commit or abort). Dropping
    // it instead would permanently violate the stock→product integrity
    // criterion even on the full-featured stack.
    let mut deferred_delete: Option<u64> = None;
    Box::new(move |ctx: &mut GrainContext<'_, Msg>, msg: Msg, _| {
        if let Some(p) = part.as_mut() {
            if let Some(reply) = handle_tx_protocol(p, &msg, ctx, |s, ctx| persist_stock(ctx, s)) {
                if !p.is_locked() {
                    if let Some(version) = deferred_delete.take() {
                        let _ = p.mutate_committed(|s| s.apply_product_delete(version));
                        persist_stock(ctx, p.committed());
                    }
                }
                return reply;
            }
        }
        match msg {
            Msg::StockIngest { key, qty } => {
                match part.as_mut() {
                    Some(p) => {
                        // Replenishment of an existing item.
                        let _ = p.mutate_committed(|s| s.item.replenish(qty));
                    }
                    None => part = Some(TxParticipant::new(StockService::new(key, qty))),
                }
                persist_stock(ctx, part.as_ref().expect("just ingested").committed());
                Reply::Ok
            }
            Msg::StockReserveEvent {
                tid,
                customer,
                item,
                method,
                decline_rate_bp,
            } => {
                let reserved = match part.as_mut() {
                    Some(p) => {
                        let mut ok = false;
                        let _ = p.mutate_committed(|s| ok = s.reserve(item.quantity).is_ok());
                        if ok {
                            persist_stock(ctx, p.committed());
                        }
                        ok
                    }
                    None => false,
                };
                ctx.send(
                    order_grain(customer),
                    Msg::OrderStockAnswer {
                        tid,
                        item,
                        reserved,
                        method,
                        decline_rate_bp,
                    },
                );
                Reply::Bool(reserved)
            }
            Msg::StockConfirm { qty } => match part.as_mut() {
                Some(p) => {
                    let _ = p.mutate_committed(|s| s.confirm(qty));
                    persist_stock(ctx, p.committed());
                    Reply::Ok
                }
                None => Reply::Err(OmError::NotFound("stock".into())),
            },
            Msg::StockCancel { qty } => match part.as_mut() {
                Some(p) => {
                    let _ = p.mutate_committed(|s| s.cancel(qty));
                    persist_stock(ctx, p.committed());
                    Reply::Ok
                }
                None => Reply::Err(OmError::NotFound("stock".into())),
            },
            Msg::StockApplyDelete { version } => match part.as_mut() {
                Some(p) => {
                    if p.mutate_committed(|s| s.apply_product_delete(version)).is_err() {
                        deferred_delete =
                            Some(deferred_delete.map_or(version, |v| v.max(version)));
                    } else {
                        persist_stock(ctx, p.committed());
                    }
                    Reply::Ok
                }
                None => Reply::Err(OmError::NotFound("stock".into())),
            },
            Msg::StockGet => Reply::Stock(part.as_ref().map(|p| {
                let s = p.committed();
                StockSnapshot {
                    item: s.item.clone(),
                    qty_sold: s.qty_sold,
                }
            })),
            // Transactional surface.
            Msg::TxStockReserve { tid, qty } => with_tx(part.as_mut(), tid, |p, tid| {
                p.acquire(tid, LockMode::Write)?;
                p.stage_mut(tid)?.reserve(qty)
            }),
            Msg::TxStockConfirm { tid, qty } => with_tx(part.as_mut(), tid, |p, tid| {
                p.acquire(tid, LockMode::Write)?;
                p.stage_mut(tid)?.confirm(qty);
                Ok(())
            }),
            Msg::TxStockCancel { tid, qty } => with_tx(part.as_mut(), tid, |p, tid| {
                p.acquire(tid, LockMode::Write)?;
                p.stage_mut(tid)?.cancel(qty);
                Ok(())
            }),
            other => not_mine(ctx.id(), &other),
        }
    })
}

/// Runs a transactional op against an optional participant, mapping
/// errors into `Reply::Err`.
fn with_tx<S: Clone>(
    part: Option<&mut TxParticipant<S>>,
    tid: TransactionId,
    op: impl FnOnce(&mut TxParticipant<S>, TransactionId) -> Result<(), OmError>,
) -> Reply {
    match part {
        Some(p) => match op(p, tid) {
            Ok(()) => Reply::Ok,
            Err(e) => Reply::Err(e),
        },
        None => Reply::Err(OmError::NotFound("state not ingested".into())),
    }
}

// ---------------------------------------------------------------------
// Cart
// ---------------------------------------------------------------------

fn make_cart_grain(customer: CustomerId) -> Box<dyn om_actor::Grain<Msg, Reply>> {
    let mut svc = CartService::new(customer);
    Box::new(move |ctx: &mut GrainContext<'_, Msg>, msg: Msg, _| match msg {
        Msg::CartAdd(item) => match svc.add_item(item) {
            Ok(()) => Reply::Ok,
            Err(e) => Reply::Err(e),
        },
        Msg::CartCheckoutEvent {
            tid,
            method,
            decline_rate_bp,
        } => match svc.begin_checkout() {
            Ok(items) => {
                let at = ctx.tick();
                ctx.send(
                    order_grain(customer),
                    Msg::OrderBeginAssembly {
                        tid,
                        expected: items.len(),
                        at,
                    },
                );
                for item in &items {
                    ctx.send(
                        stock_grain(item.product),
                        Msg::StockReserveEvent {
                            tid,
                            customer,
                            item: item.clone(),
                            method,
                            decline_rate_bp,
                        },
                    );
                }
                // Optimistic completion: the eventual binding does not
                // wait for the workflow (paper: "does not ensure all
                // actions are complete as part of a business transaction").
                svc.finish_checkout();
                Reply::Count(items.len() as u64)
            }
            Err(e) => Reply::Err(e),
        },
        Msg::CartApplyPriceUpdate {
            product,
            price,
            version,
        } => Reply::Bool(svc.apply_price_update(product, price, version)),
        Msg::CartApplyDelete { product } => Reply::Bool(svc.apply_product_delete(product)),
        Msg::CartBeginCheckout => match svc.begin_checkout() {
            Ok(items) => Reply::Items(items),
            Err(e) => Reply::Err(e),
        },
        Msg::CartFinishCheckout => {
            svc.finish_checkout();
            Reply::Ok
        }
        Msg::CartAbortCheckout => {
            svc.abort_checkout();
            Reply::Ok
        }
        Msg::CartGet => Reply::Cart(Some(svc.cart.clone())),
        other => not_mine(ctx.id(), &other),
    })
}

// ---------------------------------------------------------------------
// Order
// ---------------------------------------------------------------------

fn make_order_grain(customer: CustomerId) -> Box<dyn om_actor::Grain<Msg, Reply>> {
    let mut part = TxParticipant::new(OrderService::new(customer));
    let mut delivered_counts: HashMap<OrderId, u32> = HashMap::new();
    Box::new(move |ctx: &mut GrainContext<'_, Msg>, msg: Msg, _| {
        if let Some(reply) = handle_tx_protocol(&mut part, &msg, ctx, |_, _| {}) {
            return reply;
        }
        match msg {
            Msg::OrderBeginAssembly { tid, expected, at } => {
                let _ = part.mutate_committed(|s| s.begin_assembly(tid, expected, at));
                Reply::Ok
            }
            Msg::OrderStockAnswer {
                tid,
                item,
                reserved,
                method,
                decline_rate_bp,
            } => {
                let mut completed = None;
                let _ = part.mutate_committed(|s| {
                    completed = s.record_stock_answer(tid, item, reserved);
                });
                let Some(done) = completed else {
                    return Reply::Ok;
                };
                if done.confirmed.is_empty() {
                    // Entire checkout rejected by stock; nothing reserved.
                    return Reply::Ok;
                }
                let at = ctx.tick();
                let mut order = None;
                let _ = part.mutate_committed(|s| {
                    order = s.create_order(&done.confirmed, at).ok();
                });
                let Some(order) = order else {
                    return Reply::Err(OmError::Internal("order creation failed".into()));
                };
                // Seller dashboards learn of the new entries.
                for item in &order.items {
                    ctx.send(
                        seller_grain(item.seller),
                        Msg::SellerAddEntry(om_common::entity::OrderEntry {
                            order: order.id,
                            seller: item.seller,
                            product: item.product,
                            quantity: item.quantity,
                            total_amount: item.total_amount,
                            status: OrderStatus::Invoiced,
                        }),
                    );
                }
                let lines: Vec<OrderLineRef> = order
                    .items
                    .iter()
                    .map(|i| OrderLineRef {
                        seller: i.seller,
                        product: i.product,
                        quantity: i.quantity,
                        total_amount: i.total_amount,
                        freight_value: i.freight_value,
                    })
                    .collect();
                ctx.send(
                    payment_grain(customer),
                    Msg::PaymentProcessEvent {
                        tid,
                        order: order.id,
                        customer,
                        method,
                        amount: order.total_invoice(),
                        decline_rate_bp,
                        lines,
                    },
                );
                Reply::Ok
            }
            Msg::OrderSetStatus { order, status } => {
                let at = ctx.tick();
                let mut result = Ok(());
                let _ = part.mutate_committed(|s| {
                    result = s.set_status(order, status, at);
                });
                match result {
                    Ok(()) | Err(OmError::Conflict(_)) => Reply::Ok,
                    Err(e) => Reply::Err(e),
                }
            }
            Msg::OrderPackagesDelivered { order, packages } => {
                let total = {
                    let e = delivered_counts.entry(order).or_insert(0);
                    *e += packages;
                    *e
                };
                let expected = part
                    .committed()
                    .orders
                    .get(&order)
                    .map(|o| o.items.len() as u32)
                    .unwrap_or(u32::MAX);
                if total >= expected {
                    let at = ctx.tick();
                    let _ = part.mutate_committed(|s| {
                        let _ = s.set_status(order, OrderStatus::Delivered, at);
                    });
                    ctx.send(customer_grain(customer), Msg::CustomerDelivery);
                }
                Reply::Ok
            }
            Msg::OrderGetAll => {
                Reply::Orders(part.committed().orders.values().cloned().collect())
            }
            Msg::OrderGet(order) => Reply::Orders(
                part.committed()
                    .orders
                    .get(&order)
                    .cloned()
                    .into_iter()
                    .collect(),
            ),
            Msg::OrderStuckAssemblies => {
                Reply::Count(part.committed().stuck_assemblies() as u64)
            }
            Msg::TxOrderCreate { tid, items, at } => {
                match part
                    .acquire(tid, LockMode::Write)
                    .and_then(|_| part.stage_mut(tid)?.create_order(&items, at))
                {
                    Ok(order) => Reply::Order(order),
                    Err(e) => Reply::Err(e),
                }
            }
            Msg::TxOrderSetStatus { tid, order, status } => {
                let at = ctx.tick();
                match part
                    .acquire(tid, LockMode::Write)
                    .and_then(|_| part.stage_mut(tid)?.set_status(order, status, at))
                {
                    Ok(()) => Reply::Ok,
                    Err(e) => Reply::Err(e),
                }
            }
            other => not_mine(ctx.id(), &other),
        }
    })
}

// ---------------------------------------------------------------------
// Payment
// ---------------------------------------------------------------------

fn make_payment_grain(customer: CustomerId) -> Box<dyn om_actor::Grain<Msg, Reply>> {
    let mut part = TxParticipant::new(PaymentService::new(customer));
    Box::new(move |ctx: &mut GrainContext<'_, Msg>, msg: Msg, _| {
        if let Some(reply) = handle_tx_protocol(&mut part, &msg, ctx, |_, _| {}) {
            return reply;
        }
        match msg {
            Msg::PaymentProcessEvent {
                tid,
                order,
                customer: cust,
                method,
                amount,
                decline_rate_bp,
                lines,
            } => {
                let at = ctx.tick();
                let mut payment = None;
                let _ = part.mutate_committed(|s| {
                    payment = Some(s.process(
                        order,
                        method,
                        amount,
                        from_basis_points(decline_rate_bp),
                        at,
                    ));
                });
                let payment = payment.expect("mutate_committed ran");
                let status = if payment.approved {
                    OrderStatus::Paid
                } else {
                    OrderStatus::PaymentFailed
                };
                ctx.send(order_grain(cust), Msg::OrderSetStatus { order, status });
                ctx.send(
                    customer_grain(cust),
                    Msg::CustomerPaymentResult {
                        approved: payment.approved,
                        amount: payment.amount,
                    },
                );
                for line in &lines {
                    ctx.send(
                        seller_grain(line.seller),
                        Msg::SellerApplyStatus { order, status },
                    );
                }
                if payment.approved {
                    for line in &lines {
                        ctx.send(
                            stock_grain(line.product),
                            Msg::StockConfirm { qty: line.quantity },
                        );
                    }
                    // One shipment per order; group lines by seller.
                    let mut by_seller: HashMap<SellerId, Vec<OrderLineRef>> = HashMap::new();
                    for line in lines {
                        by_seller.entry(line.seller).or_default().push(line);
                    }
                    for (seller, seller_lines) in by_seller {
                        ctx.send(
                            shipment_grain(seller),
                            Msg::ShipCreatePackages {
                                tid,
                                shipment: ShipmentId(order.0),
                                order,
                                customer: cust,
                                lines: seller_lines,
                            },
                        );
                    }
                } else {
                    for line in &lines {
                        ctx.send(
                            stock_grain(line.product),
                            Msg::StockCancel { qty: line.quantity },
                        );
                    }
                }
                Reply::Payment(payment)
            }
            Msg::PaymentGetAll => {
                Reply::Payments(part.committed().payments.values().cloned().collect())
            }
            Msg::TxPaymentProcess {
                tid,
                order,
                method,
                amount,
                decline_rate_bp,
            } => {
                let at = ctx.tick();
                match part.acquire(tid, LockMode::Write).and_then(|_| {
                    Ok(part.stage_mut(tid)?.process(
                        order,
                        method,
                        amount,
                        from_basis_points(decline_rate_bp),
                        at,
                    ))
                }) {
                    Ok(p) => Reply::Payment(p),
                    Err(e) => Reply::Err(e),
                }
            }
            other => not_mine(ctx.id(), &other),
        }
    })
}

// ---------------------------------------------------------------------
// Shipment
// ---------------------------------------------------------------------

fn make_shipment_grain(seller: SellerId) -> Box<dyn om_actor::Grain<Msg, Reply>> {
    let mut part = TxParticipant::new(ShipmentService::new(seller));
    Box::new(move |ctx: &mut GrainContext<'_, Msg>, msg: Msg, _| {
        if let Some(reply) = handle_tx_protocol(&mut part, &msg, ctx, |_, _| {}) {
            return reply;
        }
        match msg {
            Msg::ShipCreatePackages {
                tid: _,
                shipment,
                order,
                customer,
                lines,
            } => {
                let at = ctx.tick();
                let mut count = 0;
                let _ = part.mutate_committed(|s| {
                    count = s
                        .create_packages(shipment, order, customer, &lines, at)
                        .len();
                });
                ctx.send(
                    order_grain(customer),
                    Msg::OrderSetStatus {
                        order,
                        status: OrderStatus::InTransit,
                    },
                );
                ctx.send(
                    seller_grain(seller),
                    Msg::SellerApplyStatus {
                        order,
                        status: OrderStatus::InTransit,
                    },
                );
                Reply::Count(count as u64)
            }
            Msg::ShipOldest => Reply::OldestUndelivered(part.committed().oldest_undelivered()),
            Msg::ShipDeliverOldest => {
                let at = ctx.tick();
                let mut delivered = None;
                let _ = part.mutate_committed(|s| {
                    delivered = s.deliver_oldest_order(at);
                });
                match delivered {
                    Some((order, pkgs)) => {
                        ctx.send(
                            order_grain(customer_of_order(order)),
                            Msg::OrderPackagesDelivered {
                                order,
                                packages: pkgs.len() as u32,
                            },
                        );
                        ctx.send(
                            seller_grain(seller),
                            Msg::SellerApplyStatus {
                                order,
                                status: OrderStatus::Delivered,
                            },
                        );
                        Reply::Delivered {
                            order: Some(order),
                            packages: pkgs.len() as u32,
                        }
                    }
                    None => Reply::Delivered {
                        order: None,
                        packages: 0,
                    },
                }
            }
            Msg::ShipGetPackages => Reply::Packages(
                part.committed()
                    .packages
                    .iter()
                    .map(|p| PackageSnapshot {
                        order: p.order,
                        seller: p.seller,
                        product: p.product,
                        delivered: p.status == om_common::entity::PackageStatus::Delivered,
                        shipped_at: p.shipped_at.raw(),
                    })
                    .collect(),
            ),
            Msg::TxShipCreatePackages {
                tid,
                shipment,
                order,
                customer,
                lines,
            } => {
                let at = ctx.tick();
                match part.acquire(tid, LockMode::Write).and_then(|_| {
                    Ok(part
                        .stage_mut(tid)?
                        .create_packages(shipment, order, customer, &lines, at)
                        .len())
                }) {
                    Ok(n) => Reply::Count(n as u64),
                    Err(e) => Reply::Err(e),
                }
            }
            Msg::TxShipDeliverOldest { tid } => {
                let at = ctx.tick();
                match part
                    .acquire(tid, LockMode::Write)
                    .and_then(|_| Ok(part.stage_mut(tid)?.deliver_oldest_order(at)))
                {
                    Ok(Some((order, pkgs))) => Reply::Delivered {
                        order: Some(order),
                        packages: pkgs.len() as u32,
                    },
                    Ok(None) => Reply::Delivered {
                        order: None,
                        packages: 0,
                    },
                    Err(e) => Reply::Err(e),
                }
            }
            other => not_mine(ctx.id(), &other),
        }
    })
}

// ---------------------------------------------------------------------
// Seller
// ---------------------------------------------------------------------

fn make_seller_grain(
    seller: SellerId,
    snapshot: Option<Vec<u8>>,
) -> Box<dyn om_actor::Grain<Msg, Reply>> {
    let mut part: Option<TxParticipant<SellerView>> =
        restore::<SellerView>(snapshot).map(TxParticipant::new);
    Box::new(move |ctx: &mut GrainContext<'_, Msg>, msg: Msg, _| {
        if let Some(p) = part.as_mut() {
            if let Some(reply) = handle_tx_protocol(p, &msg, ctx, |s, ctx| persist_state(ctx, s)) {
                return reply;
            }
        }
        match msg {
            Msg::SellerIngest(s) => {
                let view = SellerView::new(s);
                persist_state(ctx, &view);
                part = Some(TxParticipant::new(view));
                Reply::Ok
            }
            Msg::SellerAddEntry(entry) => match part.as_mut() {
                Some(p) => {
                    let _ = p.mutate_committed(|v| v.add_entry(entry));
                    persist_state(ctx, p.committed());
                    Reply::Ok
                }
                None => Reply::Err(OmError::NotFound(format!("seller {seller}"))),
            },
            Msg::SellerApplyStatus { order, status } => match part.as_mut() {
                Some(p) => {
                    let _ = p.mutate_committed(|v| v.apply_status(order, status));
                    persist_state(ctx, p.committed());
                    Reply::Ok
                }
                None => Reply::Err(OmError::NotFound(format!("seller {seller}"))),
            },
            Msg::SellerGetAggregate => match part.as_ref() {
                Some(p) => {
                    let (amount, count) = p.committed().aggregate();
                    Reply::Aggregate { amount, count }
                }
                None => Reply::Err(OmError::NotFound(format!("seller {seller}"))),
            },
            Msg::SellerGetEntries => match part.as_ref() {
                Some(p) => Reply::Entries(p.committed().entry_list()),
                None => Reply::Err(OmError::NotFound(format!("seller {seller}"))),
            },
            Msg::SellerGetProfile => {
                Reply::SellerProfile(part.as_ref().map(|p| p.committed().seller.clone()))
            }
            Msg::TxSellerAddEntry { tid, entry } => with_tx(part.as_mut(), tid, |p, tid| {
                p.acquire(tid, LockMode::Write)?;
                p.stage_mut(tid)?.add_entry(entry);
                Ok(())
            }),
            Msg::TxSellerApplyStatus { tid, order, status } => {
                with_tx(part.as_mut(), tid, |p, tid| {
                    p.acquire(tid, LockMode::Write)?;
                    p.stage_mut(tid)?.apply_status(order, status);
                    Ok(())
                })
            }
            other => not_mine(ctx.id(), &other),
        }
    })
}

// ---------------------------------------------------------------------
// Customer
// ---------------------------------------------------------------------

fn make_customer_grain(
    customer: CustomerId,
    snapshot: Option<Vec<u8>>,
) -> Box<dyn om_actor::Grain<Msg, Reply>> {
    let mut part: Option<TxParticipant<Customer>> =
        restore::<Customer>(snapshot).map(TxParticipant::new);
    Box::new(move |ctx: &mut GrainContext<'_, Msg>, msg: Msg, _| {
        if let Some(p) = part.as_mut() {
            if let Some(reply) = handle_tx_protocol(p, &msg, ctx, |s, ctx| persist_state(ctx, s)) {
                return reply;
            }
        }
        match msg {
            Msg::CustomerIngest(c) => {
                persist_state(ctx, &c);
                part = Some(TxParticipant::new(c));
                Reply::Ok
            }
            Msg::CustomerPaymentResult { approved, amount } => match part.as_mut() {
                Some(p) => {
                    let _ = p.mutate_committed(|c| {
                        if approved {
                            c.success_payment_count += 1;
                            c.total_spent += amount;
                        } else {
                            c.failed_payment_count += 1;
                        }
                    });
                    persist_state(ctx, p.committed());
                    Reply::Ok
                }
                None => Reply::Err(OmError::NotFound(format!("customer {customer}"))),
            },
            Msg::CustomerDelivery => match part.as_mut() {
                Some(p) => {
                    let _ = p.mutate_committed(|c| c.delivery_count += 1);
                    persist_state(ctx, p.committed());
                    Reply::Ok
                }
                None => Reply::Err(OmError::NotFound(format!("customer {customer}"))),
            },
            Msg::CustomerGet => {
                Reply::CustomerProfile(part.as_ref().map(|p| p.committed().clone()))
            }
            Msg::TxCustomerPaymentResult {
                tid,
                approved,
                amount,
            } => with_tx(part.as_mut(), tid, |p, tid| {
                p.acquire(tid, LockMode::Write)?;
                let c = p.stage_mut(tid)?;
                if approved {
                    c.success_payment_count += 1;
                    c.total_spent += amount;
                } else {
                    c.failed_payment_count += 1;
                }
                Ok(())
            }),
            other => not_mine(ctx.id(), &other),
        }
    })
}

/// Payment method chosen deterministically from a customer id (used by
/// bindings that need a default).
pub fn default_method(customer: CustomerId) -> PaymentMethod {
    match customer.0 % 4 {
        0 => PaymentMethod::CreditCard,
        1 => PaymentMethod::DebitCard,
        2 => PaymentMethod::Boleto,
        _ => PaymentMethod::Voucher,
    }
}
