//! Grain message and reply vocabulary shared by the actor bindings
//! (Eventual and Transactional/Customized).
//!
//! One uniform enum pair keeps the actor runtime monomorphic; each grain
//! kind handles its own variants and answers `Reply::Err` for foreign
//! ones (which would indicate a routing bug and is asserted against in
//! tests).

use om_common::entity::{
    Customer, OrderEntry, OrderStatus, Payment, PaymentMethod, Product, Seller,
};
use om_common::entity::{CartItem, Order};
use om_common::event::OrderLineRef;
use om_common::ids::*;
use om_common::time::EventTime;
use om_common::{Money, OmError};

use crate::api::{PackageSnapshot, StockSnapshot};
use crate::domain::ProductReplica;

/// Messages understood by the marketplace grains.
#[derive(Debug, Clone)]
pub enum Msg {
    // ---- product grain (key = product id) ------------------------------
    ProductIngest(Product),
    ProductGet,
    /// Seller-issued price update; the grain bumps its version and emits a
    /// replication event toward the cart-side replica.
    ProductPriceUpdate(Money),
    /// Seller-issued delete; emits replication events to replica + stock.
    ProductDelete,

    // ---- replica grain (key = product id, cart-side view) --------------
    ReplicaIngest(ProductReplica),
    ReplicaApplyUpdate { price: Money, version: u64 },
    ReplicaApplyDelete { version: u64 },
    ReplicaGet,

    // ---- stock grain (key = product id) ---------------------------------
    StockIngest { key: StockKey, qty: u32 },
    /// Eventual path: reserve and answer the order grain with an event.
    StockReserveEvent {
        tid: TransactionId,
        customer: CustomerId,
        item: CartItem,
        method: PaymentMethod,
        decline_rate_bp: u32,
    },
    StockConfirm { qty: u32 },
    StockCancel { qty: u32 },
    StockApplyDelete { version: u64 },
    StockGet,

    // ---- cart grain (key = customer id) ---------------------------------
    CartAdd(CartItem),
    /// Eventual path: seal, fan out reservations, finish optimistically.
    CartCheckoutEvent {
        tid: TransactionId,
        method: PaymentMethod,
        decline_rate_bp: u32,
    },
    CartApplyPriceUpdate { product: ProductId, price: Money, version: u64 },
    CartApplyDelete { product: ProductId },
    /// Takes the sealed items for a client-coordinated checkout
    /// (transactional path) without fanning out events.
    CartBeginCheckout,
    CartFinishCheckout,
    CartAbortCheckout,
    CartGet,

    // ---- order grain (key = customer id) --------------------------------
    OrderBeginAssembly { tid: TransactionId, expected: usize, at: EventTime },
    OrderStockAnswer {
        tid: TransactionId,
        item: CartItem,
        reserved: bool,
        method: PaymentMethod,
        decline_rate_bp: u32,
    },
    OrderSetStatus { order: OrderId, status: OrderStatus },
    /// Package-delivery progress; order flips to Delivered when all its
    /// lines have delivered packages.
    OrderPackagesDelivered { order: OrderId, packages: u32 },
    OrderGetAll,
    /// Fetches one order by id.
    OrderGet(OrderId),
    OrderStuckAssemblies,

    // ---- payment grain (key = customer id) -------------------------------
    PaymentProcessEvent {
        tid: TransactionId,
        order: OrderId,
        customer: CustomerId,
        method: PaymentMethod,
        amount: Money,
        decline_rate_bp: u32,
        lines: Vec<OrderLineRef>,
    },
    PaymentGetAll,

    // ---- shipment grain (key = seller id) --------------------------------
    ShipCreatePackages {
        tid: TransactionId,
        shipment: ShipmentId,
        order: OrderId,
        customer: CustomerId,
        lines: Vec<OrderLineRef>,
    },
    ShipOldest,
    ShipDeliverOldest,
    ShipGetPackages,

    // ---- seller grain (key = seller id) ----------------------------------
    SellerIngest(Seller),
    SellerAddEntry(OrderEntry),
    SellerApplyStatus { order: OrderId, status: OrderStatus },
    SellerGetAggregate,
    SellerGetEntries,
    SellerGetProfile,

    // ---- customer grain (key = customer id) -------------------------------
    CustomerIngest(Customer),
    CustomerPaymentResult { approved: bool, amount: Money },
    CustomerDelivery,
    CustomerGet,

    // ---- transactional facet (grains wrapping TxParticipant) -------------
    /// Acquires the write lock and applies `op` to the staged state.
    TxStockReserve { tid: TransactionId, qty: u32 },
    TxStockConfirm { tid: TransactionId, qty: u32 },
    TxStockCancel { tid: TransactionId, qty: u32 },
    TxOrderCreate { tid: TransactionId, items: Vec<CartItem>, at: EventTime },
    TxOrderSetStatus { tid: TransactionId, order: OrderId, status: OrderStatus },
    TxPaymentProcess {
        tid: TransactionId,
        order: OrderId,
        method: PaymentMethod,
        amount: Money,
        decline_rate_bp: u32,
    },
    TxSellerAddEntry { tid: TransactionId, entry: OrderEntry },
    TxSellerApplyStatus { tid: TransactionId, order: OrderId, status: OrderStatus },
    TxCustomerPaymentResult { tid: TransactionId, approved: bool, amount: Money },
    TxShipCreatePackages {
        tid: TransactionId,
        shipment: ShipmentId,
        order: OrderId,
        customer: CustomerId,
        lines: Vec<OrderLineRef>,
    },
    TxShipDeliverOldest { tid: TransactionId },
    /// 2PC surface.
    TxPrepare { tid: TransactionId },
    TxCommit { tid: TransactionId },
    TxAbort { tid: TransactionId },
}

/// Replies from marketplace grains.
#[derive(Debug, Clone)]
pub enum Reply {
    Ok,
    Bool(bool),
    Count(u64),
    Money(Money),
    Product(Option<Product>),
    Replica(Option<ProductReplica>),
    Stock(Option<StockSnapshot>),
    Cart(Option<om_common::entity::Cart>),
    Items(Vec<CartItem>),
    Order(Order),
    Orders(Vec<Order>),
    Payment(Payment),
    Payments(Vec<Payment>),
    Packages(Vec<PackageSnapshot>),
    OldestUndelivered(Option<EventTime>),
    Delivered { order: Option<OrderId>, packages: u32 },
    Entries(Vec<OrderEntry>),
    Aggregate { amount: Money, count: u64 },
    SellerProfile(Option<Seller>),
    CustomerProfile(Option<Customer>),
    Vote(bool),
    Err(OmError),
}

impl Reply {
    /// Unwraps an `Ok`-like reply, propagating `Reply::Err`.
    pub fn ok(self) -> Result<(), OmError> {
        match self {
            Reply::Err(e) => Err(e),
            _ => Ok(()),
        }
    }

    /// Extracts an error if present.
    pub fn err(&self) -> Option<&OmError> {
        match self {
            Reply::Err(e) => Some(e),
            _ => None,
        }
    }
}

/// Basis points helper: the driver's decline rate (f64) travels through
/// messages as integer basis points to keep `Msg: Eq`-free but hashable
/// debugging simple and avoid float drift.
pub fn to_basis_points(rate: f64) -> u32 {
    (rate.clamp(0.0, 1.0) * 10_000.0).round() as u32
}

/// Inverse of [`to_basis_points`].
pub fn from_basis_points(bp: u32) -> f64 {
    bp as f64 / 10_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_point_roundtrip() {
        for rate in [0.0, 0.05, 0.5, 1.0] {
            assert!((from_basis_points(to_basis_points(rate)) - rate).abs() < 1e-9);
        }
        assert_eq!(to_basis_points(-1.0), 0);
        assert_eq!(to_basis_points(2.0), 10_000);
    }

    #[test]
    fn reply_ok_propagates_errors() {
        assert!(Reply::Ok.ok().is_ok());
        assert!(Reply::Count(3).ok().is_ok());
        let e = Reply::Err(OmError::Rejected("x".into()));
        assert_eq!(e.ok().unwrap_err().label(), "rejected");
    }
}
