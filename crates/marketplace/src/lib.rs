//! # om-marketplace
//!
//! The **Online Marketplace** benchmark application (paper §II): eight
//! microservices — Cart, Product, Stock, Order, Payment, Shipment,
//! Customer, Seller — implemented once as platform-agnostic state machines
//! ([`domain`]) and bound to four competing data platforms ([`bindings`]),
//! mirroring the paper's §III evaluation matrix:
//!
//! | Binding | Substrate | Guarantees |
//! |---|---|---|
//! | [`bindings::eventual`] | `om-actor` | eventual consistency, async events (may drop/duplicate under fault injection) |
//! | [`bindings::transactional`] | `om-actor` + [`om_actor::tx`] | ACID checkout via 2PL (wait-die) + 2PC |
//! | [`bindings::dataflow`] | `om-dataflow` | exactly-once event processing |
//! | [`bindings::customized`] | `om-actor` tx + `om-mvcc` + `om-kv` + `om-log` | + snapshot-consistent dashboard, causal replication, audit log |
//!
//! All bindings implement [`api::MarketplacePlatform`], the uniform surface
//! the benchmark driver (`om-driver`) submits the five business
//! transactions through: Customer Checkout, Price Update, Product Delete,
//! Update Delivery and Seller Dashboard.

pub mod api;
pub mod bindings;
pub mod domain;
pub mod factory;

pub use api::{
    CheckoutOutcome, CheckoutRequest, MarketSnapshot, MarketplacePlatform, PlatformKind,
    UnwedgeOutcome,
};
pub use factory::{build_platform, PlatformSpec};
pub use bindings::{
    customized::CustomizedPlatform, dataflow::DataflowPlatform, eventual::EventualPlatform,
    transactional::TransactionalPlatform,
};
