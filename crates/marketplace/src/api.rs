//! The uniform platform surface the benchmark driver submits the five
//! business transactions through.

use om_common::entity::{
    Customer, Order, Payment, Product, Seller, SellerDashboard, StockItem,
};
use om_common::config::BackendKind;
use om_common::entity::PaymentMethod;
use om_common::ids::{CustomerId, OrderId, ProductId, SellerId};
use om_common::{Money, OmResult};
use serde::{Deserialize, Serialize};

/// Which of the four paper implementations a platform instance is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    /// Orleans Eventual — eventually consistent actor messaging.
    Eventual,
    /// Orleans Transactions — ACID across grains (2PL + 2PC).
    Transactional,
    /// Apache Flink Statefun — exactly-once dataflow.
    Dataflow,
    /// Customized Orleans — transactions + MVCC querying + causal KV
    /// replication + audit log.
    Customized,
}

impl PlatformKind {
    pub fn label(self) -> &'static str {
        match self {
            PlatformKind::Eventual => "orleans_eventual",
            PlatformKind::Transactional => "orleans_transactions",
            PlatformKind::Dataflow => "statefun",
            PlatformKind::Customized => "customized_orleans",
        }
    }
}

/// One item of a checkout request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckoutItem {
    pub seller: SellerId,
    pub product: ProductId,
    pub quantity: u32,
}

/// A Customer Checkout request (paper §II).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckoutRequest {
    pub customer: CustomerId,
    pub items: Vec<CheckoutItem>,
    pub method: PaymentMethod,
}

/// Result of a checkout as observed by the submitting client.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckoutOutcome {
    /// The order was placed (eventual bindings return this as soon as the
    /// request is accepted; transactional bindings after full commit).
    Placed {
        order: Option<OrderId>,
        total: Option<Money>,
    },
    /// The platform rejected the checkout (empty cart, all items out of
    /// stock, payment declined, ...).
    Rejected(String),
}

/// A consistent-as-possible dump of platform state for the post-run
/// auditor. Collected after `quiesce()`, so platforms that completed all
/// asynchronous work will present their true final state; missing effects
/// (lost events) show up as discrepancies the auditor counts.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MarketSnapshot {
    pub products: Vec<Product>,
    pub stock: Vec<StockSnapshot>,
    pub orders: Vec<Order>,
    pub payments: Vec<Payment>,
    pub shipments: Vec<PackageSnapshot>,
    pub sellers: Vec<Seller>,
    pub customers: Vec<Customer>,
    /// Checkout assemblies stuck waiting for lost events (eventual mode).
    pub stuck_assemblies: u64,
}

/// Stock line within a snapshot, with sale accounting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StockSnapshot {
    pub item: StockItem,
    pub qty_sold: u64,
}

/// Package line within a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackageSnapshot {
    pub order: OrderId,
    pub seller: SellerId,
    pub product: ProductId,
    pub delivered: bool,
    /// Lamport time the package shipped — the auditor compares it with the
    /// payment time to check the payment-before-shipment ordering
    /// criterion.
    pub shipped_at: u64,
}

/// Outcome of a crash-recovery drill
/// ([`MarketplacePlatform::crash_and_recover`]): how fast the platform
/// restarted from its last durable checkpoint and how much work it had
/// to replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryOutcome {
    /// Label of the checkpoint store recovery read from
    /// (`"in_memory"`, `"eventual_kv"`, `"snapshot_isolation"`).
    pub store: String,
    /// Epoch the platform restarted from.
    pub recovered_epoch: u64,
    /// Epoch after the post-crash replay finished (never below
    /// `recovered_epoch`: recovery loses no committed epoch).
    pub final_epoch: u64,
    /// Wall-clock microseconds the state restore took.
    pub recovery_us: u64,
    /// Ingress records replayed after the restore.
    pub replayed_ingress: u64,
}

/// Outcome of an in-place wedged-store repair
/// ([`MarketplacePlatform::unwedge`]): what the repair dropped and where
/// the store stands now.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnwedgeOutcome {
    /// Whether the store was actually wedged when the repair ran (a
    /// repair on a healthy store is a no-op and reports `false`).
    pub was_wedged: bool,
    /// Torn (unacknowledged) tail bytes truncated by the repair. Always
    /// bytes that were never acknowledged to any client.
    pub torn_bytes_dropped: u64,
    /// Whether the store accepts commits again after the repair.
    pub healthy: bool,
}

/// The uniform platform interface (one impl per paper binding).
///
/// All five workload transactions plus ingestion, quiescing and state
/// export. Implementations must be thread-safe: the driver submits from
/// many worker threads concurrently.
pub trait MarketplacePlatform: Send + Sync {
    fn kind(&self) -> PlatformKind;

    /// Which pluggable [`StateBackend`](om_storage::StateBackend) the
    /// platform persists state through, or `None` for platforms whose
    /// state lives only inside their runtime (the dataflow binding's
    /// checkpointed function state). Reports label runs with this.
    fn backend(&self) -> Option<BackendKind> {
        None
    }

    // ---- data ingestion -------------------------------------------------
    fn ingest_seller(&self, seller: Seller) -> OmResult<()>;
    fn ingest_customer(&self, customer: Customer) -> OmResult<()>;
    fn ingest_product(&self, product: Product, initial_stock: u32) -> OmResult<()>;

    // ---- the five business transactions --------------------------------
    /// Customer Checkout: cart assembly happens platform-side from the
    /// request items (the driver performs the preceding add-to-cart calls
    /// through [`MarketplacePlatform::add_to_cart`]).
    fn checkout(&self, request: CheckoutRequest) -> OmResult<CheckoutOutcome>;

    /// Adds one item to a customer's cart (priced from the platform's
    /// replica view).
    fn add_to_cart(&self, customer: CustomerId, item: CheckoutItem) -> OmResult<()>;

    /// Price Update: seller updates a product's price; the platform
    /// replicates it to the cart side.
    fn price_update(&self, seller: SellerId, product: ProductId, price: Money) -> OmResult<()>;

    /// Product Delete: seller removes a product; Stock and Cart converge.
    fn product_delete(&self, seller: SellerId, product: ProductId) -> OmResult<()>;

    /// Update Delivery: delivers the oldest order's packages of the first
    /// `max_sellers` sellers with undelivered packages (paper uses 10).
    /// Returns the number of packages delivered.
    fn update_delivery(&self, max_sellers: usize) -> OmResult<u32>;

    /// Seller Dashboard: the continuous aggregate plus the tuples behind
    /// it. Whether the two halves reflect one snapshot is exactly the
    /// benchmark's consistent-querying criterion.
    fn seller_dashboard(&self, seller: SellerId) -> OmResult<SellerDashboard>;

    // ---- lifecycle ------------------------------------------------------
    /// Blocks until asynchronous work has drained (best effort).
    fn quiesce(&self);

    /// Exports the platform state for auditing. Call after `quiesce`.
    fn snapshot(&self) -> OmResult<MarketSnapshot>;

    /// Platform-observed anomaly/diagnostic counters (staleness, drops,
    /// replays, tx aborts, ...). Keys are platform-specific.
    fn counters(&self) -> std::collections::BTreeMap<String, u64>;

    /// Crashes the platform mid-epoch and restores it from its last
    /// durable checkpoint, measuring the restore (the benchmark's
    /// recovery cell). Returns `None` on platforms without an injectable
    /// crash-recovery path — the default.
    ///
    /// The drill must be *safe*: after it returns, platform state equals
    /// what it was before (no committed work lost, no drill side
    /// effects).
    fn crash_and_recover(&self) -> Option<RecoveryOutcome> {
        None
    }

    /// Whether the platform's durable store is **wedged** — a storage
    /// fault left it rejecting every commit with
    /// [`OmError::Wedged`](om_common::OmError::Wedged) until repaired.
    /// Always `false` on memory-only platforms.
    fn is_wedged(&self) -> bool {
        false
    }

    /// Repairs a wedged durable store in place: close, truncate the torn
    /// (never-acknowledged) tail, re-open, verify. Returns `None` on
    /// platforms without a wedge concept — the default — and
    /// `Some(Err(_))` when the repair failed and the store stays wedged.
    ///
    /// The repair must be safe under live traffic: concurrent commits
    /// observe either the wedged error or the healthy store, never a
    /// half-repaired file.
    fn unwedge(&self) -> Option<OmResult<UnwedgeOutcome>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_labels_are_unique() {
        let labels: std::collections::HashSet<_> = [
            PlatformKind::Eventual,
            PlatformKind::Transactional,
            PlatformKind::Dataflow,
            PlatformKind::Customized,
        ]
        .iter()
        .map(|k| k.label())
        .collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn checkout_outcome_serde() {
        let o = CheckoutOutcome::Placed {
            order: Some(OrderId(1)),
            total: Some(Money::from_cents(100)),
        };
        let s = serde_json::to_string(&o).unwrap();
        let back: CheckoutOutcome = serde_json::from_str(&s).unwrap();
        assert_eq!(back, o);
    }
}
