//! Stock microservice state: inventory reservation with the benchmark's
//! integrity constraint ("stock items must always refer to existing
//! products", paper §II).

use om_common::entity::StockItem;
use om_common::ids::StockKey;
use om_common::{OmError, OmResult};
use serde::{Deserialize, Serialize};

/// One product's stock state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StockService {
    pub item: StockItem,
    /// Quantity confirmed (left the warehouse) over the run; together with
    /// `qty_available`/`qty_reserved` this lets the auditor check
    /// conservation.
    pub qty_sold: u64,
    /// Reservations rejected (insufficient stock / inactive product).
    pub rejected_count: u64,
}

impl StockService {
    pub fn new(key: StockKey, qty: u32) -> Self {
        Self {
            item: StockItem::new(key, qty),
            qty_sold: 0,
            rejected_count: 0,
        }
    }

    /// Attempts to reserve `qty` units for a checkout.
    pub fn reserve(&mut self, qty: u32) -> OmResult<()> {
        if self.item.try_reserve(qty) {
            Ok(())
        } else {
            self.rejected_count += 1;
            Err(OmError::Rejected(format!(
                "insufficient stock for {} (available {}, requested {qty}, active {})",
                self.item.key, self.item.qty_available, self.item.active
            )))
        }
    }

    /// Confirms a reservation (order placed). Duplicate confirmations
    /// (possible under at-least-once event delivery) are absorbed so the
    /// unit-conservation invariant holds regardless of delivery faults.
    pub fn confirm(&mut self, qty: u32) {
        let applied = self.item.confirm(qty);
        self.qty_sold += applied as u64;
    }

    /// Cancels a reservation (checkout aborted / payment failed).
    pub fn cancel(&mut self, qty: u32) {
        self.item.cancel_reservation(qty);
    }

    /// Applies a replicated product deletion: deactivates the stock item,
    /// enforcing the integrity constraint.
    pub fn apply_product_delete(&mut self, version: u64) {
        if version > self.item.version {
            self.item.active = false;
            self.item.version = version;
        }
    }

    /// Total units this service has ever accounted for.
    pub fn accounted_units(&self) -> u64 {
        self.item.qty_available as u64 + self.item.qty_reserved as u64 + self.qty_sold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_common::ids::{ProductId, SellerId};

    fn svc(qty: u32) -> StockService {
        StockService::new(StockKey::new(SellerId(1), ProductId(1)), qty)
    }

    #[test]
    fn reserve_confirm_conserves_units() {
        let mut s = svc(10);
        s.reserve(4).unwrap();
        s.confirm(4);
        assert_eq!(s.qty_sold, 4);
        assert_eq!(s.accounted_units(), 10);
        s.reserve(6).unwrap();
        s.cancel(6);
        assert_eq!(s.accounted_units(), 10);
    }

    #[test]
    fn overdraw_is_rejected_and_counted() {
        let mut s = svc(3);
        assert_eq!(s.reserve(5).unwrap_err().label(), "rejected");
        assert_eq!(s.rejected_count, 1);
        assert_eq!(s.accounted_units(), 3);
    }

    #[test]
    fn deletion_deactivates_with_version_fencing() {
        let mut s = svc(5);
        s.apply_product_delete(0); // stale
        assert!(s.item.active);
        s.apply_product_delete(2);
        assert!(!s.item.active);
        assert_eq!(s.reserve(1).unwrap_err().label(), "rejected");
    }
}
