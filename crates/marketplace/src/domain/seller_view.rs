//! Seller microservice state: running statistics plus the **continuous
//! query** behind the seller dashboard (paper §II: "the first is a
//! continuous query that computes the financial amount of orders in
//! progress by the seller, and the second returns the tuples used to
//! compute the first").
//!
//! The aggregate is maintained *incrementally* from order-entry events —
//! the entries list is maintained independently. On platforms without
//! consistent cross-state querying, a dashboard that reads both can
//! observe them out of sync; the auditor counts those torn reads.

use om_common::entity::{OrderEntry, OrderStatus, Seller, SellerDashboard};
use om_common::ids::{OrderId, SellerId};
use om_common::Money;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-seller state: profile stats + the dashboard's continuous aggregate
/// and entry set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SellerView {
    pub seller: Seller,
    /// Continuous aggregate: financial amount of in-progress orders.
    pub in_progress_amount: Money,
    pub in_progress_count: u64,
    /// The tuples behind the aggregate, keyed by (order, product).
    ///
    /// Serialized as a sequence of `(key, entry)` pairs: JSON maps demand
    /// string keys, and platform bindings persist this state as JSON.
    #[serde(with = "entries_as_pairs")]
    pub entries: BTreeMap<(OrderId, u64), OrderEntry>,
}

/// Serde adapter representing the tuple-keyed entry map as a pair list.
mod entries_as_pairs {
    use super::*;
    use serde::{Deserializer, Serializer};

    pub fn serialize<S: Serializer>(
        map: &BTreeMap<(OrderId, u64), OrderEntry>,
        serializer: S,
    ) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(map.iter())
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        deserializer: D,
    ) -> Result<BTreeMap<(OrderId, u64), OrderEntry>, D::Error> {
        let pairs = Vec::<((OrderId, u64), OrderEntry)>::deserialize(deserializer)?;
        Ok(pairs.into_iter().collect())
    }
}

impl SellerView {
    pub fn new(seller: Seller) -> Self {
        Self {
            seller,
            in_progress_amount: Money::ZERO,
            in_progress_count: 0,
            entries: BTreeMap::new(),
        }
    }

    /// Records a new in-progress order entry (checkout placed).
    pub fn add_entry(&mut self, entry: OrderEntry) {
        self.in_progress_amount += entry.total_amount;
        self.in_progress_count += 1;
        self.seller.order_entry_count += 1;
        self.entries.insert((entry.order, entry.product.0), entry);
    }

    /// Applies an order status change; terminal statuses retire entries
    /// from the aggregate. Delivered orders also update revenue.
    pub fn apply_status(&mut self, order: OrderId, status: OrderStatus) {
        let keys: Vec<(OrderId, u64)> = self
            .entries
            .range((order, 0)..=(order, u64::MAX))
            .map(|(k, _)| *k)
            .collect();
        for key in keys {
            if status.in_progress() {
                if let Some(e) = self.entries.get_mut(&key) {
                    e.status = status;
                }
            } else {
                if let Some(e) = self.entries.remove(&key) {
                    self.in_progress_amount -= e.total_amount;
                    self.in_progress_count = self.in_progress_count.saturating_sub(1);
                    if status == OrderStatus::Delivered {
                        self.seller.revenue += e.total_amount;
                        self.seller.delivered_package_count += 1;
                    }
                }
            }
        }
    }

    /// The dashboard assembled **from this view alone** (both queries over
    /// one state — consistent by construction; bindings that answer the
    /// two queries from different components may still produce torn
    /// dashboards).
    pub fn dashboard(&self) -> SellerDashboard {
        SellerDashboard {
            seller: self.seller.id,
            in_progress_amount: self.in_progress_amount,
            in_progress_count: self.in_progress_count,
            entries: self.entries.values().cloned().collect(),
        }
    }

    /// The aggregate half only (continuous query).
    pub fn aggregate(&self) -> (Money, u64) {
        (self.in_progress_amount, self.in_progress_count)
    }

    /// The entries half only (detail query).
    pub fn entry_list(&self) -> Vec<OrderEntry> {
        self.entries.values().cloned().collect()
    }
}

/// Convenience constructor for tests and data generation.
pub fn seller_named(id: SellerId, name: &str) -> Seller {
    Seller::new(id, name.to_string(), format!("city-{}", id.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_common::ids::ProductId;

    fn entry(order: u64, product: u64, cents: i64) -> OrderEntry {
        OrderEntry {
            order: OrderId(order),
            seller: SellerId(1),
            product: ProductId(product),
            quantity: 1,
            total_amount: Money::from_cents(cents),
            status: OrderStatus::Invoiced,
        }
    }

    #[test]
    fn serde_roundtrips_with_populated_entries() {
        // Regression: tuple map keys are not valid JSON map keys; the
        // entries map must survive a JSON round-trip (the dataflow
        // binding persists this state as JSON).
        let mut v = SellerView::new(seller_named(SellerId(1), "s"));
        v.add_entry(entry(1, 1, 100));
        v.add_entry(entry(2, 7, 50));
        let json = serde_json::to_string(&v).expect("serializes with non-empty entries");
        let back: SellerView = serde_json::from_str(&json).unwrap();
        assert_eq!(back.entries.len(), 2);
        assert_eq!(back.in_progress_amount, v.in_progress_amount);
        assert_eq!(
            back.entries.keys().copied().collect::<Vec<_>>(),
            vec![(OrderId(1), 1), (OrderId(2), 7)]
        );
    }

    #[test]
    fn aggregate_tracks_entries() {
        let mut v = SellerView::new(seller_named(SellerId(1), "s"));
        v.add_entry(entry(1, 1, 100));
        v.add_entry(entry(1, 2, 50));
        v.add_entry(entry(2, 1, 25));
        assert_eq!(v.aggregate(), (Money::from_cents(175), 3));
        let d = v.dashboard();
        assert!(d.is_snapshot_consistent());
        assert_eq!(d.entries.len(), 3);
    }

    #[test]
    fn status_progression_updates_entries_in_place() {
        let mut v = SellerView::new(seller_named(SellerId(1), "s"));
        v.add_entry(entry(1, 1, 100));
        v.apply_status(OrderId(1), OrderStatus::Paid);
        assert_eq!(v.entries.len(), 1);
        assert_eq!(
            v.entries.values().next().unwrap().status,
            OrderStatus::Paid
        );
        assert_eq!(v.aggregate().0, Money::from_cents(100));
    }

    #[test]
    fn terminal_status_retires_entries_and_books_revenue() {
        let mut v = SellerView::new(seller_named(SellerId(1), "s"));
        v.add_entry(entry(1, 1, 100));
        v.add_entry(entry(2, 1, 60));
        v.apply_status(OrderId(1), OrderStatus::Delivered);
        assert_eq!(v.aggregate(), (Money::from_cents(60), 1));
        assert_eq!(v.seller.revenue, Money::from_cents(100));
        v.apply_status(OrderId(2), OrderStatus::Canceled);
        assert_eq!(v.aggregate(), (Money::ZERO, 0));
        assert_eq!(v.seller.revenue, Money::from_cents(100), "canceled != revenue");
    }

    #[test]
    fn unknown_order_status_is_noop() {
        let mut v = SellerView::new(seller_named(SellerId(1), "s"));
        v.add_entry(entry(1, 1, 100));
        v.apply_status(OrderId(99), OrderStatus::Delivered);
        assert_eq!(v.aggregate(), (Money::from_cents(100), 1));
    }
}
