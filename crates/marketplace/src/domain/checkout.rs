//! Checkout price reconciliation (paper §II: Cart "applies updated prices
//! (received from Product) to items").

use om_common::entity::CartItem;
use om_common::ids::ProductId;
use om_common::Money;

/// Where a reconciled price came from — lets the auditor distinguish
/// fresh reads from stale-replica reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriceSource {
    /// Replica had a version >= the one in the cart.
    Fresh,
    /// Replica was behind the cart's observed version (causal staleness).
    Stale,
    /// Product missing from the replica (e.g. deleted).
    Missing,
}

/// Reconciles cart items against replicated product prices.
///
/// For each item, looks up `(price, version, active)` in the replica via
/// `lookup`. Items whose product is inactive/missing are dropped
/// (deleted-product accounting). Returns the reconciled items and, per
/// item, the [`PriceSource`] observed — `Stale` entries are
/// read-your-writes violations when the cart had already seen a newer
/// version.
pub fn reconcile_prices<F>(
    items: Vec<CartItem>,
    mut lookup: F,
) -> (Vec<CartItem>, Vec<(ProductId, PriceSource)>)
where
    F: FnMut(ProductId) -> Option<(Money, u64, bool)>,
{
    let mut reconciled = Vec::with_capacity(items.len());
    let mut sources = Vec::with_capacity(items.len());
    for mut item in items {
        match lookup(item.product) {
            Some((price, version, active)) if active => {
                let source = if version >= item.product_version {
                    PriceSource::Fresh
                } else {
                    PriceSource::Stale
                };
                if version > item.product_version {
                    item.unit_price = price;
                    item.product_version = version;
                }
                sources.push((item.product, source));
                reconciled.push(item);
            }
            _ => {
                sources.push((item.product, PriceSource::Missing));
                // Deleted or unknown product: line dropped from checkout.
            }
        }
    }
    (reconciled, sources)
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_common::ids::SellerId;

    fn item(product: u64, version: u64, cents: i64) -> CartItem {
        CartItem {
            seller: SellerId(1),
            product: ProductId(product),
            quantity: 2,
            unit_price: Money::from_cents(cents),
            freight_value: Money::ZERO,
            product_version: version,
        }
    }

    #[test]
    fn fresh_replica_updates_price() {
        let (out, src) = reconcile_prices(vec![item(1, 1, 100)], |_| {
            Some((Money::from_cents(150), 3, true))
        });
        assert_eq!(out[0].unit_price, Money::from_cents(150));
        assert_eq!(out[0].product_version, 3);
        assert_eq!(src[0].1, PriceSource::Fresh);
    }

    #[test]
    fn equal_version_is_fresh_and_unchanged() {
        let (out, src) = reconcile_prices(vec![item(1, 3, 100)], |_| {
            Some((Money::from_cents(150), 3, true))
        });
        assert_eq!(out[0].unit_price, Money::from_cents(100));
        assert_eq!(src[0].1, PriceSource::Fresh);
    }

    #[test]
    fn stale_replica_is_flagged_and_cart_price_kept() {
        let (out, src) = reconcile_prices(vec![item(1, 5, 100)], |_| {
            Some((Money::from_cents(90), 2, true))
        });
        assert_eq!(out[0].unit_price, Money::from_cents(100), "never go backwards");
        assert_eq!(src[0].1, PriceSource::Stale);
    }

    #[test]
    fn missing_or_deleted_products_are_dropped() {
        let (out, src) = reconcile_prices(vec![item(1, 0, 100), item(2, 0, 100)], |p| {
            if p == ProductId(1) {
                None
            } else {
                Some((Money::from_cents(100), 1, false))
            }
        });
        assert!(out.is_empty());
        assert!(src.iter().all(|(_, s)| *s == PriceSource::Missing));
    }
}
