//! Order microservice state: invoice numbering, order assembly and the
//! order status machine (paper §II: "Order contains key logic about the
//! ordering process, including assigning invoice numbers, assembling the
//! items with stock confirmed, and calculating order totals").

use om_common::entity::{CartItem, Order, OrderEntry, OrderItem, OrderStatus};
use om_common::ids::{CustomerId, OrderId, TransactionId};
use om_common::time::EventTime;
use om_common::{Money, OmError, OmResult};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-customer order service state. Orders are partitioned by customer;
/// ids are globally unique via `customer * ORDERS_PER_CUSTOMER + seq`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OrderService {
    pub customer: CustomerId,
    pub orders: BTreeMap<OrderId, Order>,
    next_seq: u64,
    /// Checkout assemblies in progress: stock confirmations collected per
    /// transaction until `expected` lines answered (event-driven bindings).
    pending: BTreeMap<TransactionId, PendingCheckout>,
}

/// Space reserved per customer in the order-id namespace.
pub const ORDERS_PER_CUSTOMER: u64 = 1_000_000;

/// A checkout whose stock confirmations are still arriving.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PendingCheckout {
    pub expected: usize,
    pub confirmed: Vec<CartItem>,
    pub rejected: Vec<CartItem>,
    pub requested_at: EventTime,
}

impl OrderService {
    pub fn new(customer: CustomerId) -> Self {
        Self {
            customer,
            orders: BTreeMap::new(),
            next_seq: 0,
            pending: BTreeMap::new(),
        }
    }

    /// Registers an in-flight checkout expecting `expected` stock answers.
    pub fn begin_assembly(&mut self, tid: TransactionId, expected: usize, at: EventTime) {
        self.pending.insert(
            tid,
            PendingCheckout {
                expected,
                confirmed: Vec::new(),
                rejected: Vec::new(),
                requested_at: at,
            },
        );
    }

    /// Records one stock answer; returns the assembly when complete.
    pub fn record_stock_answer(
        &mut self,
        tid: TransactionId,
        item: CartItem,
        reserved: bool,
    ) -> Option<PendingCheckout> {
        let entry = self.pending.get_mut(&tid)?;
        if reserved {
            entry.confirmed.push(item);
        } else {
            entry.rejected.push(item);
        }
        if entry.confirmed.len() + entry.rejected.len() >= entry.expected {
            self.pending.remove(&tid)
        } else {
            None
        }
    }

    /// Number of assemblies still waiting for answers (anomaly signal for
    /// the auditor: stuck assemblies mean lost events).
    pub fn stuck_assemblies(&self) -> usize {
        self.pending.len()
    }

    /// Creates an order from confirmed items: assigns the id and invoice
    /// number, computes totals. Rejects empty confirmations.
    pub fn create_order(
        &mut self,
        items: &[CartItem],
        at: EventTime,
    ) -> OmResult<Order> {
        if items.is_empty() {
            return Err(OmError::Rejected("no stock-confirmed items".into()));
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = OrderId(self.customer.0 * ORDERS_PER_CUSTOMER + seq);
        let order_items: Vec<OrderItem> = items
            .iter()
            .map(|i| OrderItem {
                order: id,
                seller: i.seller,
                product: i.product,
                quantity: i.quantity,
                unit_price: i.unit_price,
                freight_value: i.freight_value,
                total_amount: i.unit_price * i.quantity,
            })
            .collect();
        let total_amount: Money = order_items.iter().map(|i| i.total_amount).sum();
        let total_freight: Money = order_items
            .iter()
            .map(|i| i.freight_value * i.quantity)
            .sum();
        let order = Order {
            id,
            customer: self.customer,
            status: OrderStatus::Invoiced,
            invoice: format!("INV-{}-{}", self.customer.0, seq),
            items: order_items,
            total_amount,
            total_freight,
            placed_at: at,
            updated_at: at,
        };
        self.orders.insert(id, order.clone());
        Ok(order)
    }

    /// Applies a status transition; terminal states are sticky.
    pub fn set_status(&mut self, id: OrderId, status: OrderStatus, at: EventTime) -> OmResult<()> {
        let order = self
            .orders
            .get_mut(&id)
            .ok_or_else(|| OmError::NotFound(format!("{id}")))?;
        if order.status.is_terminal() {
            return Err(OmError::Conflict(format!(
                "{id} already terminal ({:?})",
                order.status
            )));
        }
        order.status = status;
        order.updated_at = at;
        Ok(())
    }

    /// In-progress order entries for `seller` (the dashboard detail query).
    pub fn entries_for_seller(&self, seller: om_common::ids::SellerId) -> Vec<OrderEntry> {
        let mut out = Vec::new();
        for order in self.orders.values() {
            if !order.status.in_progress() {
                continue;
            }
            for item in &order.items {
                if item.seller == seller {
                    out.push(OrderEntry {
                        order: order.id,
                        seller,
                        product: item.product,
                        quantity: item.quantity,
                        total_amount: item.total_amount,
                        status: order.status,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_common::ids::{ProductId, SellerId};

    fn item(product: u64, qty: u32, cents: i64) -> CartItem {
        CartItem {
            seller: SellerId(3),
            product: ProductId(product),
            quantity: qty,
            unit_price: Money::from_cents(cents),
            freight_value: Money::from_cents(10),
            product_version: 0,
        }
    }

    #[test]
    fn order_ids_are_globally_unique_across_customers() {
        let mut a = OrderService::new(CustomerId(1));
        let mut b = OrderService::new(CustomerId(2));
        let o1 = a.create_order(&[item(1, 1, 100)], EventTime(1)).unwrap();
        let o2 = b.create_order(&[item(1, 1, 100)], EventTime(1)).unwrap();
        let o3 = a.create_order(&[item(1, 1, 100)], EventTime(2)).unwrap();
        assert_ne!(o1.id, o2.id);
        assert_ne!(o1.id, o3.id);
        assert_eq!(o1.invoice, "INV-1-0");
        assert_eq!(o3.invoice, "INV-1-1");
    }

    #[test]
    fn totals_include_quantity_and_freight() {
        let mut svc = OrderService::new(CustomerId(1));
        let order = svc
            .create_order(&[item(1, 2, 100), item(2, 1, 50)], EventTime(1))
            .unwrap();
        assert_eq!(order.total_amount, Money::from_cents(250));
        assert_eq!(order.total_freight, Money::from_cents(30));
        assert_eq!(order.total_invoice(), Money::from_cents(280));
        assert_eq!(order.status, OrderStatus::Invoiced);
    }

    #[test]
    fn empty_confirmation_is_rejected() {
        let mut svc = OrderService::new(CustomerId(1));
        assert_eq!(
            svc.create_order(&[], EventTime(1)).unwrap_err().label(),
            "rejected"
        );
    }

    #[test]
    fn assembly_collects_answers_until_complete() {
        let mut svc = OrderService::new(CustomerId(1));
        let tid = TransactionId(9);
        svc.begin_assembly(tid, 3, EventTime(1));
        assert!(svc.record_stock_answer(tid, item(1, 1, 100), true).is_none());
        assert!(svc.record_stock_answer(tid, item(2, 1, 100), false).is_none());
        assert_eq!(svc.stuck_assemblies(), 1);
        let done = svc.record_stock_answer(tid, item(3, 1, 100), true).unwrap();
        assert_eq!(done.confirmed.len(), 2);
        assert_eq!(done.rejected.len(), 1);
        assert_eq!(svc.stuck_assemblies(), 0);
    }

    #[test]
    fn answers_for_unknown_tid_are_ignored() {
        let mut svc = OrderService::new(CustomerId(1));
        assert!(svc
            .record_stock_answer(TransactionId(1), item(1, 1, 100), true)
            .is_none());
    }

    #[test]
    fn status_transitions_and_terminal_stickiness() {
        let mut svc = OrderService::new(CustomerId(1));
        let order = svc.create_order(&[item(1, 1, 100)], EventTime(1)).unwrap();
        svc.set_status(order.id, OrderStatus::Paid, EventTime(2)).unwrap();
        svc.set_status(order.id, OrderStatus::InTransit, EventTime(3)).unwrap();
        svc.set_status(order.id, OrderStatus::Delivered, EventTime(4)).unwrap();
        let err = svc
            .set_status(order.id, OrderStatus::Paid, EventTime(5))
            .unwrap_err();
        assert_eq!(err.label(), "conflict");
        assert_eq!(
            svc.set_status(OrderId(999), OrderStatus::Paid, EventTime(5))
                .unwrap_err()
                .label(),
            "not_found"
        );
    }

    #[test]
    fn seller_entries_cover_only_in_progress_orders() {
        let mut svc = OrderService::new(CustomerId(1));
        let o1 = svc.create_order(&[item(1, 2, 100)], EventTime(1)).unwrap();
        let o2 = svc.create_order(&[item(2, 1, 50)], EventTime(2)).unwrap();
        svc.set_status(o2.id, OrderStatus::Delivered, EventTime(3)).unwrap();
        let entries = svc.entries_for_seller(SellerId(3));
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].order, o1.id);
        assert_eq!(entries[0].total_amount, Money::from_cents(200));
        assert!(svc.entries_for_seller(SellerId(99)).is_empty());
    }
}
