//! Payment microservice state (paper §II: "Payment is responsible for
//! processing different payment methods and possible discounts, and
//! confirming the order").

use om_common::entity::{Payment, PaymentMethod};
use om_common::ids::{CustomerId, OrderId, PaymentId};
use om_common::time::EventTime;
use om_common::Money;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Deterministic payment approval: hashes the order id so every binding
/// reaches the same verdict for the same order, independent of timing.
/// `decline_rate` is the fraction of payments declined (0.0..1.0).
pub fn payment_decision(order: OrderId, decline_rate: f64) -> bool {
    let mut z = order.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % 10_000) as f64 >= decline_rate * 10_000.0
}

/// Per-customer payment service state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PaymentService {
    pub customer: CustomerId,
    pub payments: BTreeMap<PaymentId, Payment>,
    next_seq: u64,
    pub approved_count: u64,
    pub declined_count: u64,
}

/// Space reserved per customer in the payment-id namespace.
pub const PAYMENTS_PER_CUSTOMER: u64 = 1_000_000;

impl PaymentService {
    pub fn new(customer: CustomerId) -> Self {
        Self {
            customer,
            payments: BTreeMap::new(),
            next_seq: 0,
            approved_count: 0,
            declined_count: 0,
        }
    }

    /// Processes a payment for `order`, applying the voucher discount and
    /// the deterministic approval decision.
    pub fn process(
        &mut self,
        order: OrderId,
        method: PaymentMethod,
        amount: Money,
        decline_rate: f64,
        at: EventTime,
    ) -> Payment {
        // Vouchers get a flat 5% discount (the "possible discounts" of the
        // paper's payment description).
        let charged = if method == PaymentMethod::Voucher {
            amount.discounted(5)
        } else {
            amount
        };
        let approved = payment_decision(order, decline_rate);
        let id = PaymentId(self.customer.0 * PAYMENTS_PER_CUSTOMER + self.next_seq);
        self.next_seq += 1;
        let payment = Payment {
            id,
            order,
            customer: self.customer,
            method,
            amount: charged,
            installments: if method == PaymentMethod::CreditCard { 3 } else { 1 },
            approved,
            processed_at: at,
        };
        if approved {
            self.approved_count += 1;
        } else {
            self.declined_count += 1;
        }
        self.payments.insert(id, payment.clone());
        payment
    }

    /// Payment recorded for `order`, if any (idempotence check).
    pub fn payment_for(&self, order: OrderId) -> Option<&Payment> {
        self.payments.values().find(|p| p.order == order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_is_deterministic_and_rate_scaled() {
        for order in 0..100u64 {
            assert_eq!(
                payment_decision(OrderId(order), 0.1),
                payment_decision(OrderId(order), 0.1)
            );
        }
        let declined_at_10 = (0..10_000u64)
            .filter(|&o| !payment_decision(OrderId(o), 0.1))
            .count();
        assert!(
            (800..1200).contains(&declined_at_10),
            "expected ~10% declines, got {declined_at_10}/10000"
        );
        assert!((0..10_000u64).all(|o| payment_decision(OrderId(o), 0.0)));
        assert!((0..10_000u64).all(|o| !payment_decision(OrderId(o), 1.0)));
    }

    #[test]
    fn processing_records_and_counts() {
        let mut svc = PaymentService::new(CustomerId(2));
        let p = svc.process(
            OrderId(7),
            PaymentMethod::CreditCard,
            Money::from_cents(1000),
            0.0,
            EventTime(1),
        );
        assert!(p.approved);
        assert_eq!(p.amount, Money::from_cents(1000));
        assert_eq!(p.installments, 3);
        assert_eq!(svc.approved_count, 1);
        assert_eq!(svc.payment_for(OrderId(7)).unwrap().id, p.id);
        assert!(svc.payment_for(OrderId(8)).is_none());
    }

    #[test]
    fn voucher_discount_applies() {
        let mut svc = PaymentService::new(CustomerId(2));
        let p = svc.process(
            OrderId(7),
            PaymentMethod::Voucher,
            Money::from_cents(1000),
            0.0,
            EventTime(1),
        );
        assert_eq!(p.amount, Money::from_cents(950));
        assert_eq!(p.installments, 1);
    }

    #[test]
    fn declines_are_counted() {
        let mut svc = PaymentService::new(CustomerId(2));
        let p = svc.process(
            OrderId(7),
            PaymentMethod::DebitCard,
            Money::from_cents(100),
            1.0,
            EventTime(1),
        );
        assert!(!p.approved);
        assert_eq!(svc.declined_count, 1);
    }

    #[test]
    fn payment_ids_unique_per_customer_namespace() {
        let mut a = PaymentService::new(CustomerId(1));
        let mut b = PaymentService::new(CustomerId(2));
        let p1 = a.process(OrderId(1), PaymentMethod::Boleto, Money::ZERO, 0.0, EventTime(1));
        let p2 = b.process(OrderId(2), PaymentMethod::Boleto, Money::ZERO, 0.0, EventTime(1));
        assert_ne!(p1.id, p2.id);
    }
}
