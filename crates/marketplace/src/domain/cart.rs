//! Cart microservice state: per-customer cart management and checkout
//! assembly (paper §II: "Cart is responsible for managing individual cart
//! instances for each customer").

use om_common::entity::{Cart, CartItem, CartStatus};
use om_common::ids::{CustomerId, ProductId};
use om_common::{OmError, OmResult};
use serde::{Deserialize, Serialize};

/// One customer's cart service state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CartService {
    pub cart: Cart,
    /// Checkouts processed (diagnostics).
    pub checkout_count: u64,
}

impl CartService {
    pub fn new(customer: CustomerId) -> Self {
        Self {
            cart: Cart::new(customer),
            checkout_count: 0,
        }
    }

    /// Adds an item to the open cart.
    pub fn add_item(&mut self, item: CartItem) -> OmResult<()> {
        if self.cart.status != CartStatus::Open {
            return Err(OmError::Conflict(format!(
                "cart of {} is checking out",
                self.cart.customer
            )));
        }
        self.cart.add_item(item);
        Ok(())
    }

    /// Removes a product's line.
    pub fn remove_item(&mut self, product: ProductId) -> Option<CartItem> {
        self.cart.remove_item(product)
    }

    /// Applies a replicated price update to matching open-cart lines
    /// (the Product→Cart replication target, paper §II *Price Update*).
    /// Stale versions are ignored. Returns whether a line changed.
    pub fn apply_price_update(
        &mut self,
        product: ProductId,
        price: om_common::Money,
        version: u64,
    ) -> bool {
        let mut changed = false;
        for item in &mut self.cart.items {
            if item.product == product && item.product_version < version {
                item.unit_price = price;
                item.product_version = version;
                changed = true;
            }
        }
        changed
    }

    /// Removes deleted-product lines (paper §II *Product Delete*).
    pub fn apply_product_delete(&mut self, product: ProductId) -> bool {
        let before = self.cart.items.len();
        self.cart.items.retain(|i| i.product != product);
        before != self.cart.items.len()
    }

    /// Begins checkout: seals the cart and takes its items.
    pub fn begin_checkout(&mut self) -> OmResult<Vec<CartItem>> {
        if self.cart.status != CartStatus::Open {
            return Err(OmError::Conflict("checkout already in flight".into()));
        }
        if self.cart.is_empty() {
            return Err(OmError::Rejected("cart is empty".into()));
        }
        self.cart.status = CartStatus::CheckoutInFlight;
        Ok(self.cart.items.clone())
    }

    /// Finishes checkout (either outcome): empties and reopens the cart.
    pub fn finish_checkout(&mut self) {
        self.cart.items.clear();
        self.cart.status = CartStatus::Open;
        self.checkout_count += 1;
    }

    /// Aborts checkout, restoring the cart to open with items intact so
    /// the customer can retry.
    pub fn abort_checkout(&mut self) {
        self.cart.status = CartStatus::Open;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_common::ids::SellerId;
    use om_common::Money;

    fn item(product: u64, version: u64) -> CartItem {
        CartItem {
            seller: SellerId(1),
            product: ProductId(product),
            quantity: 1,
            unit_price: Money::from_cents(100),
            freight_value: Money::ZERO,
            product_version: version,
        }
    }

    #[test]
    fn add_and_checkout_lifecycle() {
        let mut svc = CartService::new(CustomerId(1));
        svc.add_item(item(1, 0)).unwrap();
        svc.add_item(item(2, 0)).unwrap();
        let items = svc.begin_checkout().unwrap();
        assert_eq!(items.len(), 2);
        // Cart is sealed now.
        assert!(svc.add_item(item(3, 0)).is_err());
        assert!(svc.begin_checkout().is_err());
        svc.finish_checkout();
        assert!(svc.cart.is_empty());
        assert_eq!(svc.checkout_count, 1);
        svc.add_item(item(3, 0)).unwrap();
    }

    #[test]
    fn empty_cart_cannot_check_out() {
        let mut svc = CartService::new(CustomerId(1));
        assert_eq!(svc.begin_checkout().unwrap_err().label(), "rejected");
    }

    #[test]
    fn abort_restores_items() {
        let mut svc = CartService::new(CustomerId(1));
        svc.add_item(item(1, 0)).unwrap();
        svc.begin_checkout().unwrap();
        svc.abort_checkout();
        assert_eq!(svc.cart.items.len(), 1);
        assert!(svc.begin_checkout().is_ok());
    }

    #[test]
    fn price_updates_respect_versions() {
        let mut svc = CartService::new(CustomerId(1));
        svc.add_item(item(1, 5)).unwrap();
        assert!(!svc.apply_price_update(ProductId(1), Money::from_cents(200), 5));
        assert!(!svc.apply_price_update(ProductId(1), Money::from_cents(200), 3));
        assert_eq!(svc.cart.items[0].unit_price, Money::from_cents(100));
        assert!(svc.apply_price_update(ProductId(1), Money::from_cents(200), 6));
        assert_eq!(svc.cart.items[0].unit_price, Money::from_cents(200));
        assert_eq!(svc.cart.items[0].product_version, 6);
    }

    #[test]
    fn product_delete_removes_lines() {
        let mut svc = CartService::new(CustomerId(1));
        svc.add_item(item(1, 0)).unwrap();
        svc.add_item(item(2, 0)).unwrap();
        assert!(svc.apply_product_delete(ProductId(1)));
        assert!(!svc.apply_product_delete(ProductId(1)));
        assert_eq!(svc.cart.items.len(), 1);
    }
}
