//! Shipment microservice state (paper §II: "Upon successful payment, the
//! Shipment creates shipment requests and puts items into packages" and
//! the *Update Delivery* transaction: "picks the first 10 sellers with
//! undelivered packages in chronological order and sets their respective
//! oldest order's packages as delivered").
//!
//! Shipments are partitioned **by seller**: each seller's service holds
//! the packages destined to ship from that seller.

use om_common::entity::{Package, PackageStatus};
use om_common::event::OrderLineRef;
use om_common::ids::{CustomerId, OrderId, PackageId, SellerId, ShipmentId};
use om_common::time::EventTime;
use serde::{Deserialize, Serialize};

/// Per-seller shipment service state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShipmentService {
    pub seller: SellerId,
    pub packages: Vec<Package>,
    next_package_seq: u64,
    pub delivered_count: u64,
}

/// Space reserved per seller in the package-id namespace.
pub const PACKAGES_PER_SELLER: u64 = 10_000_000;

impl ShipmentService {
    pub fn new(seller: SellerId) -> Self {
        Self {
            seller,
            packages: Vec::new(),
            next_package_seq: 0,
            delivered_count: 0,
        }
    }

    /// Creates this seller's packages for a paid order. Returns the ids.
    pub fn create_packages(
        &mut self,
        shipment: ShipmentId,
        order: OrderId,
        _customer: CustomerId,
        lines: &[OrderLineRef],
        at: EventTime,
    ) -> Vec<PackageId> {
        let mut ids = Vec::new();
        for line in lines.iter().filter(|l| l.seller == self.seller) {
            let id = PackageId(self.seller.0 * PACKAGES_PER_SELLER + self.next_package_seq);
            self.next_package_seq += 1;
            self.packages.push(Package {
                id,
                shipment,
                order,
                seller: self.seller,
                product: line.product,
                quantity: line.quantity,
                freight_value: line.freight_value,
                status: PackageStatus::Shipped,
                shipped_at: at,
                delivered_at: None,
            });
            ids.push(id);
        }
        ids
    }

    /// Timestamp of the oldest undelivered package, if any (used to rank
    /// sellers for Update Delivery).
    pub fn oldest_undelivered(&self) -> Option<EventTime> {
        self.packages
            .iter()
            .filter(|p| p.status == PackageStatus::Shipped)
            .map(|p| p.shipped_at)
            .min()
    }

    /// Delivers all packages of this seller's **oldest undelivered
    /// order** (the per-seller step of Update Delivery). Returns
    /// `(order, delivered package ids)`.
    pub fn deliver_oldest_order(&mut self, at: EventTime) -> Option<(OrderId, Vec<PackageId>)> {
        let oldest_order = self
            .packages
            .iter()
            .filter(|p| p.status == PackageStatus::Shipped)
            .min_by_key(|p| (p.shipped_at, p.order))
            .map(|p| p.order)?;
        let mut delivered = Vec::new();
        for p in &mut self.packages {
            if p.order == oldest_order && p.status == PackageStatus::Shipped {
                p.status = PackageStatus::Delivered;
                p.delivered_at = Some(at);
                delivered.push(p.id);
                self.delivered_count += 1;
            }
        }
        Some((oldest_order, delivered))
    }

    /// True if no package of `order` remains undelivered *at this seller*.
    pub fn order_fully_delivered(&self, order: OrderId) -> bool {
        self.packages
            .iter()
            .filter(|p| p.order == order)
            .all(|p| p.status == PackageStatus::Delivered)
    }

    /// Undelivered package count (diagnostics).
    pub fn undelivered_count(&self) -> usize {
        self.packages
            .iter()
            .filter(|p| p.status == PackageStatus::Shipped)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_common::ids::ProductId;
    use om_common::Money;

    fn line(seller: u64, product: u64) -> OrderLineRef {
        OrderLineRef {
            seller: SellerId(seller),
            product: ProductId(product),
            quantity: 1,
            total_amount: Money::from_cents(100),
            freight_value: Money::from_cents(10),
        }
    }

    #[test]
    fn creates_only_own_seller_packages() {
        let mut svc = ShipmentService::new(SellerId(1));
        let ids = svc.create_packages(
            ShipmentId(1),
            OrderId(1),
            CustomerId(1),
            &[line(1, 10), line(2, 20), line(1, 11)],
            EventTime(5),
        );
        assert_eq!(ids.len(), 2, "foreign-seller lines skipped");
        assert_eq!(svc.undelivered_count(), 2);
        assert_eq!(svc.oldest_undelivered(), Some(EventTime(5)));
    }

    #[test]
    fn delivers_oldest_order_first() {
        let mut svc = ShipmentService::new(SellerId(1));
        svc.create_packages(ShipmentId(1), OrderId(10), CustomerId(1), &[line(1, 1)], EventTime(5));
        svc.create_packages(ShipmentId(2), OrderId(20), CustomerId(2), &[line(1, 2)], EventTime(3));
        let (order, pkgs) = svc.deliver_oldest_order(EventTime(9)).unwrap();
        assert_eq!(order, OrderId(20), "chronologically oldest order wins");
        assert_eq!(pkgs.len(), 1);
        assert!(svc.order_fully_delivered(OrderId(20)));
        assert!(!svc.order_fully_delivered(OrderId(10)));
        let (order2, _) = svc.deliver_oldest_order(EventTime(10)).unwrap();
        assert_eq!(order2, OrderId(10));
        assert!(svc.deliver_oldest_order(EventTime(11)).is_none());
        assert_eq!(svc.delivered_count, 2);
    }

    #[test]
    fn multi_package_order_delivers_together() {
        let mut svc = ShipmentService::new(SellerId(1));
        svc.create_packages(
            ShipmentId(1),
            OrderId(10),
            CustomerId(1),
            &[line(1, 1), line(1, 2)],
            EventTime(5),
        );
        let (_, pkgs) = svc.deliver_oldest_order(EventTime(9)).unwrap();
        assert_eq!(pkgs.len(), 2, "all of the order's packages deliver at once");
        assert_eq!(svc.undelivered_count(), 0);
    }
}
