//! The Product→Cart replica: the cart side's view of product prices
//! (paper §II: "we define different correctness semantics for Product
//! replication to Cart, including eventual and causal replication").

use om_common::Money;
use serde::{Deserialize, Serialize};

/// Replicated view of one product, as stored on the cart side.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProductReplica {
    pub price: Money,
    pub freight_value: Money,
    pub version: u64,
    pub active: bool,
}

impl ProductReplica {
    pub fn new(price: Money, freight_value: Money) -> Self {
        Self {
            price,
            freight_value,
            version: 0,
            active: true,
        }
    }

    /// Applies a replicated update with last-writer-wins version fencing.
    /// Returns whether the update was applied (false = stale, dropped).
    pub fn apply_update(&mut self, price: Money, version: u64) -> bool {
        if version > self.version {
            self.price = price;
            self.version = version;
            true
        } else {
            false
        }
    }

    /// Applies a replicated deletion (version-fenced).
    pub fn apply_delete(&mut self, version: u64) -> bool {
        if version > self.version {
            self.active = false;
            self.version = version;
            true
        } else {
            false
        }
    }

    /// The lookup tuple used by checkout reconciliation.
    pub fn as_lookup(&self) -> (Money, u64, bool) {
        (self.price, self.version, self.active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_fencing() {
        let mut r = ProductReplica::new(Money::from_cents(100), Money::ZERO);
        assert!(r.apply_update(Money::from_cents(120), 2));
        assert!(!r.apply_update(Money::from_cents(90), 1), "stale dropped");
        assert_eq!(r.price, Money::from_cents(120));
        assert!(!r.apply_delete(2));
        assert!(r.active);
        assert!(r.apply_delete(3));
        assert!(!r.active);
        assert_eq!(r.as_lookup(), (Money::from_cents(120), 3, false));
    }
}
