//! Platform-agnostic service state machines.
//!
//! Each module holds the state and transition logic of one microservice.
//! The four platform bindings wrap these structs in grains, stateful
//! functions or transactional participants — the *business rules* are
//! written exactly once, so behavioural differences measured by the
//! benchmark stem from the platforms, not from divergent logic.

pub mod cart;
pub mod checkout;
pub mod order;
pub mod payment;
pub mod replica;
pub mod seller_view;
pub mod shipment;
pub mod stock;

pub use cart::CartService;
pub use checkout::{reconcile_prices, PriceSource};
pub use order::OrderService;
pub use payment::{payment_decision, PaymentService};
pub use replica::ProductReplica;
pub use seller_view::SellerView;
pub use shipment::ShipmentService;
pub use stock::StockService;
