//! Cross-binding integration tests: every platform must pass the same
//! functional scenario, while their *consistency* behaviours are allowed
//! to differ exactly along the axes the paper evaluates.

use om_common::entity::{Customer, PaymentMethod, Product, Seller};
use om_common::ids::{CustomerId, ProductId, SellerId};
use om_common::Money;
use om_marketplace::api::*;
use om_marketplace::bindings::actor_core::ActorPlatformConfig;
use om_marketplace::bindings::customized::CustomizedConfig;
use om_marketplace::bindings::dataflow::DataflowPlatformConfig;
use om_marketplace::{
    CustomizedPlatform, DataflowPlatform, EventualPlatform, TransactionalPlatform,
};

fn product(seller: u64, id: u64, cents: i64) -> Product {
    Product {
        id: ProductId(id),
        seller: SellerId(seller),
        name: format!("product-{id}"),
        category: "test".into(),
        description: String::new(),
        price: Money::from_cents(cents),
        freight_value: Money::from_cents(10),
        version: 0,
        active: true,
    }
}

fn seller(id: u64) -> Seller {
    Seller::new(SellerId(id), format!("seller-{id}"), "city".into())
}

fn customer(id: u64) -> Customer {
    Customer::new(CustomerId(id), format!("customer-{id}"), "addr".into())
}

/// Ingests a tiny catalogue: 2 sellers × 3 products, 4 customers.
fn ingest(platform: &dyn MarketplacePlatform) {
    for s in 1..=2u64 {
        platform.ingest_seller(seller(s)).unwrap();
    }
    for c in 1..=4u64 {
        platform.ingest_customer(customer(c)).unwrap();
    }
    let mut pid = 0;
    for s in 1..=2u64 {
        for _ in 0..3 {
            pid += 1;
            platform.ingest_product(product(s, pid, 100 * pid as i64), 1000).unwrap();
        }
    }
    platform.quiesce();
}

fn checkout_items(platform: &dyn MarketplacePlatform, customer: u64, items: &[(u64, u64, u32)]) {
    for &(s, p, q) in items {
        platform
            .add_to_cart(
                CustomerId(customer),
                CheckoutItem {
                    seller: SellerId(s),
                    product: ProductId(p),
                    quantity: q,
                },
            )
            .unwrap();
    }
}

/// Full lifecycle on one platform: ingest → checkout → delivery →
/// dashboard → audit snapshot.
fn exercise(platform: &dyn MarketplacePlatform, expect_sync_order: bool) {
    ingest(platform);

    // Customer 1 buys from both sellers.
    checkout_items(platform, 1, &[(1, 1, 2), (2, 4, 1)]);
    let outcome = platform
        .checkout(CheckoutRequest {
            customer: CustomerId(1),
            items: vec![],
            method: PaymentMethod::CreditCard,
        })
        .unwrap();
    match &outcome {
        CheckoutOutcome::Placed { order, .. } => {
            if expect_sync_order {
                assert!(order.is_some(), "{:?} must return the order id", platform.kind());
            }
        }
        CheckoutOutcome::Rejected(r) => panic!("checkout rejected: {r}"),
    }

    // A second checkout by another customer.
    checkout_items(platform, 2, &[(1, 2, 1)]);
    platform
        .checkout(CheckoutRequest {
            customer: CustomerId(2),
            items: vec![],
            method: PaymentMethod::Boleto,
        })
        .unwrap();

    platform.quiesce();

    // Snapshot after quiescing: orders exist, stock moved, payments made.
    let snap = platform.snapshot().unwrap();
    assert_eq!(snap.products.len(), 6);
    assert!(
        !snap.orders.is_empty(),
        "{:?}: no orders materialized",
        platform.kind()
    );
    assert!(!snap.payments.is_empty(), "{:?}: no payments", platform.kind());
    // Stock conservation: available + reserved + sold == initial.
    for s in &snap.stock {
        assert_eq!(
            s.item.qty_available as u64 + s.item.qty_reserved as u64 + s.qty_sold,
            1000,
            "{:?}: stock conservation broken for {}",
            platform.kind(),
            s.item.key
        );
    }

    // Price update propagates to future cart adds.
    platform
        .price_update(SellerId(1), ProductId(1), Money::from_cents(777))
        .unwrap();
    platform.quiesce();
    checkout_items(platform, 3, &[(1, 1, 1)]);

    // Product delete: subsequent adds are rejected (after propagation).
    platform.product_delete(SellerId(2), ProductId(6)).unwrap();
    platform.quiesce();
    let err = platform
        .add_to_cart(
            CustomerId(4),
            CheckoutItem {
                seller: SellerId(2),
                product: ProductId(6),
                quantity: 1,
            },
        )
        .unwrap_err();
    assert_eq!(err.label(), "rejected", "{:?}", platform.kind());

    // Update delivery moves shipped packages to delivered.
    let delivered = platform.update_delivery(10).unwrap();
    assert!(
        delivered > 0,
        "{:?}: nothing delivered despite paid orders",
        platform.kind()
    );
    platform.quiesce();

    // Dashboards answer for every seller.
    for s in 1..=2u64 {
        let dash = platform.seller_dashboard(SellerId(s)).unwrap();
        assert_eq!(dash.seller, SellerId(s));
    }

    let counters = platform.counters();
    assert!(!counters.is_empty());
}

#[test]
fn eventual_platform_lifecycle() {
    let p = EventualPlatform::new(ActorPlatformConfig {
        decline_rate: 0.0,
        ..Default::default()
    });
    exercise(&p, false);
}

#[test]
fn transactional_platform_lifecycle() {
    let p = TransactionalPlatform::new(ActorPlatformConfig {
        decline_rate: 0.0,
        ..Default::default()
    });
    exercise(&p, true);
    assert!(p.tx_log().is_consistent(), "2PC log must be contradiction-free");
    assert!(p.tx_log().commits() > 0);
}

#[test]
fn dataflow_platform_lifecycle() {
    let p = DataflowPlatform::new(DataflowPlatformConfig {
        decline_rate: 0.0,
        ..Default::default()
    });
    exercise(&p, true);
}

#[test]
fn customized_platform_lifecycle() {
    let p = CustomizedPlatform::new(CustomizedConfig {
        actor: ActorPlatformConfig {
            decline_rate: 0.0,
            ..Default::default()
        },
    });
    exercise(&p, true);
    let counters = p.counters();
    assert!(
        counters.get("storage.backend.commits").copied().unwrap_or(0) > 0,
        "dashboard projection commits must flow through the unified backend"
    );
    assert!(counters.contains_key("audit.records"));
}

#[test]
fn customized_dashboard_is_always_snapshot_consistent() {
    // The consistent-dashboard guarantee is the snapshot-isolation
    // backend's: one prefix scan reads one MVCC snapshot of the aggregate
    // and its entries. (Under `eventual_kv` the same platform exposes
    // torn dashboards — the trade the platform×backend matrix measures.)
    let p = CustomizedPlatform::new(CustomizedConfig {
        actor: ActorPlatformConfig {
            decline_rate: 0.0,
            backend: om_common::config::BackendKind::SnapshotIsolation,
            ..Default::default()
        },
    });
    ingest(&p);
    // Interleave checkouts with dashboard reads from another thread.
    std::thread::scope(|scope| {
        let p = &p;
        let churn = scope.spawn(move || {
            for i in 0..30 {
                let c = (i % 4) + 1;
                checkout_items(p, c, &[(1, 1, 1), (1, 2, 1)]);
                let _ = p.checkout(CheckoutRequest {
                    customer: CustomerId(c),
                    items: vec![],
                    method: PaymentMethod::CreditCard,
                });
                if i % 5 == 0 {
                    let _ = p.update_delivery(10);
                }
            }
        });
        let mut checked = 0;
        while !churn.is_finished() {
            let dash = p.seller_dashboard(SellerId(1)).unwrap();
            assert!(
                dash.is_snapshot_consistent(),
                "customized dashboard torn: amount={} count={} entries={}",
                dash.in_progress_amount,
                dash.in_progress_count,
                dash.entries.len()
            );
            checked += 1;
        }
        churn.join().unwrap();
        assert!(checked > 0);
    });
}

#[test]
fn transactional_checkout_is_atomic_under_contention() {
    // Many concurrent checkouts on the same hot product: stock must be
    // conserved exactly (no lost updates, no partial effects).
    let p = TransactionalPlatform::new(ActorPlatformConfig {
        decline_rate: 0.0,
        ..Default::default()
    });
    p.ingest_seller(seller(1)).unwrap();
    for c in 1..=8u64 {
        p.ingest_customer(customer(c)).unwrap();
    }
    p.ingest_product(product(1, 1, 100), 100_000).unwrap();
    std::thread::scope(|scope| {
        for c in 1..=8u64 {
            let p = &p;
            scope.spawn(move || {
                for _ in 0..10 {
                    checkout_items(p, c, &[(1, 1, 1)]);
                    let outcome = p
                        .checkout(CheckoutRequest {
                            customer: CustomerId(c),
                            items: vec![],
                            method: PaymentMethod::DebitCard,
                        })
                        .unwrap();
                    assert!(matches!(outcome, CheckoutOutcome::Placed { .. }));
                }
            });
        }
    });
    p.quiesce();
    let snap = p.snapshot().unwrap();
    assert_eq!(snap.orders.len(), 80);
    let stock = &snap.stock[0];
    assert_eq!(stock.qty_sold, 80, "all 80 units sold exactly once");
    assert_eq!(stock.item.qty_available, 100_000 - 80);
    assert_eq!(stock.item.qty_reserved, 0, "no reservation leaks");
    assert!(p.tx_log().is_consistent());
}

#[test]
fn eventual_platform_loses_effects_under_message_drops() {
    use om_actor::FaultConfig;
    let p = EventualPlatform::new(ActorPlatformConfig {
        faults: FaultConfig::lossy(0.15, 0.0, 99),
        decline_rate: 0.0,
        ..Default::default()
    });
    p.ingest_seller(seller(1)).unwrap();
    for c in 1..=4u64 {
        p.ingest_customer(customer(c)).unwrap();
    }
    p.ingest_product(product(1, 1, 100), 100_000).unwrap();
    for round in 0..25 {
        let c = (round % 4) + 1;
        checkout_items(&p, c, &[(1, 1, 1)]);
        let _ = p.checkout(CheckoutRequest {
            customer: CustomerId(c),
            items: vec![],
            method: PaymentMethod::CreditCard,
        });
    }
    p.quiesce();
    let snap = p.snapshot().unwrap();
    // With 15% event drop across a multi-hop cascade, some checkouts must
    // have lost at least one downstream effect.
    let complete = snap.orders.len();
    assert!(
        complete < 25 || snap.stuck_assemblies > 0 || snap.payments.len() < complete,
        "expected partial effects under drops: orders={complete} stuck={} payments={}",
        snap.stuck_assemblies,
        snap.payments.len()
    );
}

#[test]
fn dataflow_survives_crash_with_exactly_once_checkouts() {
    let p = DataflowPlatform::new(DataflowPlatformConfig {
        decline_rate: 0.0,
        ..Default::default()
    });
    p.ingest_seller(seller(1)).unwrap();
    for c in 1..=4u64 {
        p.ingest_customer(customer(c)).unwrap();
    }
    p.ingest_product(product(1, 1, 100), 100_000).unwrap();
    p.quiesce();

    // Inject a crash mid-stream while submitting checkouts.
    for round in 0..20u64 {
        let c = (round % 4) + 1;
        if round == 10 {
            p.dataflow().inject_crash_after(5);
        }
        checkout_items(&p, c, &[(1, 1, 1)]);
        let outcome = p
            .checkout(CheckoutRequest {
                customer: CustomerId(c),
                items: vec![],
                method: PaymentMethod::CreditCard,
            })
            .unwrap();
        assert!(matches!(outcome, CheckoutOutcome::Placed { .. }));
    }
    p.quiesce();
    let snap = p.snapshot().unwrap();
    assert_eq!(snap.orders.len(), 20, "every checkout exactly once");
    assert_eq!(snap.stock[0].qty_sold, 20);
    assert_eq!(snap.stuck_assemblies, 0, "exactly-once leaves nothing stuck");
    let counters = p.counters();
    assert!(counters["df.replays"] >= 1, "the crash actually happened");
}
