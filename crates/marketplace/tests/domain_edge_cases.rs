//! Edge-case and property tests for the domain layer shared by all
//! bindings: checkout reconciliation, order assembly and conservation
//! invariants under randomized operation sequences.

use om_common::entity::CartItem;
use om_common::ids::{CustomerId, ProductId, SellerId, StockKey, TransactionId};
use om_common::time::EventTime;
use om_common::Money;
use om_marketplace::domain::{reconcile_prices, OrderService, PriceSource, StockService};
use proptest::prelude::*;

fn item(product: u64, qty: u32, cents: i64, version: u64) -> CartItem {
    CartItem {
        seller: SellerId(1),
        product: ProductId(product),
        quantity: qty,
        unit_price: Money::from_cents(cents),
        freight_value: Money::from_cents(5),
        product_version: version,
    }
}

#[test]
fn reconciliation_handles_mixed_outcomes_in_one_cart() {
    let items = vec![item(1, 1, 100, 5), item(2, 1, 100, 5), item(3, 1, 100, 5)];
    let (out, sources) = reconcile_prices(items, |p| match p.0 {
        1 => Some((Money::from_cents(150), 7, true)),  // fresh, newer
        2 => Some((Money::from_cents(80), 3, true)),   // stale replica
        _ => None,                                     // deleted
    });
    assert_eq!(out.len(), 2);
    assert_eq!(out[0].unit_price, Money::from_cents(150));
    assert_eq!(out[1].unit_price, Money::from_cents(100), "stale keeps cart price");
    assert_eq!(
        sources.iter().map(|(_, s)| *s).collect::<Vec<_>>(),
        vec![PriceSource::Fresh, PriceSource::Stale, PriceSource::Missing]
    );
}

#[test]
fn order_assembly_tolerates_out_of_order_and_duplicate_answers() {
    let mut svc = OrderService::new(CustomerId(1));
    let tid = TransactionId(5);
    svc.begin_assembly(tid, 2, EventTime(1));
    let done = {
        assert!(svc.record_stock_answer(tid, item(1, 1, 100, 0), true).is_none());
        // Duplicate answer for the same line (at-least-once delivery):
        // completes the expected count — assembly treats answers as
        // opaque; dedup is the transport's job, and eventual mode
        // deliberately lacks it.
        svc.record_stock_answer(tid, item(1, 1, 100, 0), true)
    };
    assert!(done.is_some(), "expected-count completion");
}

#[test]
fn orders_per_customer_namespace_cannot_collide_within_bounds() {
    use om_marketplace::domain::order::ORDERS_PER_CUSTOMER;
    let mut a = OrderService::new(CustomerId(0));
    let mut b = OrderService::new(CustomerId(1));
    let mut ids = std::collections::HashSet::new();
    for _ in 0..100 {
        ids.insert(a.create_order(&[item(1, 1, 10, 0)], EventTime(1)).unwrap().id);
        ids.insert(b.create_order(&[item(1, 1, 10, 0)], EventTime(1)).unwrap().id);
    }
    assert_eq!(ids.len(), 200);
    assert!(u64::from(ids.len() as u32) < ORDERS_PER_CUSTOMER);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Stock conservation holds under any interleaving of reserve /
    /// confirm / cancel / replenish / delete, including nonsensical ones.
    #[test]
    fn prop_stock_units_conserved(ops in proptest::collection::vec((0u8..5, 1u32..50), 1..100)) {
        let mut svc = StockService::new(StockKey::new(SellerId(1), ProductId(1)), 1000);
        let mut expected_total: u64 = 1000;
        for (op, qty) in ops {
            match op {
                0 => { let _ = svc.reserve(qty); }
                1 => svc.confirm(qty),
                2 => svc.cancel(qty),
                3 => {
                    svc.item.replenish(qty);
                    expected_total += qty as u64;
                }
                _ => svc.apply_product_delete(99),
            }
            prop_assert_eq!(
                svc.accounted_units(),
                expected_total,
                "units not conserved after op {} qty {}", op, qty
            );
        }
    }

    /// Reconciliation never raises the charged price above the replica's
    /// offer nor resurrects deleted products.
    #[test]
    fn prop_reconciliation_bounds(
        cart_version in 0u64..10,
        replica_version in 0u64..10,
        cart_cents in 1i64..10_000,
        replica_cents in 1i64..10_000,
        active in any::<bool>(),
    ) {
        let (out, sources) = reconcile_prices(
            vec![item(1, 1, cart_cents, cart_version)],
            |_| Some((Money::from_cents(replica_cents), replica_version, active)),
        );
        if !active {
            prop_assert!(out.is_empty());
            prop_assert_eq!(sources[0].1, PriceSource::Missing);
        } else {
            prop_assert_eq!(out.len(), 1);
            let final_price = out[0].unit_price.cents();
            if replica_version > cart_version {
                prop_assert_eq!(final_price, replica_cents, "newer replica price applies");
            } else {
                prop_assert_eq!(final_price, cart_cents, "older replica never overrides");
            }
            prop_assert_eq!(
                sources[0].1,
                if replica_version >= cart_version { PriceSource::Fresh } else { PriceSource::Stale }
            );
        }
    }

    /// Order totals always equal the sum of their line totals.
    #[test]
    fn prop_order_totals_add_up(lines in proptest::collection::vec((1u64..50, 1u32..5, 1i64..10_000), 1..8)) {
        let mut svc = OrderService::new(CustomerId(3));
        let items: Vec<CartItem> = lines
            .iter()
            .enumerate()
            .map(|(i, (p, q, c))| item(*p + i as u64 * 100, *q, *c, 0))
            .collect();
        let order = svc.create_order(&items, EventTime(1)).unwrap();
        let amount: i64 = order.items.iter().map(|i| i.total_amount.cents()).sum();
        let freight: i64 = order
            .items
            .iter()
            .map(|i| i.freight_value.cents() * i.quantity as i64)
            .sum();
        prop_assert_eq!(order.total_amount.cents(), amount);
        prop_assert_eq!(order.total_freight.cents(), freight);
        prop_assert_eq!(order.total_invoice().cents(), amount + freight);
    }
}
