//! E2E: a platform built with `BackendKind::FileDurable` and a
//! `data_dir` can be **fully dropped and rebuilt from the directory
//! alone** — no shared backend instance, no shared ingress `Arc`, the
//! same situation a fresh process image faces after `kill -9`. Zero
//! committed epochs are lost and none are replayed (every checkout
//! lands exactly once), and in-flight ingress records persisted before
//! the crash are replayed by the rebuilt platform.

use om_common::config::BackendKind;
use om_common::entity::{Customer, PaymentMethod, Product, Seller};
use om_common::ids::{CustomerId, ProductId, SellerId};
use om_common::Money;
use om_marketplace::api::{CheckoutItem, CheckoutOutcome, CheckoutRequest, MarketplacePlatform};
use om_marketplace::{build_platform, PlatformKind, PlatformSpec};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "om-durable-e2e-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

struct DirGuard(PathBuf);
impl Drop for DirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn ingest(platform: &dyn MarketplacePlatform) {
    platform
        .ingest_seller(Seller::new(SellerId(1), "acme".into(), "odense".into()))
        .unwrap();
    for c in 1..=4u64 {
        platform
            .ingest_customer(Customer::new(CustomerId(c), format!("c{c}"), "addr".into()))
            .unwrap();
    }
    platform
        .ingest_product(
            Product {
                id: ProductId(1),
                seller: SellerId(1),
                name: "widget".into(),
                category: "cat".into(),
                description: String::new(),
                price: Money::from_cents(500),
                freight_value: Money::ZERO,
                version: 0,
                active: true,
            },
            100_000,
        )
        .unwrap();
    platform.quiesce();
}

fn checkout(platform: &dyn MarketplacePlatform, customer: u64) {
    platform
        .add_to_cart(
            CustomerId(customer),
            CheckoutItem {
                seller: SellerId(1),
                product: ProductId(1),
                quantity: 2,
            },
        )
        .unwrap();
    let outcome = platform
        .checkout(CheckoutRequest {
            customer: CustomerId(customer),
            items: vec![],
            method: PaymentMethod::CreditCard,
        })
        .unwrap();
    assert!(matches!(outcome, CheckoutOutcome::Placed { .. }));
}

#[test]
fn dataflow_platform_rebuilds_cold_from_data_dir_alone() {
    const CHECKOUTS: u64 = 12;
    let dir = scratch("dataflow");
    let _guard = DirGuard(dir.clone());
    let spec = PlatformSpec::new(PlatformKind::Dataflow, BackendKind::FileDurable)
        .parallelism(2)
        .decline_rate(0.0)
        .data_dir(&dir);

    // First life: ingest, run committed work, then leave one record in
    // flight (fire-and-forget price update, no quiesce) and die.
    let (orders_before, sold_before) = {
        let platform = build_platform(&spec);
        ingest(platform.as_ref());
        for i in 0..CHECKOUTS {
            checkout(platform.as_ref(), (i % 4) + 1);
        }
        platform.quiesce();
        let snap = platform.snapshot().unwrap();
        assert_eq!(snap.orders.len() as u64, CHECKOUTS);
        platform
            .price_update(SellerId(1), ProductId(1), Money::from_cents(999))
            .unwrap();
        platform
            .ingest_customer(Customer::new(CustomerId(99), "late".into(), "addr".into()))
            .unwrap();
        // No quiesce: the update and the late ingest may still be in the
        // persistent ingress log when the platform drops — the crash
        // window.
        (snap.orders.len(), snap.stock[0].qty_sold)
    };

    // Second life: nothing shared but the directory.
    let reborn = build_platform(&spec);
    assert_eq!(reborn.backend(), Some(BackendKind::FileDurable));
    reborn.quiesce(); // drain any replayed in-flight records
    let snap = reborn.snapshot().unwrap();
    assert_eq!(
        snap.orders.len(),
        orders_before,
        "zero committed checkouts lost, none replayed"
    );
    assert_eq!(snap.stock[0].qty_sold, sold_before, "stock accounting survives");
    assert_eq!(snap.sellers.len(), 1, "catalog rebuilt from recovered state");
    assert_eq!(
        snap.customers.len(),
        5,
        "catalog covers checkpointed entities AND the in-flight ingest"
    );
    assert!(snap.customers.iter().any(|c| c.id == CustomerId(99)));
    // The in-flight price update was replayed exactly once from the
    // persistent ingress log (or had already landed pre-crash — either
    // way the final price is the updated one).
    assert_eq!(
        snap.products[0].price,
        Money::from_cents(999),
        "in-flight ingress records replay from disk"
    );
    let dash = reborn.seller_dashboard(SellerId(1)).unwrap();
    assert_eq!(dash.seller, SellerId(1));

    // The rebuilt platform keeps serving traffic.
    checkout(reborn.as_ref(), 1);
    reborn.quiesce();
    assert_eq!(reborn.snapshot().unwrap().orders.len(), orders_before + 1);
}

#[test]
fn actor_platforms_rebuild_catalog_and_entity_state_cold_from_data_dir_alone() {
    const CHECKOUTS: u64 = 8;
    for kind in [
        PlatformKind::Eventual,
        PlatformKind::Transactional,
        PlatformKind::Customized,
    ] {
        let dir = scratch("actor-catalog");
        let _guard = DirGuard(dir.clone());
        let spec = PlatformSpec::new(kind, BackendKind::FileDurable)
            .parallelism(2)
            .decline_rate(0.0)
            .data_dir(&dir);

        // First life: ingest the catalog, run committed checkouts, die.
        let (sold_before, paid_before) = {
            let platform = build_platform(&spec);
            ingest(platform.as_ref());
            for i in 0..CHECKOUTS {
                checkout(platform.as_ref(), (i % 4) + 1);
            }
            platform.quiesce();
            let snap = platform.snapshot().unwrap();
            let paid: u64 = snap.customers.iter().map(|c| c.success_payment_count).sum();
            assert!(paid > 0, "{kind:?}: checkouts paid in the first life");
            (snap.stock[0].qty_sold, paid)
        };

        // Second life: nothing shared but the directory. The catalog must
        // be rebuilt from the grain snapshots on disk — without it the
        // platform would report an empty marketplace even though every
        // entity's state is recoverable.
        let reborn = build_platform(&spec);
        let snap = reborn.snapshot().unwrap();
        assert_eq!(snap.sellers.len(), 1, "{kind:?}: seller catalog rebuilt");
        assert_eq!(snap.customers.len(), 4, "{kind:?}: customer catalog rebuilt");
        assert_eq!(snap.products.len(), 1, "{kind:?}: product catalog rebuilt");
        assert_eq!(snap.products[0].price, Money::from_cents(500));
        assert_eq!(
            snap.stock[0].qty_sold, sold_before,
            "{kind:?}: stock accounting survives the rebuild"
        );
        assert_eq!(
            snap.customers
                .iter()
                .map(|c| c.success_payment_count)
                .sum::<u64>(),
            paid_before,
            "{kind:?}: customer payment counters survive the rebuild"
        );

        // Re-ingesting a recovered entity must not double-count it.
        reborn
            .ingest_seller(Seller::new(SellerId(1), "acme".into(), "odense".into()))
            .unwrap();
        reborn.quiesce();
        assert_eq!(
            reborn.snapshot().unwrap().sellers.len(),
            1,
            "{kind:?}: catalog dedups re-ingestion after recovery"
        );

        // And the rebuilt platform keeps serving committed work.
        checkout(reborn.as_ref(), 1);
        reborn.quiesce();
        assert!(
            reborn.snapshot().unwrap().stock[0].qty_sold > sold_before,
            "{kind:?}: post-rebuild checkouts keep landing"
        );
    }
}

#[test]
fn cold_rebuild_loses_no_committed_epoch_and_replays_none() {
    use om_marketplace::bindings::dataflow::{
        persistent_ingress, DataflowPlatform, DataflowPlatformConfig,
    };
    use om_dataflow::BackendCheckpointStore;
    use std::sync::Arc;

    let dir = scratch("epochs");
    let _guard = DirGuard(dir.clone());
    let build = || {
        let backend =
            om_storage::make_backend_at(BackendKind::FileDurable, 8, Some(&dir.join("state")))
                .unwrap();
        DataflowPlatform::new(DataflowPlatformConfig {
            partitions: 2,
            max_batch: 8,
            workers: 0,
            decline_rate: 0.0,
            checkpoint_store: Some(Arc::new(BackendCheckpointStore::new(backend))),
            ingress: Some(persistent_ingress(dir.join("ingress"), 2).unwrap()),
        })
    };

    let epoch_before = {
        let platform = build();
        ingest(&platform);
        for i in 0..8u64 {
            checkout(&platform, (i % 4) + 1);
        }
        platform.quiesce();
        platform.dataflow().committed_epoch()
    };
    assert!(epoch_before > 0);

    let reborn = build();
    assert_eq!(
        reborn.dataflow().committed_epoch(),
        epoch_before,
        "the cold restart resumes from exactly the last committed epoch"
    );
    let recovery = reborn.dataflow().last_recovery().expect("build-time restore");
    assert_eq!(recovery.epoch, epoch_before);
    assert!(recovery.restored_keys > 0, "keyed state restored from disk");
    assert_eq!(
        reborn.dataflow().pending_ingress(),
        0,
        "everything committed pre-crash stays committed — nothing replays"
    );
    // New work advances from the recovered epoch, not from zero.
    checkout(&reborn, 1);
    reborn.quiesce();
    assert!(reborn.dataflow().committed_epoch() > epoch_before);
}
