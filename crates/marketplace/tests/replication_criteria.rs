//! Replication-criterion focused tests (paper §II: eventual vs causal
//! Product→Cart replication): the plain actor bindings exhibit stale
//! reads under lossy replication events, while the customized binding's
//! causal KV path stays anomaly-free.

use om_actor::FaultConfig;
use om_common::entity::{Customer, Product, Seller};
use om_common::ids::{CustomerId, ProductId, SellerId};
use om_common::Money;
use om_marketplace::api::{CheckoutItem, MarketplacePlatform};
use om_marketplace::bindings::actor_core::ActorPlatformConfig;
use om_marketplace::bindings::customized::CustomizedConfig;
use om_marketplace::{CustomizedPlatform, EventualPlatform};

fn seed(platform: &dyn MarketplacePlatform) {
    platform
        .ingest_seller(Seller::new(SellerId(1), "s".into(), "c".into()))
        .unwrap();
    platform
        .ingest_customer(Customer::new(CustomerId(1), "c".into(), "a".into()))
        .unwrap();
    platform
        .ingest_product(
            Product {
                id: ProductId(1),
                seller: SellerId(1),
                name: "p".into(),
                category: "c".into(),
                description: String::new(),
                price: Money::from_cents(100),
                freight_value: Money::ZERO,
                version: 0,
                active: true,
            },
            1_000_000,
        )
        .unwrap();
    platform.quiesce();
}

#[test]
fn eventual_binding_counts_stale_reads_when_replication_events_drop() {
    // 60% of grain-to-grain events (including ReplicaApplyUpdate) drop:
    // cart adds right after a price update read a stale replica.
    let p = EventualPlatform::new(ActorPlatformConfig {
        faults: FaultConfig::lossy(0.6, 0.0, 31),
        decline_rate: 0.0,
        ..Default::default()
    });
    seed(&p);
    for round in 1..=50i64 {
        p.price_update(SellerId(1), ProductId(1), Money::from_cents(100 + round))
            .unwrap();
        p.quiesce();
        let _ = p.add_to_cart(
            CustomerId(1),
            CheckoutItem {
                seller: SellerId(1),
                product: ProductId(1),
                quantity: 1,
            },
        );
    }
    let stale = p.counters().get("stale_price_reads").copied().unwrap_or(0);
    assert!(
        stale > 0,
        "dropped replication events must surface as stale reads"
    );
}

#[test]
fn eventual_binding_with_reliable_events_converges() {
    let p = EventualPlatform::new(ActorPlatformConfig {
        decline_rate: 0.0,
        ..Default::default()
    });
    seed(&p);
    for round in 1..=20i64 {
        p.price_update(SellerId(1), ProductId(1), Money::from_cents(100 + round))
            .unwrap();
        p.quiesce(); // replication drains before the next read
        p.add_to_cart(
            CustomerId(1),
            CheckoutItem {
                seller: SellerId(1),
                product: ProductId(1),
                quantity: 1,
            },
        )
        .unwrap();
    }
    assert_eq!(
        p.counters().get("stale_price_reads").copied().unwrap_or(0),
        0,
        "reliable + quiesced replication cannot be stale"
    );
}

#[test]
fn customized_replica_cache_survives_an_update_storm_without_stale_final_state() {
    let p = CustomizedPlatform::new(CustomizedConfig {
        actor: ActorPlatformConfig {
            decline_rate: 0.0,
            ..Default::default()
        },
    });
    seed(&p);
    p.ingest_customer(Customer::new(CustomerId(2), "c2".into(), "a".into()))
        .unwrap();
    for round in 1..=200i64 {
        p.price_update(SellerId(1), ProductId(1), Money::from_cents(100 + round))
            .unwrap();
        if round % 5 == 0 {
            let _ = p.add_to_cart(
                CustomerId(1),
                CheckoutItem {
                    seller: SellerId(1),
                    product: ProductId(1),
                    quantity: 1,
                },
            );
        }
    }
    p.quiesce();
    // After quiesce every replica of the unified backend agrees, so a
    // fresh cart add must price at the storm's final update.
    p.add_to_cart(
        CustomerId(2),
        CheckoutItem {
            seller: SellerId(1),
            product: ProductId(1),
            quantity: 1,
        },
    )
    .unwrap();
    let outcome = p
        .checkout(om_marketplace::api::CheckoutRequest {
            customer: CustomerId(2),
            items: vec![],
            method: om_common::entity::PaymentMethod::CreditCard,
        })
        .unwrap();
    match outcome {
        om_marketplace::api::CheckoutOutcome::Placed { total, .. } => {
            assert_eq!(
                total,
                Some(Money::from_cents(300)),
                "the replica cache must converge on the final price"
            );
        }
        other => panic!("unexpected outcome {other:?}"),
    }
}

#[test]
fn customized_cart_reads_eventually_see_every_price_update() {
    let p = CustomizedPlatform::new(CustomizedConfig {
        actor: ActorPlatformConfig {
            decline_rate: 0.0,
            ..Default::default()
        },
    });
    seed(&p);
    p.price_update(SellerId(1), ProductId(1), Money::from_cents(777))
        .unwrap();
    p.quiesce();
    // The cart add prices from the (now caught-up) secondary.
    p.add_to_cart(
        CustomerId(1),
        CheckoutItem {
            seller: SellerId(1),
            product: ProductId(1),
            quantity: 1,
        },
    )
    .unwrap();
    let outcome = p
        .checkout(om_marketplace::api::CheckoutRequest {
            customer: CustomerId(1),
            items: vec![],
            method: om_common::entity::PaymentMethod::CreditCard,
        })
        .unwrap();
    match outcome {
        om_marketplace::api::CheckoutOutcome::Placed { total, .. } => {
            assert_eq!(
                total,
                Some(Money::from_cents(777)),
                "checkout must charge the replicated updated price"
            );
        }
        other => panic!("unexpected outcome {other:?}"),
    }
}
