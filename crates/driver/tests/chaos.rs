//! Chaos-under-load regression tests: the crash-recovery drill fired
//! *mid-flash-sale* (not against a quiesced platform) must recover with
//! zero lost committed epochs and a clean audit — no negative stock, no
//! partial checkout, no double charge.
//!
//! Wired into `tests/` so tier-1 catches a regression; the `b5_scenarios`
//! bench sweeps the same cells for numbers.

use om_common::config::{BackendKind, RunConfig, ScaleConfig, ScenarioConfig, WorkloadMix};
use om_driver::run_matrix_cell;
use om_marketplace::PlatformKind;

fn chaos_config(backend: BackendKind) -> RunConfig {
    RunConfig {
        scale: ScaleConfig {
            sellers: 2,
            products_per_seller: 10,
            customers: 24,
            initial_stock: 2_000,
        },
        mix: WorkloadMix {
            product_delete: 0,
            ..Default::default()
        },
        workers: 4,
        ops_per_worker: 150,
        warmup_ops_per_worker: 0,
        backend,
        scenario: Some(ScenarioConfig::flash_sale()),
        chaos_drill: true,
        ..RunConfig::smoke()
    }
}

fn assert_chaos_invariants(backend: BackendKind) {
    let config = chaos_config(backend);
    let report = run_matrix_cell(PlatformKind::Dataflow, &config);
    assert!(report.operations > 0, "{backend:?}: no operations completed");

    // The drill fired and recovered.
    let recovery = report
        .recovery
        .as_ref()
        .unwrap_or_else(|| panic!("{backend:?}: chaos drill must fire on the dataflow cell"));
    assert_eq!(recovery.store, backend.label(), "{backend:?}");
    assert!(
        recovery.recovered_epoch > 0,
        "{backend:?}: restart must come from a committed epoch"
    );
    assert!(
        recovery.final_epoch >= recovery.recovered_epoch,
        "{backend:?}: a committed epoch was lost ({} -> {})",
        recovery.recovered_epoch,
        recovery.final_epoch
    );

    // The audited invariants survive the crash landing mid-sale:
    // conservation == 0 pins every stock row to
    // qty_available + qty_reserved + qty_sold == initial_stock (no
    // negative stock, no oversell); atomicity == 0 covers partial
    // checkouts AND duplicate payments (double charges).
    assert_eq!(
        report.criteria.conservation_violations, 0,
        "{backend:?}: stock corrupted across recovery: {:?}",
        report.criteria
    );
    assert_eq!(
        report.criteria.atomicity_violations, 0,
        "{backend:?}: partial or double-charged checkout across recovery: {:?}",
        report.criteria
    );
    assert_eq!(
        report.criteria.ordering_violations, 0,
        "{backend:?}: payment/shipment order broke across recovery"
    );
}

/// The ISSUE's headline case: FileDurable recovers mid-flash-sale.
#[test]
fn chaos_drill_mid_flash_sale_on_file_durable_recovers_cleanly() {
    assert_chaos_invariants(BackendKind::FileDurable);
}

/// Every other recovery-capable cell (the dataflow binding over each
/// checkpoint backend) passes the same bar.
#[test]
fn chaos_drill_mid_flash_sale_on_memory_backends_recovers_cleanly() {
    assert_chaos_invariants(BackendKind::Eventual);
    assert_chaos_invariants(BackendKind::SnapshotIsolation);
}

/// Platforms without a crash path ignore the chaos knob instead of
/// wedging the window.
#[test]
fn chaos_drill_is_inert_on_platforms_without_a_crash_path() {
    let config = chaos_config(BackendKind::Eventual);
    let report = run_matrix_cell(PlatformKind::Transactional, &config);
    assert!(report.operations > 0);
    assert!(report.recovery.is_none());
    assert_eq!(report.criteria.conservation_violations, 0);
}

/// Chaos composes with the open loop: the drill fires while the arrival
/// schedule keeps firing, and the SLO row still closes its accounting.
#[test]
fn chaos_drill_under_open_loop_keeps_slo_accounting_closed() {
    let config = RunConfig {
        open_loop: Some(om_common::config::OpenLoopConfig::at_rate(2_000.0, 600)),
        ..chaos_config(BackendKind::FileDurable)
    };
    let report = run_matrix_cell(PlatformKind::Dataflow, &config);
    let slo = report.slo.as_ref().expect("open-loop run carries an SLO row");
    assert_eq!(
        slo.completed + slo.failed + slo.dropped,
        slo.arrivals,
        "every arrival must be accounted: {slo:?}"
    );
    assert!(report.recovery.is_some(), "drill fired");
    assert_eq!(report.criteria.conservation_violations, 0);
}
