//! Chaos-under-load regression tests: the crash-recovery drill fired
//! *mid-flash-sale* (not against a quiesced platform) must recover with
//! zero lost committed epochs and a clean audit — no negative stock, no
//! partial checkout, no double charge.
//!
//! Wired into `tests/` so tier-1 catches a regression; the `b5_scenarios`
//! bench sweeps the same cells for numbers.

use om_common::config::{BackendKind, RunConfig, ScaleConfig, ScenarioConfig, WorkloadMix};
use om_common::OmError;
use om_driver::run_matrix_cell;
use om_marketplace::PlatformKind;

fn chaos_config(backend: BackendKind) -> RunConfig {
    RunConfig {
        scale: ScaleConfig {
            sellers: 2,
            products_per_seller: 10,
            customers: 24,
            initial_stock: 2_000,
        },
        mix: WorkloadMix {
            product_delete: 0,
            ..Default::default()
        },
        workers: 4,
        ops_per_worker: 150,
        warmup_ops_per_worker: 0,
        backend,
        scenario: Some(ScenarioConfig::flash_sale()),
        chaos_drill: true,
        ..RunConfig::smoke()
    }
}

fn assert_chaos_invariants(backend: BackendKind) {
    let config = chaos_config(backend);
    let report = run_matrix_cell(PlatformKind::Dataflow, &config);
    assert!(report.operations > 0, "{backend:?}: no operations completed");

    // The drill fired and recovered.
    let recovery = report
        .recovery
        .as_ref()
        .unwrap_or_else(|| panic!("{backend:?}: chaos drill must fire on the dataflow cell"));
    assert_eq!(recovery.store, backend.label(), "{backend:?}");
    assert!(
        recovery.recovered_epoch > 0,
        "{backend:?}: restart must come from a committed epoch"
    );
    assert!(
        recovery.final_epoch >= recovery.recovered_epoch,
        "{backend:?}: a committed epoch was lost ({} -> {})",
        recovery.recovered_epoch,
        recovery.final_epoch
    );

    // The audited invariants survive the crash landing mid-sale:
    // conservation == 0 pins every stock row to
    // qty_available + qty_reserved + qty_sold == initial_stock (no
    // negative stock, no oversell); atomicity == 0 covers partial
    // checkouts AND duplicate payments (double charges).
    assert_eq!(
        report.criteria.conservation_violations, 0,
        "{backend:?}: stock corrupted across recovery: {:?}",
        report.criteria
    );
    assert_eq!(
        report.criteria.atomicity_violations, 0,
        "{backend:?}: partial or double-charged checkout across recovery: {:?}",
        report.criteria
    );
    assert_eq!(
        report.criteria.ordering_violations, 0,
        "{backend:?}: payment/shipment order broke across recovery"
    );
}

/// The ISSUE's headline case: FileDurable recovers mid-flash-sale.
#[test]
fn chaos_drill_mid_flash_sale_on_file_durable_recovers_cleanly() {
    assert_chaos_invariants(BackendKind::FileDurable);
}

/// Every other recovery-capable cell (the dataflow binding over each
/// checkpoint backend) passes the same bar.
#[test]
fn chaos_drill_mid_flash_sale_on_memory_backends_recovers_cleanly() {
    assert_chaos_invariants(BackendKind::Eventual);
    assert_chaos_invariants(BackendKind::SnapshotIsolation);
}

/// Platforms without a crash path ignore the chaos knob instead of
/// wedging the window.
#[test]
fn chaos_drill_is_inert_on_platforms_without_a_crash_path() {
    let config = chaos_config(BackendKind::Eventual);
    let report = run_matrix_cell(PlatformKind::Transactional, &config);
    assert!(report.operations > 0);
    assert!(report.recovery.is_none());
    assert_eq!(report.criteria.conservation_violations, 0);
}

/// The disk-fault drill: a scheduled fsync failure wedges the durable
/// store *mid-flash-sale*. Degradation must be graceful — every error a
/// client sees is a typed [`OmError::Wedged`] (shed, retryable), never a
/// panic or a silent success over lost bytes — and `unwedge()` repairs
/// the store in place, after which checkouts succeed again and the
/// audit (conservation, atomicity, ordering) is clean.
#[test]
fn disk_fault_drill_mid_flash_sale_wedges_then_unwedge_restores_a_clean_audit() {
    use om_common::config::{GroupCommitPolicy, SnapshotMode};
    use om_common::entity::{Customer, PaymentMethod, Product, Seller};
    use om_common::ids::{CustomerId, ProductId, SellerId};
    use om_common::Money;
    use om_driver::audit::{audit, RuntimeObservations};
    use om_marketplace::api::{
        CheckoutItem, CheckoutOutcome, CheckoutRequest, MarketplacePlatform,
    };
    use om_marketplace::{build_platform, PlatformSpec};
    use om_storage::vfs::FaultVfs;
    use om_storage::{FileBackend, FileBackendOptions, StateBackend};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    const SEED: u64 = 0xFA_0175;
    const INITIAL_STOCK: u32 = 100_000;

    fn scratch() -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "om-disk-fault-drill-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
    struct DirGuard(std::path::PathBuf);
    impl Drop for DirGuard {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn options() -> FileBackendOptions {
        FileBackendOptions {
            shards: 2,
            snapshot_every: 0,
            segment_bytes: 1 << 20,
            sync_commits: true,
            group_commit: GroupCommitPolicy::Off,
            snapshot_mode: SnapshotMode::Full,
            compact_max_deltas: 4,
            compact_ratio_pct: 100,
            recovery_threads: 1,
        }
    }

    fn build(dir: &std::path::Path, vfs: FaultVfs) -> Box<dyn MarketplacePlatform> {
        let backend: Arc<dyn StateBackend> = Arc::new(
            FileBackend::open_with_vfs(dir.join("state"), options(), Arc::new(vfs)).unwrap(),
        );
        build_platform(
            &PlatformSpec::new(PlatformKind::Customized, BackendKind::FileDurable)
                .parallelism(2)
                .decline_rate(0.0)
                .backend_instance(backend),
        )
    }

    fn ingest(platform: &dyn MarketplacePlatform) {
        platform
            .ingest_seller(Seller::new(SellerId(1), "acme".into(), "odense".into()))
            .unwrap();
        for c in 1..=4u64 {
            platform
                .ingest_customer(Customer::new(CustomerId(c), format!("c{c}"), "addr".into()))
                .unwrap();
        }
        platform
            .ingest_product(
                Product {
                    id: ProductId(1),
                    seller: SellerId(1),
                    name: "widget".into(),
                    category: "cat".into(),
                    description: String::new(),
                    price: Money::from_cents(500),
                    freight_value: Money::ZERO,
                    version: 0,
                    active: true,
                },
                INITIAL_STOCK,
            )
            .unwrap();
        platform.quiesce();
    }

    fn try_checkout(platform: &dyn MarketplacePlatform, customer: u64) -> Result<bool, OmError> {
        platform.add_to_cart(
            CustomerId(customer),
            CheckoutItem {
                seller: SellerId(1),
                product: ProductId(1),
                quantity: 1,
            },
        )?;
        let outcome = platform.checkout(CheckoutRequest {
            customer: CustomerId(customer),
            items: vec![],
            method: PaymentMethod::CreditCard,
        })?;
        Ok(matches!(outcome, CheckoutOutcome::Placed { .. }))
    }

    // Calibrate: count how many fsyncs a clean ingest needs, so the
    // fault can be scheduled to land squarely inside the sale.
    let ingest_syncs = {
        let dir = scratch();
        let _g = DirGuard(dir.clone());
        let probe = FaultVfs::new(SEED).recording();
        let platform = build(&dir, probe.clone());
        ingest(platform.as_ref());
        probe.syncs_seen()
    };

    let dir = scratch();
    let _g = DirGuard(dir.clone());
    let vfs = FaultVfs::new(SEED).fail_nth_sync(ingest_syncs + 25);
    let platform = build(&dir, vfs.clone());
    ingest(platform.as_ref());

    // Flash sale: four workers hammer checkouts until the fault fires
    // and every one of them has seen the wedge shed at least once.
    let shed = AtomicU64::new(0);
    let placed = AtomicU64::new(0);
    let non_wedged_error = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for w in 0..4u64 {
            let (platform, shed, placed, non_wedged_error) =
                (platform.as_ref(), &shed, &placed, &non_wedged_error);
            scope.spawn(move || {
                for _ in 0..200 {
                    match try_checkout(platform, w + 1) {
                        Ok(true) => {
                            placed.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(false) => {}
                        Err(OmError::Wedged(_)) => {
                            if shed.fetch_add(1, Ordering::Relaxed) >= 8 {
                                break;
                            }
                        }
                        Err(_) => {
                            non_wedged_error.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                }
            });
        }
    });
    assert!(
        !vfs.fired().is_empty(),
        "the scheduled fsync fault must fire mid-sale (fired: {:?})",
        vfs.fired()
    );
    assert!(placed.load(Ordering::Relaxed) > 0, "checkouts landed before the fault");
    assert!(shed.load(Ordering::Relaxed) > 0, "the wedge shed load");
    assert!(
        !non_wedged_error.load(Ordering::Relaxed),
        "every degraded response is a typed Wedged error — no panic, no mystery failure"
    );
    assert!(platform.is_wedged(), "the platform reports the wedge");
    assert!(
        matches!(try_checkout(platform.as_ref(), 1), Err(OmError::Wedged(_))),
        "while wedged, checkouts shed with the typed error"
    );

    // Repair in place and resume the sale.
    let outcome = platform
        .unwedge()
        .expect("a durable backend has a wedge concept")
        .expect("unwedge repairs the store");
    assert!(outcome.was_wedged && outcome.healthy, "{outcome:?}");
    assert!(!platform.is_wedged());
    for k in 0..8u64 {
        assert_eq!(
            try_checkout(platform.as_ref(), (k % 4) + 1).ok(),
            Some(true),
            "post-unwedge checkout {k} succeeds"
        );
    }

    platform.quiesce();
    let snap = platform.snapshot().unwrap();
    let report = audit(
        &snap,
        &platform.counters(),
        &RuntimeObservations::default(),
        INITIAL_STOCK,
    );
    assert_eq!(
        report.conservation_violations, 0,
        "units conserved across the wedge: {:?}",
        report
    );
    assert_eq!(
        report.atomicity_violations, 0,
        "no partial or double-charged checkout across the wedge: {:?}",
        report
    );
    assert_eq!(report.ordering_violations, 0, "payment/shipment order held");
}

/// Chaos composes with the open loop: the drill fires while the arrival
/// schedule keeps firing, and the SLO row still closes its accounting.
#[test]
fn chaos_drill_under_open_loop_keeps_slo_accounting_closed() {
    let config = RunConfig {
        open_loop: Some(om_common::config::OpenLoopConfig::at_rate(2_000.0, 600)),
        ..chaos_config(BackendKind::FileDurable)
    };
    let report = run_matrix_cell(PlatformKind::Dataflow, &config);
    let slo = report.slo.as_ref().expect("open-loop run carries an SLO row");
    assert_eq!(
        slo.completed + slo.failed + slo.dropped,
        slo.arrivals,
        "every arrival must be accounted: {slo:?}"
    );
    assert!(report.recovery.is_some(), "drill fired");
    assert_eq!(report.criteria.conservation_violations, 0);
}
