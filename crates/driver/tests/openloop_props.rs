//! Property tests for the open-loop scheduler: schedule determinism
//! (byte-identical for identical seed + config), monotone timestamps,
//! rate convergence, and byte-identical SLO rows out of the
//! discrete-event model.

use om_common::config::OpenLoopConfig;
use om_driver::{simulate, ArrivalSchedule, SloRow};
use proptest::prelude::*;

fn cfg(rate: f64, arrivals: u64, poisson: bool) -> OpenLoopConfig {
    let mut c = OpenLoopConfig::at_rate(rate, arrivals);
    c.poisson = poisson;
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Identical seed + config ⇒ byte-identical arrival schedules.
    #[test]
    fn prop_schedule_is_byte_identical_for_same_inputs(
        seed in any::<u64>(),
        rate in 100.0f64..50_000.0,
        arrivals in 1u64..2_000,
        poisson in any::<bool>(),
    ) {
        let c = cfg(rate, arrivals, poisson);
        let a = ArrivalSchedule::generate(&c, seed);
        let b = ArrivalSchedule::generate(&c, seed);
        prop_assert_eq!(a.to_bytes(), b.to_bytes());
        prop_assert_eq!(a.offsets_us.len() as u64, arrivals);
    }

    /// Arrival timestamps are monotone non-decreasing.
    #[test]
    fn prop_schedule_timestamps_are_monotone(
        seed in any::<u64>(),
        rate in 100.0f64..50_000.0,
        arrivals in 2u64..2_000,
    ) {
        let s = ArrivalSchedule::generate(&cfg(rate, arrivals, true), seed);
        for w in s.offsets_us.windows(2) {
            prop_assert!(w[0] <= w[1], "offsets not monotone: {} > {}", w[0], w[1]);
        }
    }

    /// The empirical arrival rate converges to the configured rate.
    #[test]
    fn prop_schedule_mean_rate_converges(
        seed in any::<u64>(),
        rate in 1_000.0f64..20_000.0,
    ) {
        // Enough arrivals that the exponential gaps average out.
        let s = ArrivalSchedule::generate(&cfg(rate, 20_000, true), seed);
        let achieved = s.offsets_us.len() as f64 / s.span_secs();
        let err = (achieved - rate).abs() / rate;
        prop_assert!(err < 0.05, "achieved {achieved:.0}/s vs offered {rate:.0}/s");
    }

    /// Identical seed + config ⇒ byte-identical SLO rows (the
    /// deterministic discrete-event model shares its accounting with the
    /// threaded runner, so the RunReport row arithmetic is pinned here).
    #[test]
    fn prop_slo_rows_are_byte_identical_for_same_inputs(
        seed in any::<u64>(),
        rate in 500.0f64..20_000.0,
        arrivals in 10u64..2_000,
        mean_service_us in 50.0f64..5_000.0,
    ) {
        let c = cfg(rate, arrivals, true);
        let a = simulate(&c, seed, mean_service_us);
        let b = simulate(&c, seed, mean_service_us);
        let a_bytes = serde_json::to_string(&a).unwrap().into_bytes();
        let b_bytes = serde_json::to_string(&b).unwrap().into_bytes();
        prop_assert_eq!(a_bytes, b_bytes);
        // Accounting closes: every arrival is completed or dropped.
        prop_assert_eq!(a.completed + a.dropped, a.arrivals);
        prop_assert_eq!(a.latency.count, a.completed);
    }

    /// The SLO row roundtrips through serde without loss.
    #[test]
    fn prop_slo_row_serde_roundtrip(
        seed in any::<u64>(),
        rate in 500.0f64..10_000.0,
    ) {
        let row = simulate(&cfg(rate, 500, true), seed, 800.0);
        let json = serde_json::to_string(&row).unwrap();
        let back: SloRow = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, row);
    }
}

/// The in-flight ledger bound is respected: with `max_in_flight = 1` and
/// service times far longer than arrival gaps, nearly everything sheds.
#[test]
fn tiny_ledger_sheds_overload() {
    let mut c = OpenLoopConfig::at_rate(10_000.0, 1_000);
    c.max_in_flight = 1;
    let row = simulate(&c, 3, 50_000.0); // 50ms service vs 100us gaps
    assert!(row.dropped > 900, "expected heavy shedding: {row:?}");
    assert_eq!(row.completed + row.dropped, row.arrivals);
}

/// Open-loop vs closed-loop at the same concurrency: past saturation the
/// open loop's p99 (measured from scheduled arrival) diverges while a
/// closed loop at the same worker count would simply throttle its offered
/// rate. The model makes the contrast explicit.
#[test]
fn open_loop_exposes_queueing_collapse() {
    // 4 servers, 1ms mean service: capacity ~4000/s.
    let mk = |rate: f64| {
        let mut c = OpenLoopConfig::at_rate(rate, 6_000);
        c.workers = 4;
        simulate(&c, 17, 1_000.0)
    };
    let under = mk(2_000.0);
    let near = mk(3_500.0);
    let over = mk(8_000.0);
    assert!(under.achieved_ratio() > 0.95, "{under:?}");
    assert!(near.achieved_ratio() > 0.8, "{near:?}");
    assert!(over.achieved_ratio() < 0.6, "{over:?}");
    // The tail explodes across the saturation point.
    assert!(
        over.latency.p99_us > under.latency.p99_us * 10,
        "p99 must diverge: {} -> {}",
        under.latency.p99_us,
        over.latency.p99_us
    );
    // The highest sustained rate sits below capacity (~4000/s): 8000/s
    // collapsed, so saturation is one of the sustained cells.
    let sat = om_driver::saturation_point(&[under, near, over], 0.95).unwrap();
    assert!(
        (2_000.0..4_000.0).contains(&sat),
        "saturation at {sat}, expected in [2000, 4000)"
    );
}
