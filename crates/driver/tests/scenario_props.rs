//! Scenario workload tests against real platforms: flash-sale stock
//! invariants under contention (both backends, 1 and 4 workers),
//! price-storm torn-price detection, and cart-churn / dashboard-storm
//! smoke coverage.

use om_common::config::{BackendKind, RunConfig, ScaleConfig, ScenarioConfig, WorkloadMix};
use om_driver::run_matrix_cell;
use om_marketplace::PlatformKind;
use proptest::prelude::*;

/// Flash-sale at a scale where the hot product sells out mid-run: stock
/// is 30 units against ~200 single-unit checkouts.
fn flash_config(seed: u64, workers: usize, backend: BackendKind) -> RunConfig {
    RunConfig {
        seed,
        scale: ScaleConfig {
            sellers: 2,
            products_per_seller: 10,
            customers: 24,
            initial_stock: 30,
        },
        // No deletes: every product must survive so the conservation
        // accounting below can use the full catalogue.
        mix: WorkloadMix {
            product_delete: 0,
            ..Default::default()
        },
        workers,
        ops_per_worker: 200 / workers as u64,
        warmup_ops_per_worker: 0,
        backend,
        scenario: Some(ScenarioConfig::flash_sale()),
        ..RunConfig::smoke()
    }
}

/// The invariant core: run the flash sale, then prove on the quiesced
/// snapshot that no product oversold and no unit was created or
/// destroyed, no matter how the interleaving went.
fn assert_flash_sale_invariants(seed: u64, workers: usize, backend: BackendKind) {
    let config = flash_config(seed, workers, backend);
    let report = run_matrix_cell(PlatformKind::Transactional, &config);
    assert!(report.operations > 0, "run produced no operations");
    assert_eq!(
        report.criteria.conservation_violations, 0,
        "units created/destroyed ({backend:?}, workers={workers}): {:?}",
        report.criteria
    );
    assert_eq!(
        report.criteria.atomicity_violations, 0,
        "partial checkout under contention ({backend:?}, workers={workers})"
    );
    // counters carry the storage traffic; the audit above already walked
    // the snapshot: conservation == 0 means every stock row satisfies
    // qty_available + qty_reserved + qty_sold == initial_stock, which
    // bounds successes by the initial stock and rules out negative
    // quantities (they are u32 and conservation pins the sum).
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Stock never goes negative and checkout successes never exceed the
    /// initial stock — any seed, both backends, 1 and 4 workers.
    #[test]
    fn prop_flash_sale_never_oversells(seed in 1u64..10_000) {
        for backend in [BackendKind::Eventual, BackendKind::SnapshotIsolation] {
            for workers in [1usize, 4] {
                assert_flash_sale_invariants(seed, workers, backend);
            }
        }
    }
}

/// Deterministic pin of the same invariant at the exact contention point
/// (kept outside proptest so a failure names the cell directly).
#[test]
fn flash_sale_sellout_is_exact_on_snapshot_isolation() {
    assert_flash_sale_invariants(0xF1A5, 4, BackendKind::SnapshotIsolation);
}

/// Price storm: every price a cart observed is either an initial price
/// (datagen range `100..=100_000` cents) or a rung of the storm ladder —
/// a value outside both sets would be a torn read.
#[test]
fn price_storm_carts_never_observe_torn_prices() {
    let config = RunConfig {
        scale: ScaleConfig {
            sellers: 2,
            products_per_seller: 10,
            customers: 24,
            initial_stock: 5_000,
        },
        mix: WorkloadMix {
            product_delete: 0,
            ..Default::default()
        },
        workers: 4,
        ops_per_worker: 150,
        warmup_ops_per_worker: 0,
        backend: BackendKind::SnapshotIsolation,
        scenario: Some(ScenarioConfig::price_storm()),
        ..RunConfig::smoke()
    };
    // Drive the platform directly so the quiesced snapshot is inspectable.
    let spec = om_marketplace::PlatformSpec::new(PlatformKind::Transactional, config.backend)
        .parallelism(config.workers)
        .decline_rate(config.payment_decline_rate);
    let platform = om_marketplace::build_platform(&spec);
    let report = om_driver::run_benchmark(platform.as_ref(), &config, true);
    assert!(report.operations > 0);

    let ladder = om_driver::scenario::storm_price_ladder();
    let snapshot = platform.snapshot().expect("snapshot");
    let mut checked = 0usize;
    let mut storm_observed = 0usize;
    for order in &snapshot.orders {
        for item in &order.items {
            let cents = item.unit_price.0;
            let initial = (100..=100_000).contains(&cents);
            let storm = ladder.contains(&item.unit_price);
            assert!(
                initial || storm,
                "torn price observed: {cents} cents on order {:?}",
                order.id
            );
            checked += 1;
            if storm {
                storm_observed += 1;
            }
        }
    }
    assert!(checked > 50, "not enough order lines audited: {checked}");
    assert!(
        storm_observed > 0,
        "storm never landed a price a cart observed ({checked} lines)"
    );
}

/// Cart churn end-to-end: abandonment-heavy traffic still leaves a
/// conserved, atomically-consistent marketplace.
#[test]
fn cart_churn_preserves_invariants() {
    let config = RunConfig {
        scale: ScaleConfig {
            sellers: 2,
            products_per_seller: 10,
            customers: 24,
            initial_stock: 1_000,
        },
        workers: 4,
        ops_per_worker: 100,
        warmup_ops_per_worker: 0,
        backend: BackendKind::SnapshotIsolation,
        scenario: Some(ScenarioConfig::cart_churn()),
        ..RunConfig::smoke()
    };
    let report = run_matrix_cell(PlatformKind::Transactional, &config);
    assert!(report.operations > 0);
    assert_eq!(report.criteria.conservation_violations, 0, "{:?}", report.criteria);
    assert_eq!(report.criteria.atomicity_violations, 0, "{:?}", report.criteria);
}

/// Dashboard storm: heavy seller scans concurrent with checkout traffic
/// complete without torn dashboards on the snapshot-isolated cell.
#[test]
fn dashboard_storm_keeps_dashboards_consistent_under_si() {
    let config = RunConfig {
        scale: ScaleConfig {
            sellers: 4,
            products_per_seller: 8,
            customers: 24,
            initial_stock: 1_000,
        },
        workers: 4,
        ops_per_worker: 100,
        warmup_ops_per_worker: 0,
        backend: BackendKind::SnapshotIsolation,
        scenario: Some(ScenarioConfig::dashboard_storm()),
        ..RunConfig::smoke()
    };
    let report = run_matrix_cell(PlatformKind::Transactional, &config);
    assert!(report.operations > 0);
    assert!(
        report.latency.contains_key("seller_dashboard"),
        "storm must actually exercise dashboards: {:?}",
        report.latency.keys().collect::<Vec<_>>()
    );
    assert_eq!(report.criteria.conservation_violations, 0);
}

/// The scenario shape threads through `RunConfig` end-to-end: the same
/// cell under flash-sale concentrates checkout traffic far beyond the
/// plain mix.
#[test]
fn scenario_config_changes_traffic_shape_through_run_config() {
    let base = RunConfig {
        scale: ScaleConfig {
            sellers: 2,
            products_per_seller: 10,
            customers: 24,
            initial_stock: 5_000,
        },
        workers: 2,
        ops_per_worker: 150,
        warmup_ops_per_worker: 0,
        backend: BackendKind::Eventual,
        ..RunConfig::smoke()
    };
    let plain = run_matrix_cell(PlatformKind::Transactional, &base);
    let flash = run_matrix_cell(
        PlatformKind::Transactional,
        &RunConfig {
            scenario: Some(ScenarioConfig::flash_sale()),
            ..base
        },
    );
    let share = |r: &om_driver::RunReport| {
        let checkout = r.latency.get("checkout").map(|l| l.count).unwrap_or(0);
        checkout as f64 / r.operations.max(1) as f64
    };
    assert!(
        share(&flash) > share(&plain) + 0.2,
        "flash-sale checkout share {:.2} vs plain {:.2}",
        share(&flash),
        share(&plain)
    );
}
