//! Property tests for workload invariants.

use om_common::config::{RunConfig, ScaleConfig};
use om_common::rng::SplitMix64;
use om_driver::run_benchmark;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Customer leasing never double-leases nor loses customers, under
    /// any interleaving of lease/return.
    #[test]
    fn prop_customer_pool_conserved(ops in proptest::collection::vec(any::<bool>(), 1..200), seed in 0u64..1000) {
        let config = RunConfig {
            scale: ScaleConfig { sellers: 2, products_per_seller: 5, customers: 10, initial_stock: 10 },
            ..RunConfig::smoke()
        };
        let state = om_driver::workload::WorkloadState::new(&config);
        let mut rng = SplitMix64::new(seed);
        let mut held = Vec::new();
        for lease in ops {
            if lease {
                if let Some(c) = state.lease_customer(&mut rng) {
                    prop_assert!(!held.contains(&c), "double lease of {c}");
                    held.push(c);
                }
            } else if let Some(c) = held.pop() {
                state.return_customer(c);
            }
        }
        // Return everything; pool must hold all 10 again.
        for c in held.drain(..) {
            state.return_customer(c);
        }
        let mut count = 0;
        while state.lease_customer(&mut rng).is_some() {
            count += 1;
        }
        prop_assert_eq!(count, 10);
    }

    /// Deleted products never reappear in Zipfian samples, and sampling
    /// always returns a product from the original catalogue.
    #[test]
    fn prop_deleted_products_unsampleable(deletes in 1usize..10, seed in 0u64..1000) {
        let config = RunConfig {
            scale: ScaleConfig { sellers: 2, products_per_seller: 25, customers: 4, initial_stock: 10 },
            ..RunConfig::smoke()
        };
        let state = om_driver::workload::WorkloadState::new(&config);
        let mut rng = SplitMix64::new(seed);
        let mut gone = Vec::new();
        for _ in 0..deletes {
            if let Some(p) = state.pick_for_delete(&mut rng) {
                gone.push(p);
            }
        }
        for _ in 0..2000 {
            let p = state.sample_product(&mut rng);
            prop_assert!(p.0 < 50, "sampled {p} outside catalogue");
            prop_assert!(!gone.contains(&p), "sampled deleted product {p}");
        }
    }
}

/// Two identical runs on identical platforms produce identical operation
/// mixes (the latencies differ; the op streams must not).
#[test]
fn identical_seeds_give_identical_workloads() {
    use om_common::config::TransactionKind;
    use om_driver::workload::{next_op, WorkloadState};

    let config = RunConfig::smoke();
    let mut kinds_a: Vec<TransactionKind> = Vec::new();
    let mut kinds_b: Vec<TransactionKind> = Vec::new();
    for out in [&mut kinds_a, &mut kinds_b] {
        let state = WorkloadState::new(&config);
        let mut rng = SplitMix64::new(config.seed);
        for _ in 0..200 {
            if let Some(op) = next_op(&state, &config, &mut rng) {
                out.push(op.kind());
                if let om_driver::workload::Op::Checkout { customer, .. } = op {
                    state.return_customer(customer);
                }
            }
        }
    }
    assert_eq!(kinds_a, kinds_b);
}

/// Failed-vs-completed accounting always adds up.
#[test]
fn report_accounting_adds_up() {
    use om_marketplace::bindings::actor_core::ActorPlatformConfig;
    use om_marketplace::EventualPlatform;
    let config = RunConfig {
        scale: ScaleConfig {
            sellers: 2,
            products_per_seller: 4,
            customers: 8,
            initial_stock: 1000,
        },
        workers: 2,
        ops_per_worker: 30,
        warmup_ops_per_worker: 2,
        ..RunConfig::default()
    };
    let platform = EventualPlatform::new(ActorPlatformConfig::default());
    let report = run_benchmark(&platform, &config, true);
    assert_eq!(
        report.operations + report.failed_operations,
        config.total_measured_ops()
    );
}
