//! End-to-end driver tests: the full benchmark lifecycle against real
//! platforms at smoke scale.

use om_common::config::{RunConfig, ScaleConfig, WorkloadMix};
use om_driver::run_benchmark;
use om_marketplace::bindings::actor_core::ActorPlatformConfig;
use om_marketplace::bindings::customized::CustomizedConfig;
use om_marketplace::bindings::dataflow::DataflowPlatformConfig;
use om_marketplace::{
    CustomizedPlatform, DataflowPlatform, EventualPlatform, TransactionalPlatform,
};

fn smoke_config() -> RunConfig {
    RunConfig {
        scale: ScaleConfig {
            sellers: 3,
            products_per_seller: 8,
            customers: 12,
            initial_stock: 5_000,
        },
        workers: 3,
        ops_per_worker: 40,
        warmup_ops_per_worker: 5,
        payment_decline_rate: 0.05,
        ..RunConfig::default()
    }
}

#[test]
fn benchmark_runs_on_eventual_platform() {
    let platform = EventualPlatform::new(ActorPlatformConfig {
        decline_rate: 0.05,
        ..Default::default()
    });
    let config = smoke_config();
    let report = run_benchmark(&platform, &config, true);
    assert!(report.operations > 0, "no operations completed");
    assert_eq!(
        report.operations + report.failed_operations,
        config.total_measured_ops()
    );
    assert!(report.throughput_per_sec > 0.0);
    assert!(
        report.latency.contains_key("checkout"),
        "checkout latencies missing: {:?}",
        report.latency.keys().collect::<Vec<_>>()
    );
    // Conservation must hold on every platform, reliable or not.
    assert_eq!(report.criteria.conservation_violations, 0);
}

#[test]
fn benchmark_runs_on_transactional_platform_and_satisfies_atomicity() {
    let platform = TransactionalPlatform::new(ActorPlatformConfig {
        decline_rate: 0.05,
        ..Default::default()
    });
    let report = run_benchmark(&platform, &smoke_config(), true);
    assert!(report.operations > 0);
    assert_eq!(
        report.criteria.atomicity_violations, 0,
        "ACID checkout must be all-or-nothing: {:?}",
        report.criteria
    );
    assert_eq!(report.criteria.conservation_violations, 0);
    assert!(platform.tx_log().is_consistent());
}

#[test]
fn benchmark_runs_on_dataflow_platform() {
    let platform = DataflowPlatform::new(DataflowPlatformConfig {
        decline_rate: 0.05,
        ..Default::default()
    });
    let report = run_benchmark(&platform, &smoke_config(), true);
    assert!(report.operations > 0);
    assert_eq!(report.criteria.conservation_violations, 0);
    assert_eq!(
        report.criteria.atomicity_violations, 0,
        "exactly-once processing leaves no partial workflows: {:?}",
        report.criteria
    );
}

#[test]
fn benchmark_runs_on_customized_platform_and_satisfies_all_criteria() {
    // The all-criteria cell is customized+snapshot_isolation: since the
    // dashboard projection lives in the unified backend, the consistent-
    // querying guarantee is the snapshot backend's (under eventual_kv the
    // same binding can serve torn dashboards — by design).
    let platform = CustomizedPlatform::new(CustomizedConfig {
        actor: ActorPlatformConfig {
            decline_rate: 0.05,
            backend: om_common::config::BackendKind::SnapshotIsolation,
            ..Default::default()
        },
    });
    let mut config = smoke_config();
    config.mix = WorkloadMix::anomaly_hunting();
    let report = run_benchmark(&platform, &config, true);
    assert!(report.operations > 0);
    assert!(
        report.criteria.all_satisfied(),
        "the customized stack must satisfy every criterion: {:?}",
        report.criteria
    );
}

#[test]
fn reports_are_deterministic_in_shape_and_serializable() {
    let platform = EventualPlatform::new(ActorPlatformConfig::default());
    let report = run_benchmark(&platform, &smoke_config(), true);
    let json = report.to_json();
    let back: om_driver::RunReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.platform, "orleans_eventual");
    assert_eq!(back.backend, "eventual_kv");
    assert!(!report.throughput_row().is_empty());
    assert!(!report.criteria_row().is_empty());
}

#[test]
fn recovery_cells_report_restart_from_durable_checkpoints() {
    use om_common::config::BackendKind;
    use om_marketplace::PlatformKind;

    for backend in BackendKind::ALL {
        let config = RunConfig {
            backend,
            recovery_drill: true,
            ..smoke_config()
        };
        let report = om_driver::run_matrix_cell(PlatformKind::Dataflow, &config);
        assert!(report.operations > 0, "{backend:?}");
        assert_eq!(report.backend, backend.label(), "{backend:?}");
        let recovery = report
            .recovery
            .as_ref()
            .expect("the dataflow cell runs the recovery drill");
        assert_eq!(recovery.store, backend.label(), "{backend:?}");
        assert!(
            recovery.recovered_epoch > 0,
            "{backend:?}: the drill restarts from a committed epoch"
        );
        assert!(
            recovery.final_epoch >= recovery.recovered_epoch,
            "{backend:?}: recovery never loses a committed epoch"
        );
        assert!(!report.recovery_row().is_empty());
        // The drilled report still serializes round-trip.
        let back: om_driver::RunReport = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(back.recovery, report.recovery);
    }

    // Platforms without a crash path ignore the drill.
    let config = RunConfig {
        recovery_drill: true,
        ..smoke_config()
    };
    let report = om_driver::run_matrix_cell(PlatformKind::Eventual, &config);
    assert!(report.recovery.is_none());
    assert!(report.recovery_row().contains("no recovery drill"));
}

#[test]
fn backend_is_selectable_from_run_config_and_labeled_in_reports() {
    use om_common::config::BackendKind;
    use om_marketplace::PlatformKind;

    // Same platform, both backends — selected purely through RunConfig.
    for backend in BackendKind::ALL {
        let config = RunConfig {
            backend,
            ..smoke_config()
        };
        let report = om_driver::run_matrix_cell(PlatformKind::Transactional, &config);
        assert!(report.operations > 0, "{backend:?}");
        assert_eq!(report.backend, backend.label(), "{backend:?}");
        assert_eq!(
            report.cell_label(),
            format!(
                "orleans_transactions+{}+{}",
                backend.label(),
                if backend.is_durable() { "disk" } else { "memory" }
            )
        );
        assert_eq!(report.criteria.atomicity_violations, 0, "{backend:?}");
        assert!(
            report.counters.get("storage.saves").copied().unwrap_or(0) > 0,
            "grain snapshots must flow through the backend ({backend:?}): {:?}",
            report.counters
        );
    }
}
