//! Driver-level crash-consistency torture: the full marketplace
//! dataflow stack — persistent ingress topic, checkpointing runtime,
//! durable state backend — runs a real checkout workload over one
//! recording [`FaultVfs`], then power loss is simulated at recorded
//! write boundaries ([`CrashImage`]). Each image is rebuilt into a
//! fresh platform from the directory alone, quiesced (replaying any
//! in-flight ingress records), and handed to the driver's own auditor:
//!
//! * **conservation** — every stock row still sums to the initial
//!   quantity (`available + reserved + sold`), no units created or
//!   destroyed by the crash;
//! * **atomicity** — no half-applied checkout: every recovered order
//!   has exactly one payment and its packages, no duplicate charges
//!   from replay, no reservation leaks;
//! * **durability floor** — every checkout acked before the boundary
//!   (its ingress records fsynced under `sync_appends`) is present
//!   after recovery;
//! * **liveness** — the recovered platform still serves a checkout.
//!
//! The default run strides the boundary space (the per-crate torture
//! suites already sweep every boundary of the raw stores);
//! `OM_TORTURE_FULL=1` sweeps every boundary with more seeds, and
//! `OM_TORTURE_SEED=<n>` replays a failure. Assertions carry their
//! `seed/boundary` coordinates.

use om_common::config::{GroupCommitPolicy, SnapshotMode};
use om_common::entity::{Customer, PaymentMethod, Product, Seller};
use om_common::ids::{CustomerId, ProductId, SellerId};
use om_common::Money;
use om_dataflow::BackendCheckpointStore;
use om_driver::audit::{audit, RuntimeObservations};
use om_log::PersistentTopicOptions;
use om_marketplace::api::{CheckoutItem, CheckoutOutcome, CheckoutRequest, MarketplacePlatform};
use om_marketplace::bindings::dataflow::{
    persistent_ingress_with_vfs, DataflowPlatform, DataflowPlatformConfig,
};
use om_storage::vfs::{CrashImage, FaultVfs, Vfs};
use om_storage::{FileBackend, FileBackendOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const INITIAL_STOCK: u32 = 1_000;
const CHECKOUTS: u64 = 10;

fn full_sweep() -> bool {
    std::env::var_os("OM_TORTURE_FULL").is_some()
}

fn torture_seed() -> u64 {
    std::env::var("OM_TORTURE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD21_7E7)
}

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "om-driver-torture-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct DirGuard(PathBuf);
impl Drop for DirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn backend_options() -> FileBackendOptions {
    FileBackendOptions {
        shards: 2,
        snapshot_every: 4,
        segment_bytes: 1024,
        sync_commits: true,
        group_commit: GroupCommitPolicy::Off,
        snapshot_mode: SnapshotMode::Incremental,
        compact_max_deltas: 2,
        compact_ratio_pct: 100,
        recovery_threads: 1,
    }
}

fn ingress_options() -> PersistentTopicOptions {
    PersistentTopicOptions {
        segment_bytes: 1024,
        group_commit: GroupCommitPolicy::Off,
        // A checkout ack must imply its ingress records survive power
        // loss — that is the durability floor the sweep asserts.
        sync_appends: true,
    }
}

/// Builds the dataflow platform over an explicit [`Vfs`] — the
/// recording fault vfs during the first life, the real vfs when
/// rebuilding from a crash image.
fn build_platform(dir: &Path, vfs: Arc<dyn Vfs>) -> DataflowPlatform {
    let backend = Arc::new(
        FileBackend::open_with_vfs(dir.join("state"), backend_options(), vfs.clone())
            .expect("state backend opens"),
    );
    DataflowPlatform::new(DataflowPlatformConfig {
        partitions: 2,
        max_batch: 4,
        workers: 1,
        decline_rate: 0.0,
        checkpoint_store: Some(Arc::new(BackendCheckpointStore::new(backend))),
        ingress: Some(
            persistent_ingress_with_vfs(dir.join("ingress"), 2, ingress_options(), vfs)
                .expect("ingress topic opens"),
        ),
    })
}

fn ingest(platform: &dyn MarketplacePlatform) {
    platform
        .ingest_seller(Seller::new(SellerId(1), "acme".into(), "odense".into()))
        .unwrap();
    for c in 1..=4u64 {
        platform
            .ingest_customer(Customer::new(CustomerId(c), format!("c{c}"), "addr".into()))
            .unwrap();
    }
    platform
        .ingest_product(
            Product {
                id: ProductId(1),
                seller: SellerId(1),
                name: "widget".into(),
                category: "cat".into(),
                description: String::new(),
                price: Money::from_cents(500),
                freight_value: Money::ZERO,
                version: 0,
                active: true,
            },
            INITIAL_STOCK,
        )
        .unwrap();
    platform.quiesce();
}

fn checkout(platform: &dyn MarketplacePlatform, customer: u64) -> bool {
    platform
        .add_to_cart(
            CustomerId(customer),
            CheckoutItem {
                seller: SellerId(1),
                product: ProductId(1),
                quantity: 2,
            },
        )
        .unwrap();
    let outcome = platform
        .checkout(CheckoutRequest {
            customer: CustomerId(customer),
            items: vec![],
            method: PaymentMethod::CreditCard,
        })
        .unwrap();
    matches!(outcome, CheckoutOutcome::Placed { .. })
}

#[test]
fn power_loss_during_checkouts_keeps_the_audit_clean_at_every_boundary() {
    let seeds: Vec<u64> = {
        let n = if full_sweep() { 3 } else { 1 };
        (0..n).map(|i| torture_seed().wrapping_add(i)).collect()
    };
    let root = scratch("dataflow");
    let _g = DirGuard(root.clone());
    let vfs = FaultVfs::new(torture_seed()).recording();
    let shared: Arc<dyn Vfs> = Arc::new(vfs.clone());

    // First life: ingest the catalog, run acked checkouts, record each
    // ack's position in the vfs op log.
    let mut acks: Vec<(u64, usize)> = Vec::new();
    {
        let platform = build_platform(&root, shared.clone());
        ingest(&platform);
        for k in 1..=CHECKOUTS {
            assert!(checkout(&platform, (k % 4) + 1), "checkout {k} placed");
            acks.push((k, vfs.log_len()));
        }
        platform.quiesce();
    }
    let log = vfs.take_log();

    // Boundary sweep: every boundary under OM_TORTURE_FULL, a stride
    // otherwise (the storage/log torture suites already cover every
    // boundary of the raw stores — this test buys end-to-end coverage,
    // not byte-level exhaustiveness, in the default gate).
    let stride = if full_sweep() { 1 } else { log.len().div_ceil(24).max(1) };
    let boundaries: Vec<usize> = (0..=log.len()).step_by(stride).chain([log.len()]).collect();
    eprintln!(
        "torture[driver]: {} ops, {} boundaries x {} seeds (base seed {:#x}; \
         OM_TORTURE_SEED replays, OM_TORTURE_FULL=1 sweeps all)",
        log.len(),
        boundaries.len(),
        seeds.len(),
        torture_seed()
    );

    for &boundary in &boundaries {
        for &seed in &seeds {
            let ctx = format!("seed={seed:#x} boundary={boundary}/{}", log.len());
            let out = scratch("img");
            let _og = DirGuard(out.clone());
            CrashImage::materialize(&log, boundary, seed, &root, &out)
                .unwrap_or_else(|e| panic!("{ctx}: materialize failed: {e}"));
            std::fs::create_dir_all(out.join("state")).unwrap();
            std::fs::create_dir_all(out.join("ingress")).unwrap();

            // Second life: rebuild from the image alone, drain any
            // replayed in-flight ingress records, audit.
            let reborn = build_platform(&out, om_storage::real_vfs());
            reborn.quiesce();
            let snap = reborn
                .snapshot()
                .unwrap_or_else(|e| panic!("{ctx}: recovered platform must snapshot: {e}"));
            let report = audit(
                &snap,
                &reborn.counters(),
                &RuntimeObservations::default(),
                INITIAL_STOCK,
            );
            assert_eq!(
                report.conservation_violations, 0,
                "{ctx}: units created or destroyed by the crash"
            );
            assert_eq!(
                report.atomicity_violations, 0,
                "{ctx}: half-applied checkout survived recovery"
            );
            assert_eq!(report.ordering_violations, 0, "{ctx}: payment/shipment order broken");

            let orders = snap.orders.len() as u64;
            assert!(orders <= CHECKOUTS, "{ctx}: recovery invented orders");
            let floor = acks
                .iter()
                .filter(|(_, at)| *at <= boundary)
                .map(|(k, _)| *k)
                .max()
                .unwrap_or(0);
            assert!(
                orders >= floor,
                "{ctx}: acked checkout lost — recovered {orders} orders < floor {floor}"
            );
            assert_eq!(
                snap.payments.len() as u64,
                orders,
                "{ctx}: exactly one payment per recovered order"
            );

            // The recovered platform keeps serving, provided enough of
            // the catalog survived the crash to sell anything at all (a
            // boundary mid-ingest can legitimately leave the product
            // without its stock row, or no customers yet).
            let sellable = !snap.sellers.is_empty()
                && !snap.products.is_empty()
                && snap.stock.iter().any(|s| s.item.qty_available >= 2);
            if sellable && !snap.customers.is_empty() {
                let customer = snap.customers[0].id.0;
                assert!(checkout(&reborn, customer), "{ctx}: post-recovery checkout placed");
                reborn.quiesce();
                assert_eq!(
                    reborn.snapshot().unwrap().orders.len() as u64,
                    orders + 1,
                    "{ctx}: post-recovery checkout landed exactly once"
                );
            }
        }
    }
}
