//! Deterministic data generation for the benchmark.

use om_common::config::ScaleConfig;
use om_common::entity::{Customer, Product, Seller};
use om_common::ids::{CustomerId, ProductId, SellerId};
use om_common::rng::SplitMix64;
use om_common::{Money, OmResult};
use om_marketplace::api::MarketplacePlatform;

const CATEGORIES: [&str; 8] = [
    "electronics",
    "books",
    "fashion",
    "home",
    "sports",
    "toys",
    "garden",
    "grocery",
];

/// Generates and ingests the initial marketplace population.
pub struct DataGenerator {
    scale: ScaleConfig,
    rng: SplitMix64,
}

impl DataGenerator {
    pub fn new(scale: ScaleConfig, seed: u64) -> Self {
        Self {
            scale,
            rng: SplitMix64::new(seed ^ 0xDA7A),
        }
    }

    /// Product ids are dense: seller `s` owns products
    /// `[s * products_per_seller, (s+1) * products_per_seller)`.
    pub fn product_ids_of_seller(&self, seller: SellerId) -> impl Iterator<Item = ProductId> {
        let per = self.scale.products_per_seller;
        (seller.0 * per..(seller.0 + 1) * per).map(ProductId)
    }

    /// Owner of a product id (inverse of the dense layout).
    pub fn seller_of_product(&self, product: ProductId) -> SellerId {
        SellerId(product.0 / self.scale.products_per_seller)
    }

    pub fn sellers(&self) -> impl Iterator<Item = SellerId> {
        (0..self.scale.sellers).map(SellerId)
    }

    pub fn customers(&self) -> impl Iterator<Item = CustomerId> {
        (0..self.scale.customers).map(CustomerId)
    }

    fn make_product(&mut self, id: ProductId, seller: SellerId) -> Product {
        let price = Money::from_cents(self.rng.range_inclusive(100, 100_000) as i64);
        let freight = Money::from_cents(self.rng.range_inclusive(0, 2_000) as i64);
        let category = *self.rng.pick(&CATEGORIES);
        Product {
            id,
            seller,
            name: format!("{category}-{}", id.0),
            category: category.to_string(),
            description: format!("generated product {}", id.0),
            price,
            freight_value: freight,
            version: 0,
            active: true,
        }
    }

    /// Generates and ingests everything; returns (sellers, customers,
    /// products) counts.
    pub fn ingest_all(
        &mut self,
        platform: &dyn MarketplacePlatform,
    ) -> OmResult<(u64, u64, u64)> {
        for s in self.sellers() {
            platform.ingest_seller(Seller::new(
                s,
                format!("seller-{}", s.0),
                format!("city-{}", s.0 % 50),
            ))?;
        }
        for c in self.customers() {
            platform.ingest_customer(Customer::new(
                c,
                format!("customer-{}", c.0),
                format!("street {} no {}", c.0 % 1000, c.0 % 100),
            ))?;
        }
        let mut products = 0;
        for s in self.sellers() {
            for id in self.product_ids_of_seller(s).collect::<Vec<_>>() {
                let p = self.make_product(id, s);
                platform.ingest_product(p, self.scale.initial_stock)?;
                products += 1;
            }
        }
        platform.quiesce();
        Ok((self.scale.sellers, self.scale.customers, products))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_product_layout_roundtrips() {
        let scale = ScaleConfig {
            sellers: 4,
            products_per_seller: 10,
            ..ScaleConfig::default()
        };
        let g = DataGenerator::new(scale, 1);
        for s in g.sellers() {
            for p in g.product_ids_of_seller(s) {
                assert_eq!(g.seller_of_product(p), s);
            }
        }
        let all: Vec<ProductId> = g.sellers().flat_map(|s| g.product_ids_of_seller(s)).collect();
        assert_eq!(all.len(), 40);
        let distinct: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(distinct.len(), 40, "ids must be unique");
    }

    #[test]
    fn generation_is_deterministic() {
        let scale = ScaleConfig::tiny();
        let mut a = DataGenerator::new(scale, 7);
        let mut b = DataGenerator::new(scale, 7);
        let pa = a.make_product(ProductId(3), SellerId(0));
        let pb = b.make_product(ProductId(3), SellerId(0));
        assert_eq!(pa, pb);
        let mut c = DataGenerator::new(scale, 8);
        let pc = c.make_product(ProductId(3), SellerId(0));
        assert_ne!(pa.price, pc.price);
    }
}
