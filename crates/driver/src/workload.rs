//! Workload state and per-worker operation generation.

use om_common::config::{RunConfig, TransactionKind, WorkloadMix};
use om_common::entity::PaymentMethod;
use om_common::ids::{CustomerId, ProductId, SellerId};
use om_common::rng::{SplitMix64, Zipfian};
use om_common::Money;
use parking_lot::{Mutex, RwLock};
use std::collections::HashSet;

/// Shared workload state: the customer lease pool and the rank→product
/// table that keeps the Zipfian key distribution stable across deletions
/// (the driver challenge the talk calls out).
pub struct WorkloadState {
    /// Customers not currently inside a transaction ("safe concurrent
    /// accesses to data that form transaction inputs").
    customer_pool: Mutex<Vec<CustomerId>>,
    /// Popularity rank → product id. Deletion swaps in a replacement so
    /// rank popularity is preserved.
    ranks: RwLock<Vec<ProductId>>,
    /// Products already deleted (never chosen again for deletion).
    deleted: Mutex<HashSet<ProductId>>,
    /// Sellers, for seller-centric transactions.
    pub sellers: Vec<SellerId>,
    products_per_seller: u64,
    /// At most this many deletions are allowed (keeps the catalogue from
    /// draining during long runs).
    delete_budget: Mutex<u64>,
    zipf: Zipfian,
}

impl WorkloadState {
    pub fn new(config: &RunConfig) -> Self {
        let products: Vec<ProductId> =
            (0..config.scale.total_products()).map(ProductId).collect();
        let delete_budget = (products.len() as u64) / 5;
        Self {
            customer_pool: Mutex::new((0..config.scale.customers).map(CustomerId).collect()),
            ranks: RwLock::new(products),
            deleted: Mutex::new(HashSet::new()),
            sellers: (0..config.scale.sellers).map(SellerId).collect(),
            products_per_seller: config.scale.products_per_seller,
            delete_budget: Mutex::new(delete_budget),
            zipf: Zipfian::new(config.scale.total_products(), config.zipf_theta),
        }
    }

    /// Leases a customer for one transaction; must be returned with
    /// [`WorkloadState::return_customer`].
    pub fn lease_customer(&self, rng: &mut SplitMix64) -> Option<CustomerId> {
        let mut pool = self.customer_pool.lock();
        if pool.is_empty() {
            return None;
        }
        let idx = rng.next_bounded(pool.len() as u64) as usize;
        Some(pool.swap_remove(idx))
    }

    pub fn return_customer(&self, customer: CustomerId) {
        self.customer_pool.lock().push(customer);
    }

    /// Samples a product by Zipfian popularity over the *stable* rank
    /// space.
    pub fn sample_product(&self, rng: &mut SplitMix64) -> ProductId {
        let rank = self.zipf.sample(rng) as usize;
        self.ranks.read()[rank]
    }

    /// Product currently occupying popularity rank `rank` (clamped to the
    /// rank space). Scenarios address their hot set through ranks so a
    /// concurrent delete swaps a live replacement in without distorting
    /// the skew.
    pub fn product_at_rank(&self, rank: usize) -> ProductId {
        let ranks = self.ranks.read();
        ranks[rank.min(ranks.len() - 1)]
    }

    /// Size of the rank space (total products, stable across deletions).
    pub fn rank_space(&self) -> usize {
        self.ranks.read().len()
    }

    /// Owner of a product under the dense generator layout.
    pub fn seller_of(&self, product: ProductId) -> SellerId {
        SellerId(product.0 / self.products_per_seller)
    }

    /// Picks a product for deletion and swaps a replacement into its
    /// rank. Returns `None` when the deletion budget is exhausted.
    pub fn pick_for_delete(&self, rng: &mut SplitMix64) -> Option<ProductId> {
        {
            let mut budget = self.delete_budget.lock();
            if *budget == 0 {
                return None;
            }
            *budget -= 1;
        }
        let mut deleted = self.deleted.lock();
        let mut ranks = self.ranks.write();
        // Choose a victim rank whose product is still live.
        for _ in 0..64 {
            let rank = rng.next_bounded(ranks.len() as u64) as usize;
            let victim = ranks[rank];
            if deleted.contains(&victim) {
                continue;
            }
            // Replacement: any live product other than the victim. A
            // product may occupy several ranks (it may itself have served
            // as a replacement), so swap out *every* occurrence — a
            // deleted product must never be sampleable again, while the
            // rank space keeps its size and popularity profile.
            let candidate = (0..64)
                .map(|_| ranks[rng.next_bounded(ranks.len() as u64) as usize])
                .find(|c| *c != victim && !deleted.contains(c))?;
            deleted.insert(victim);
            for slot in ranks.iter_mut().filter(|slot| **slot == victim) {
                *slot = candidate;
            }
            return Some(victim);
        }
        None
    }

    /// Number of products deleted so far.
    pub fn deleted_count(&self) -> usize {
        self.deleted.lock().len()
    }

    /// True if `product` has been deleted by the workload.
    pub fn is_deleted(&self, product: ProductId) -> bool {
        self.deleted.lock().contains(&product)
    }
}

/// One generated operation.
#[derive(Debug, Clone)]
pub enum Op {
    Checkout {
        customer: CustomerId,
        items: Vec<(SellerId, ProductId, u32)>,
        method: PaymentMethod,
    },
    PriceUpdate {
        seller: SellerId,
        product: ProductId,
        price: Money,
    },
    ProductDelete {
        seller: SellerId,
        product: ProductId,
    },
    UpdateDelivery,
    SellerDashboard {
        seller: SellerId,
    },
    /// Cart-churn: fill a cart and walk away without checking out. The
    /// customer returns to the pool with the cart still loaded — their
    /// next checkout inherits the stale lines, exactly the abandonment
    /// debris real carts accumulate.
    AbandonCart {
        customer: CustomerId,
        items: Vec<(SellerId, ProductId, u32)>,
    },
}

impl Op {
    pub fn kind(&self) -> TransactionKind {
        match self {
            Op::Checkout { .. } => TransactionKind::Checkout,
            Op::PriceUpdate { .. } => TransactionKind::PriceUpdate,
            Op::ProductDelete { .. } => TransactionKind::ProductDelete,
            Op::UpdateDelivery => TransactionKind::UpdateDelivery,
            Op::SellerDashboard { .. } => TransactionKind::SellerDashboard,
            // Abandonment is the checkout path cut short; it reports under
            // the same kind so the 5-kind mix accounting stays closed.
            Op::AbandonCart { .. } => TransactionKind::Checkout,
        }
    }

    /// The customer this op holds a lease on, if any — dropped ops must
    /// release it back to the pool.
    pub fn leased_customer(&self) -> Option<CustomerId> {
        match self {
            Op::Checkout { customer, .. } | Op::AbandonCart { customer, .. } => Some(*customer),
            _ => None,
        }
    }
}

/// Samples a transaction kind from the mix weights.
pub fn sample_kind(mix: &WorkloadMix, rng: &mut SplitMix64) -> TransactionKind {
    let total = mix.total().max(1);
    let mut roll = rng.next_bounded(total as u64) as u32;
    for (kind, weight) in [
        (TransactionKind::Checkout, mix.checkout),
        (TransactionKind::PriceUpdate, mix.price_update),
        (TransactionKind::ProductDelete, mix.product_delete),
        (TransactionKind::UpdateDelivery, mix.update_delivery),
        (TransactionKind::SellerDashboard, mix.seller_dashboard),
    ] {
        if roll < weight {
            return kind;
        }
        roll -= weight;
    }
    TransactionKind::Checkout
}

/// Generates the next operation for a worker. Returns `None` when inputs
/// are temporarily unavailable (no leasable customer, delete budget
/// exhausted) — the caller should try another op.
pub fn next_op(state: &WorkloadState, config: &RunConfig, rng: &mut SplitMix64) -> Option<Op> {
    match sample_kind(&config.mix, rng) {
        TransactionKind::Checkout => {
            let customer = state.lease_customer(rng)?;
            let n = rng.range_inclusive(1, config.max_cart_items as u64) as usize;
            let mut items = Vec::with_capacity(n);
            let mut seen = HashSet::new();
            for _ in 0..n {
                let product = state.sample_product(rng);
                if !seen.insert(product) {
                    continue; // duplicate line; cart would merge anyway
                }
                let qty = rng.range_inclusive(1, 3) as u32;
                items.push((state.seller_of(product), product, qty));
            }
            let method = match rng.next_bounded(4) {
                0 => PaymentMethod::CreditCard,
                1 => PaymentMethod::DebitCard,
                2 => PaymentMethod::Boleto,
                _ => PaymentMethod::Voucher,
            };
            Some(Op::Checkout {
                customer,
                items,
                method,
            })
        }
        TransactionKind::PriceUpdate => {
            let product = state.sample_product(rng);
            let price = Money::from_cents(rng.range_inclusive(100, 100_000) as i64);
            Some(Op::PriceUpdate {
                seller: state.seller_of(product),
                product,
                price,
            })
        }
        TransactionKind::ProductDelete => {
            let product = state.pick_for_delete(rng)?;
            Some(Op::ProductDelete {
                seller: state.seller_of(product),
                product,
            })
        }
        TransactionKind::UpdateDelivery => Some(Op::UpdateDelivery),
        TransactionKind::SellerDashboard => {
            let seller = *rng.pick(&state.sellers);
            Some(Op::SellerDashboard { seller })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> RunConfig {
        RunConfig {
            scale: om_common::config::ScaleConfig {
                sellers: 4,
                products_per_seller: 25,
                customers: 10,
                initial_stock: 100,
            },
            ..RunConfig::smoke()
        }
    }

    #[test]
    fn customer_leasing_is_exclusive() {
        let state = WorkloadState::new(&config());
        let mut rng = SplitMix64::new(1);
        let mut leased = Vec::new();
        for _ in 0..10 {
            leased.push(state.lease_customer(&mut rng).unwrap());
        }
        assert!(state.lease_customer(&mut rng).is_none(), "pool exhausted");
        let distinct: HashSet<_> = leased.iter().collect();
        assert_eq!(distinct.len(), 10, "no double lease");
        for c in leased {
            state.return_customer(c);
        }
        assert!(state.lease_customer(&mut rng).is_some());
    }

    #[test]
    fn deletion_preserves_rank_space_size() {
        let state = WorkloadState::new(&config());
        let mut rng = SplitMix64::new(2);
        let before = state.ranks.read().len();
        let mut deleted = Vec::new();
        for _ in 0..10 {
            if let Some(p) = state.pick_for_delete(&mut rng) {
                deleted.push(p);
            }
        }
        assert!(!deleted.is_empty());
        assert_eq!(state.ranks.read().len(), before, "rank space never shrinks");
        // Deleted products no longer appear in the rank table.
        let ranks = state.ranks.read();
        for p in &deleted {
            assert!(!ranks.contains(p), "{p} still sampleable after delete");
            assert!(state.is_deleted(*p));
        }
    }

    #[test]
    fn deletion_budget_is_bounded() {
        let state = WorkloadState::new(&config());
        let mut rng = SplitMix64::new(3);
        let mut count = 0;
        while state.pick_for_delete(&mut rng).is_some() {
            count += 1;
            assert!(count <= 100, "budget must stop deletions");
        }
        assert_eq!(count as usize, state.deleted_count());
        assert!(count <= 20, "budget is 20% of 100 products");
    }

    #[test]
    fn kind_sampling_respects_weights() {
        let mix = WorkloadMix {
            checkout: 50,
            price_update: 50,
            product_delete: 0,
            update_delivery: 0,
            seller_dashboard: 0,
        };
        let mut rng = SplitMix64::new(4);
        let mut checkout = 0;
        const N: usize = 10_000;
        for _ in 0..N {
            match sample_kind(&mix, &mut rng) {
                TransactionKind::Checkout => checkout += 1,
                TransactionKind::PriceUpdate => {}
                other => panic!("zero-weight kind sampled: {other:?}"),
            }
        }
        assert!(
            (4000..6000).contains(&checkout),
            "50/50 split expected, checkout={checkout}"
        );
    }

    #[test]
    fn checkout_ops_have_valid_items() {
        let cfg = config();
        let state = WorkloadState::new(&cfg);
        let mut rng = SplitMix64::new(5);
        let mut found_checkout = false;
        for _ in 0..100 {
            if let Some(Op::Checkout { customer, items, .. }) = next_op(&state, &cfg, &mut rng) {
                found_checkout = true;
                assert!(!items.is_empty());
                assert!(items.len() <= cfg.max_cart_items as usize);
                let distinct: HashSet<_> = items.iter().map(|(_, p, _)| p).collect();
                assert_eq!(distinct.len(), items.len(), "no duplicate lines");
                for (s, p, q) in &items {
                    assert_eq!(*s, state.seller_of(*p));
                    assert!((1..=3).contains(q));
                }
                state.return_customer(customer);
            }
        }
        assert!(found_checkout);
    }

    #[test]
    fn zipf_sampling_hits_hot_products() {
        let cfg = RunConfig {
            zipf_theta: 0.99,
            ..config()
        };
        let state = WorkloadState::new(&cfg);
        let mut rng = SplitMix64::new(6);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..10_000 {
            *counts.entry(state.sample_product(&mut rng)).or_insert(0u32) += 1;
        }
        let max = counts.values().max().unwrap();
        assert!(*max > 300, "hot product should dominate, max={max}");
    }
}
