//! The criteria auditor: turns the paper's data-management criteria
//! (§II) into measured violation counts over a post-run snapshot plus
//! counters gathered during the run.

use om_marketplace::api::MarketSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Verdict for one criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CriterionVerdict {
    /// No violations observed.
    Satisfied,
    /// Violations observed (count attached in the report).
    Violated,
}

impl CriterionVerdict {
    fn from_count(count: u64) -> Self {
        if count == 0 {
            CriterionVerdict::Satisfied
        } else {
            CriterionVerdict::Violated
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            CriterionVerdict::Satisfied => "yes",
            CriterionVerdict::Violated => "NO",
        }
    }
}

/// The measured criteria report (experiment E4's row for one platform).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CriteriaReport {
    /// Checkout atomicity: orders whose downstream effects are partial
    /// (missing payment, missing packages for approved payment, stuck
    /// stock-confirmation assemblies, reservation leaks).
    pub atomicity_violations: u64,
    pub atomicity: CriterionVerdict,

    /// Stock↔product integrity: stock items still active/selling for
    /// deleted products after quiescence.
    pub integrity_violations: u64,
    pub integrity: CriterionVerdict,

    /// Causal replication: stale replica reads observed at cart adds plus
    /// causal inversions at the replica applier.
    pub replication_violations: u64,
    pub replication: CriterionVerdict,

    /// Consistent dashboard: dashboards whose aggregate disagreed with
    /// the tuples it was allegedly computed from.
    pub torn_dashboards: u64,
    pub dashboard: CriterionVerdict,

    /// Event ordering: packages shipped at-or-before their order's
    /// payment time (payment must causally precede shipment).
    pub ordering_violations: u64,
    pub ordering: CriterionVerdict,

    /// Stock conservation failures (units created or destroyed) — a
    /// sanity invariant, not a paper criterion; must be zero everywhere.
    pub conservation_violations: u64,
}

impl CriteriaReport {
    /// True if every criterion is satisfied (the paper's Customized stack
    /// should be the only platform achieving this under stress).
    pub fn all_satisfied(&self) -> bool {
        [
            self.atomicity,
            self.integrity,
            self.replication,
            self.dashboard,
            self.ordering,
        ]
        .iter()
        .all(|v| *v == CriterionVerdict::Satisfied)
    }
}

/// Inputs gathered by the runner during the measured phase.
#[derive(Debug, Clone, Default)]
pub struct RuntimeObservations {
    /// Dashboards observed torn at query time.
    pub torn_dashboards: u64,
}

/// Audits a quiesced snapshot + runtime observations into a report.
///
/// `initial_stock` is the per-product starting quantity (conservation
/// check); `counters` are the platform's own diagnostic counters.
pub fn audit(
    snapshot: &MarketSnapshot,
    counters: &BTreeMap<String, u64>,
    observations: &RuntimeObservations,
    initial_stock: u32,
) -> CriteriaReport {
    // --- atomicity -------------------------------------------------------
    let mut atomicity_violations = snapshot.stuck_assemblies;
    let payments_by_order: BTreeMap<_, _> =
        snapshot.payments.iter().map(|p| (p.order, p)).collect();
    // Double charges: more payment records than distinct orders paid. The
    // map above collapses duplicates silently, so count them explicitly —
    // a checkout replayed through recovery must never charge twice.
    let duplicate_payments = snapshot.payments.len() as u64 - payments_by_order.len() as u64;
    atomicity_violations += duplicate_payments;
    let mut packages_by_order: BTreeMap<om_common::ids::OrderId, usize> = BTreeMap::new();
    for pkg in &snapshot.shipments {
        *packages_by_order.entry(pkg.order).or_insert(0) += 1;
    }
    for order in &snapshot.orders {
        match payments_by_order.get(&order.id) {
            None => {
                // An order that never saw a payment decision and is not
                // freshly invoiced mid-flight (we audit after quiesce, so
                // any Invoiced order is a stranded workflow).
                atomicity_violations += 1;
            }
            Some(payment) => {
                if payment.approved {
                    let have = packages_by_order.get(&order.id).copied().unwrap_or(0);
                    if have < order.items.len() {
                        // Paid but not (fully) shipped.
                        atomicity_violations += 1;
                    }
                }
            }
        }
    }
    // Reservation leaks: after quiescence nothing should stay reserved.
    let reserved_leaks: u64 = snapshot
        .stock
        .iter()
        .map(|s| s.item.qty_reserved as u64)
        .sum();
    atomicity_violations += reserved_leaks;

    // --- integrity --------------------------------------------------------
    let mut integrity_violations = 0;
    let inactive_products: std::collections::HashSet<_> = snapshot
        .products
        .iter()
        .filter(|p| !p.active)
        .map(|p| p.id)
        .collect();
    for stock in &snapshot.stock {
        if inactive_products.contains(&stock.item.key.product) && stock.item.active {
            integrity_violations += 1;
        }
    }

    // --- replication --------------------------------------------------------
    // Stale reads actually *served* to a cart are violations. Repaired
    // session inversions ("replica_session_inversions_repaired" on the
    // customized binding) are not: the read fell back to the
    // authoritative copy, so the customer saw fresh data — that counter
    // records the cost of the weaker discipline, not an anomaly.
    let replication_violations = counters.get("stale_price_reads").copied().unwrap_or(0);

    // --- ordering ----------------------------------------------------------
    let mut ordering_violations = 0;
    for pkg in &snapshot.shipments {
        if let Some(payment) = payments_by_order.get(&pkg.order) {
            if pkg.shipped_at <= payment.processed_at.raw() {
                ordering_violations += 1;
            }
        } else {
            // Shipment without a payment at all: also an ordering breach.
            ordering_violations += 1;
        }
    }

    // --- conservation --------------------------------------------------------
    let mut conservation_violations = 0;
    for stock in &snapshot.stock {
        let total =
            stock.item.qty_available as u64 + stock.item.qty_reserved as u64 + stock.qty_sold;
        if total != initial_stock as u64 {
            conservation_violations += 1;
        }
    }

    CriteriaReport {
        atomicity_violations,
        atomicity: CriterionVerdict::from_count(atomicity_violations),
        integrity_violations,
        integrity: CriterionVerdict::from_count(integrity_violations),
        replication_violations,
        replication: CriterionVerdict::from_count(replication_violations),
        torn_dashboards: observations.torn_dashboards,
        dashboard: CriterionVerdict::from_count(observations.torn_dashboards),
        ordering_violations,
        ordering: CriterionVerdict::from_count(ordering_violations),
        conservation_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_common::entity::*;
    use om_common::ids::*;
    use om_common::time::EventTime;
    use om_common::Money;
    use om_marketplace::api::{PackageSnapshot, StockSnapshot};

    fn order(id: u64, status: OrderStatus, items: usize) -> Order {
        Order {
            id: OrderId(id),
            customer: CustomerId(1),
            status,
            invoice: String::new(),
            items: (0..items)
                .map(|i| OrderItem {
                    order: OrderId(id),
                    seller: SellerId(1),
                    product: ProductId(i as u64),
                    quantity: 1,
                    unit_price: Money::from_cents(100),
                    freight_value: Money::ZERO,
                    total_amount: Money::from_cents(100),
                })
                .collect(),
            total_amount: Money::from_cents(100 * items as i64),
            total_freight: Money::ZERO,
            placed_at: EventTime(1),
            updated_at: EventTime(1),
        }
    }

    fn payment(order: u64, approved: bool, at: u64) -> Payment {
        Payment {
            id: PaymentId(order),
            order: OrderId(order),
            customer: CustomerId(1),
            method: PaymentMethod::CreditCard,
            amount: Money::from_cents(100),
            installments: 1,
            approved,
            processed_at: EventTime(at),
        }
    }

    fn pkg(order: u64, shipped_at: u64) -> PackageSnapshot {
        PackageSnapshot {
            order: OrderId(order),
            seller: SellerId(1),
            product: ProductId(0),
            delivered: false,
            shipped_at,
        }
    }

    fn clean_snapshot() -> MarketSnapshot {
        MarketSnapshot {
            orders: vec![order(1, OrderStatus::InTransit, 1)],
            payments: vec![payment(1, true, 5)],
            shipments: vec![pkg(1, 6)],
            ..Default::default()
        }
    }

    #[test]
    fn clean_run_satisfies_everything() {
        let report = audit(
            &clean_snapshot(),
            &BTreeMap::new(),
            &RuntimeObservations::default(),
            100,
        );
        assert!(report.all_satisfied(), "{report:?}");
        assert_eq!(report.atomicity_violations, 0);
    }

    #[test]
    fn order_without_payment_is_atomicity_violation() {
        let mut snap = clean_snapshot();
        snap.payments.clear();
        let report = audit(&snap, &BTreeMap::new(), &RuntimeObservations::default(), 100);
        assert_eq!(report.atomicity, CriterionVerdict::Violated);
        assert!(report.atomicity_violations >= 1);
    }

    #[test]
    fn duplicate_payment_for_one_order_is_double_charge() {
        let mut snap = clean_snapshot();
        // A second payment record against the same order (e.g. a checkout
        // replayed across a crash-recovery boundary without dedup).
        snap.payments.push(payment(1, true, 9));
        let report = audit(&snap, &BTreeMap::new(), &RuntimeObservations::default(), 100);
        assert_eq!(report.atomicity, CriterionVerdict::Violated);
        assert_eq!(report.atomicity_violations, 1, "{report:?}");
    }

    #[test]
    fn paid_order_without_packages_is_violation() {
        let mut snap = clean_snapshot();
        snap.shipments.clear();
        let report = audit(&snap, &BTreeMap::new(), &RuntimeObservations::default(), 100);
        assert_eq!(report.atomicity, CriterionVerdict::Violated);
        // The orphan shipment check shouldn't trigger (no shipments).
        assert_eq!(report.ordering_violations, 0);
    }

    #[test]
    fn reservation_leak_is_violation() {
        let mut snap = clean_snapshot();
        let mut item = StockItem::new(StockKey::new(SellerId(1), ProductId(1)), 90);
        item.qty_reserved = 10;
        snap.stock.push(StockSnapshot { item, qty_sold: 0 });
        let report = audit(&snap, &BTreeMap::new(), &RuntimeObservations::default(), 100);
        assert_eq!(report.atomicity, CriterionVerdict::Violated);
        assert_eq!(report.conservation_violations, 0, "units conserved");
    }

    #[test]
    fn deleted_product_with_active_stock_is_integrity_violation() {
        let mut snap = clean_snapshot();
        snap.products.push(Product {
            id: ProductId(7),
            seller: SellerId(1),
            name: "x".into(),
            category: "c".into(),
            description: String::new(),
            price: Money::from_cents(1),
            freight_value: Money::ZERO,
            version: 2,
            active: false,
        });
        snap.stock.push(StockSnapshot {
            item: StockItem::new(StockKey::new(SellerId(1), ProductId(7)), 100),
            qty_sold: 0,
        });
        let report = audit(&snap, &BTreeMap::new(), &RuntimeObservations::default(), 100);
        assert_eq!(report.integrity, CriterionVerdict::Violated);
        assert_eq!(report.integrity_violations, 1);
    }

    #[test]
    fn shipment_not_after_payment_is_ordering_violation() {
        let mut snap = clean_snapshot();
        snap.shipments[0].shipped_at = 5; // == payment time
        let report = audit(&snap, &BTreeMap::new(), &RuntimeObservations::default(), 100);
        assert_eq!(report.ordering, CriterionVerdict::Violated);
    }

    #[test]
    fn counter_driven_criteria() {
        let mut counters = BTreeMap::new();
        counters.insert("stale_price_reads".to_string(), 3);
        let report = audit(
            &clean_snapshot(),
            &counters,
            &RuntimeObservations { torn_dashboards: 2 },
            100,
        );
        assert_eq!(report.replication_violations, 3);
        assert_eq!(report.replication, CriterionVerdict::Violated);
        assert_eq!(report.torn_dashboards, 2);
        assert_eq!(report.dashboard, CriterionVerdict::Violated);
        assert!(!report.all_satisfied());
    }

    #[test]
    fn conservation_check_detects_unit_loss() {
        let mut snap = clean_snapshot();
        snap.stock.push(StockSnapshot {
            item: StockItem::new(StockKey::new(SellerId(1), ProductId(1)), 80),
            qty_sold: 10, // 80 + 0 + 10 != 100
        });
        let report = audit(&snap, &BTreeMap::new(), &RuntimeObservations::default(), 100);
        assert_eq!(report.conservation_violations, 1);
    }
}
