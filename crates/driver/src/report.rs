//! Run reports: throughput, latency and criteria, renderable as text
//! tables (for EXPERIMENTS.md) or JSON (for tooling).

use crate::audit::CriteriaReport;
use crate::openloop::SloRow;
use om_common::config::{RunConfig, TransactionKind};
use om_common::stats::LatencySummary;
use om_marketplace::api::RecoveryOutcome;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Everything measured in one benchmark run of one platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    pub platform: String,
    /// Label of the storage backend the platform ran over
    /// (`"native"` for platforms without a pluggable backend).
    pub backend: String,
    /// What a process crash would do to the platform's state: `"disk"`
    /// (file-durable backend — survives), `"memory"` (backend-held but
    /// memory-only) or `"ephemeral"` (runtime-native state). Part of
    /// [`cell_label`](Self::cell_label) so a6/b2 rows distinguish
    /// durable-store flavours.
    pub durability: String,
    pub config: RunConfig,
    /// Completed operations in the measured window.
    pub operations: u64,
    /// Operations that returned an error (after platform-side retries).
    pub failed_operations: u64,
    pub window_secs: f64,
    pub throughput_per_sec: f64,
    /// Latency percentiles per transaction kind.
    pub latency: BTreeMap<String, LatencySummary>,
    /// Platform diagnostic counters.
    pub counters: BTreeMap<String, u64>,
    /// The criteria audit.
    pub criteria: CriteriaReport,
    /// Outcome of the post-run crash-recovery drill, when
    /// `RunConfig::recovery_drill` was set and the platform supports an
    /// injectable crash (the dataflow binding). Under
    /// `RunConfig::chaos_drill` this is the *mid-window* drill outcome.
    pub recovery: Option<RecoveryOutcome>,
    /// Open-loop SLO accounting (offered vs achieved rate, drop/late
    /// counts, latency from scheduled arrival), when
    /// `RunConfig::open_loop` was set.
    pub slo: Option<SloRow>,
}

impl RunReport {
    /// Latency summary of one transaction kind, if it ran.
    pub fn latency_of(&self, kind: TransactionKind) -> Option<&LatencySummary> {
        self.latency.get(kind.label())
    }

    /// `platform+backend+durability`, the matrix-cell id of this run —
    /// e.g. `statefun+file_durable+disk` vs `statefun+eventual_kv+memory`,
    /// so rows that differ only in durable-store flavour stay
    /// unambiguous in experiment output.
    pub fn cell_label(&self) -> String {
        format!("{}+{}+{}", self.platform, self.backend, self.durability)
    }

    /// One text row for the E1 throughput table.
    pub fn throughput_row(&self) -> String {
        format!(
            "{:<42} {:>10.0} ops/s  ({} ops in {:.2}s, {} failed)",
            self.cell_label(),
            self.throughput_per_sec,
            self.operations,
            self.window_secs,
            self.failed_operations
        )
    }

    /// Text table of latency percentiles (E3).
    pub fn latency_table(&self) -> String {
        let mut out = format!(
            "{:<18} {:>8} {:>9} {:>9} {:>9} {:>9}\n",
            "transaction", "count", "mean(us)", "p50(us)", "p90(us)", "p99(us)"
        );
        for (kind, summary) in &self.latency {
            out.push_str(&format!(
                "{:<18} {:>8} {:>9.0} {:>9} {:>9} {:>9}\n",
                kind, summary.count, summary.mean_us, summary.p50_us, summary.p90_us,
                summary.p99_us
            ));
        }
        out
    }

    /// One text row for the E4 criteria matrix.
    pub fn criteria_row(&self) -> String {
        let c = &self.criteria;
        format!(
            "{:<22} atomicity={}({}) integrity={}({}) replication={}({}) dashboard={}({}) ordering={}({})",
            self.platform,
            c.atomicity.symbol(),
            c.atomicity_violations,
            c.integrity.symbol(),
            c.integrity_violations,
            c.replication.symbol(),
            c.replication_violations,
            c.dashboard.symbol(),
            c.torn_dashboards,
            c.ordering.symbol(),
            c.ordering_violations,
        )
    }

    /// One text row for the A7 SLO table (open-loop runs only).
    pub fn slo_row(&self) -> String {
        match &self.slo {
            Some(s) => format!(
                "{:<42} offered={:>8.0}/s achieved={:>8.0}/s ({:>3.0}%) drop={} late={} p50={}us p99={}us p999={}us (n={})",
                self.cell_label(),
                s.offered_per_sec,
                s.achieved_per_sec,
                s.achieved_ratio() * 100.0,
                s.dropped,
                s.late,
                s.latency.p50_us,
                s.latency.p99_us,
                s.latency.p999_us,
                s.latency.count,
            ),
            None => format!("{:<42} (closed loop)", self.cell_label()),
        }
    }

    /// One text row for the recovery table (empty when no drill ran).
    pub fn recovery_row(&self) -> String {
        match &self.recovery {
            Some(r) => format!(
                "{:<42} store={} recovered_epoch={} final_epoch={} recovery={}us replayed={}",
                self.cell_label(),
                r.store,
                r.recovered_epoch,
                r.final_epoch,
                r.recovery_us,
                r.replayed_ingress,
            ),
            None => format!("{:<42} (no recovery drill)", self.cell_label()),
        }
    }

    /// Machine-readable JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{CriteriaReport, CriterionVerdict};

    fn report() -> RunReport {
        let verdict = CriterionVerdict::Satisfied;
        RunReport {
            platform: "test".into(),
            backend: "eventual_kv".into(),
            durability: "memory".into(),
            config: RunConfig::smoke(),
            operations: 100,
            failed_operations: 1,
            window_secs: 2.0,
            throughput_per_sec: 50.0,
            latency: BTreeMap::new(),
            counters: BTreeMap::new(),
            criteria: CriteriaReport {
                atomicity_violations: 0,
                atomicity: verdict,
                integrity_violations: 0,
                integrity: verdict,
                replication_violations: 0,
                replication: verdict,
                torn_dashboards: 0,
                dashboard: verdict,
                ordering_violations: 0,
                ordering: verdict,
                conservation_violations: 0,
            },
            recovery: None,
            slo: None,
        }
    }

    #[test]
    fn rows_render() {
        let r = report();
        assert!(r.throughput_row().contains("50"));
        assert!(r.throughput_row().contains("test+eventual_kv+memory"));
        assert!(r.criteria_row().contains("atomicity=yes"));
        assert!(r.latency_table().contains("p99"));
        assert_eq!(r.cell_label(), "test+eventual_kv+memory");
        assert!(r.slo_row().contains("(closed loop)"));
    }

    #[test]
    fn slo_row_renders_rates_and_percentiles() {
        let mut r = report();
        let mut hist = om_common::stats::Histogram::new();
        for v in [100u64, 200, 400, 9000] {
            hist.record(v);
        }
        r.slo = Some(SloRow {
            offered_per_sec: 1000.0,
            achieved_per_sec: 950.0,
            arrivals: 1000,
            completed: 950,
            failed: 0,
            dropped: 50,
            late: 3,
            latency: hist.summary(),
        });
        let row = r.slo_row();
        assert!(row.contains("offered="), "{row}");
        assert!(row.contains("95%"), "{row}");
        assert!(row.contains("drop=50"), "{row}");
        assert!(row.contains("p999=9000us"), "{row}");
        // And it survives the JSON roundtrip inside the report.
        let back: RunReport = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(back.slo.unwrap().dropped, 50);
    }

    #[test]
    fn json_roundtrip() {
        let r = report();
        let s = r.to_json();
        let back: RunReport = serde_json::from_str(&s).unwrap();
        assert_eq!(back.operations, 100);
        assert!(back.criteria.all_satisfied());
    }
}
