//! Open-loop load generation with SLO accounting.
//!
//! A **closed loop** (the default worker loop) only issues the next
//! request after the previous one completes, so when the system slows
//! down the offered load silently drops with it — queueing collapse is
//! invisible. An **open loop** fires requests on a pre-computed arrival
//! schedule *regardless of completions*: latency is measured from the
//! scheduled arrival instant, so time spent waiting in the in-flight
//! ledger (queueing delay) is part of the number, exactly as a customer
//! would experience it.
//!
//! The module splits into three deterministic pieces so the property
//! tests can pin behavior byte-for-byte:
//!
//! * [`ArrivalSchedule::generate`] — a pure function of
//!   `(OpenLoopConfig, seed)` producing monotone arrival offsets
//!   (Poisson/exponential inter-arrivals or a fixed cadence);
//! * [`SloAccumulator`] — the drop/late/latency ledger shared by the
//!   real threaded runner and the simulator, folded into an [`SloRow`];
//! * [`simulate`] — a discrete-event model (k servers, bounded
//!   in-flight ledger, deterministic service times) that turns a
//!   schedule into an `SloRow` with no wall clock involved at all.

use om_common::config::OpenLoopConfig;
use om_common::rng::SplitMix64;
use om_common::stats::{Histogram, LatencySummary};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// A deterministic arrival schedule: microsecond offsets from the window
/// start at which requests must be fired, strictly derived from the
/// config and seed (two generations with equal inputs are byte-identical).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrivalSchedule {
    /// Monotone non-decreasing arrival offsets, in microseconds.
    pub offsets_us: Vec<u64>,
}

impl ArrivalSchedule {
    /// Generates the schedule for `cfg` from `seed`.
    ///
    /// Poisson mode draws exponential inter-arrival gaps with mean
    /// `1/offered_rate` (the memoryless arrival process real traffic
    /// approximates); otherwise the cadence is a fixed `1/offered_rate`.
    pub fn generate(cfg: &OpenLoopConfig, seed: u64) -> Self {
        let rate = cfg.offered_rate.max(1e-9);
        let mean_gap_us = 1_000_000.0 / rate;
        let mut rng = SplitMix64::new(seed ^ 0x00BE_A7ED);
        let mut offsets_us = Vec::with_capacity(cfg.arrivals as usize);
        let mut t = 0.0f64;
        for _ in 0..cfg.arrivals {
            let gap = if cfg.poisson {
                // Inverse-CDF exponential; 1 - u in (0, 1] keeps ln finite.
                -(1.0 - rng.next_f64()).ln() * mean_gap_us
            } else {
                mean_gap_us
            };
            t += gap;
            offsets_us.push(t as u64);
        }
        Self { offsets_us }
    }

    /// Canonical byte encoding (little-endian u64s) — what the property
    /// tests compare for byte-identity across runs.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.offsets_us.len() * 8);
        for &v in &self.offsets_us {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Total scheduled span in seconds (0 for an empty schedule).
    pub fn span_secs(&self) -> f64 {
        self.offsets_us.last().copied().unwrap_or(0) as f64 / 1e6
    }
}

/// One SLO row of a [`crate::RunReport`]: offered vs achieved rate plus
/// the latency distribution measured **from scheduled arrival time**.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloRow {
    /// Configured arrival rate (requests/sec).
    pub offered_per_sec: f64,
    /// Completions per second over the measured window.
    pub achieved_per_sec: f64,
    /// Requests the schedule fired (dropped ones included).
    pub arrivals: u64,
    /// Requests that completed (business rejections count — they are
    /// valid outcomes the customer waited for).
    pub completed: u64,
    /// Requests that errored.
    pub failed: u64,
    /// Requests shed at the in-flight ledger (ledger full) or starved of
    /// inputs (no leasable customer) — never submitted.
    pub dropped: u64,
    /// Requests fired more than [`LATE_SLACK_US`] behind schedule — the
    /// generator itself fell behind (distinct from queueing inside the
    /// system, which the latency percentiles capture).
    pub late: u64,
    /// Latency from *scheduled arrival* to completion.
    pub latency: LatencySummary,
}

/// Dispatch lag beyond which an arrival counts as `late` (µs).
pub const LATE_SLACK_US: u64 = 1_000;

impl SloRow {
    /// Fraction of offered load the system actually absorbed, in [0, 1].
    pub fn achieved_ratio(&self) -> f64 {
        if self.offered_per_sec <= 0.0 {
            0.0
        } else {
            (self.achieved_per_sec / self.offered_per_sec).min(1.0)
        }
    }
}

/// The drop/late/latency ledger. Both the threaded open-loop runner and
/// the deterministic [`simulate`] fold their accounting through this one
/// type, so the SLO arithmetic (rates, ratios, percentile summary) cannot
/// diverge between the two.
#[derive(Debug, Default)]
pub struct SloAccumulator {
    pub arrivals: u64,
    pub completed: u64,
    pub failed: u64,
    pub dropped: u64,
    pub late: u64,
    pub latency: Histogram,
}

impl SloAccumulator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completion with latency measured from scheduled
    /// arrival.
    pub fn complete(&mut self, latency_us: u64) {
        self.completed += 1;
        self.latency.record(latency_us);
    }

    /// Merges a worker-local accumulator (threaded runner path).
    pub fn merge(&mut self, other: &SloAccumulator) {
        self.arrivals += other.arrivals;
        self.completed += other.completed;
        self.failed += other.failed;
        self.dropped += other.dropped;
        self.late += other.late;
        self.latency.merge(&other.latency);
    }

    /// Folds the ledger into a report row over `window_secs`.
    pub fn into_row(self, offered_per_sec: f64, window_secs: f64) -> SloRow {
        let achieved = if window_secs > 0.0 {
            self.completed as f64 / window_secs
        } else {
            0.0
        };
        SloRow {
            offered_per_sec,
            achieved_per_sec: achieved,
            arrivals: self.arrivals,
            completed: self.completed,
            failed: self.failed,
            dropped: self.dropped,
            late: self.late,
            latency: self.latency.summary(),
        }
    }
}

/// Deterministic discrete-event model of an open-loop run: `k` servers
/// (`cfg.workers`, 0 = 4), a bounded in-flight ledger of
/// `cfg.max_in_flight`, and exponential service times with mean
/// `mean_service_us` drawn from the same seeded PRNG family as the
/// schedule. No wall clock: identical inputs produce an identical
/// [`SloRow`], which is what the scheduler property tests pin.
///
/// The model is the textbook G/G/k picture of the real runner: a request
/// arriving while `max_in_flight` requests are in the system is dropped;
/// otherwise it waits for the earliest-free server and its latency is
/// `completion - scheduled arrival` (queueing included).
pub fn simulate(cfg: &OpenLoopConfig, seed: u64, mean_service_us: f64) -> SloRow {
    let schedule = ArrivalSchedule::generate(cfg, seed);
    let servers = if cfg.workers == 0 { 4 } else { cfg.workers };
    let mut svc_rng = SplitMix64::new(seed ^ 0x005E_71CE);
    let mut acc = SloAccumulator::new();
    // Completion times of in-system requests (min-heap via Reverse).
    let mut in_system: BinaryHeap<std::cmp::Reverse<u64>> = BinaryHeap::new();
    // Earliest instant each server is free.
    let mut free_at = vec![0u64; servers];
    let mut last_completion = 0u64;
    for &t in &schedule.offsets_us {
        acc.arrivals += 1;
        while let Some(&std::cmp::Reverse(c)) = in_system.peek() {
            if c <= t {
                in_system.pop();
            } else {
                break;
            }
        }
        if in_system.len() >= cfg.max_in_flight {
            acc.dropped += 1;
            continue;
        }
        let (slot, &free) = free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, &f)| f)
            .expect("at least one server");
        let start = t.max(free);
        let service = (-(1.0 - svc_rng.next_f64()).ln() * mean_service_us).max(1.0) as u64;
        let completion = start + service;
        free_at[slot] = completion;
        in_system.push(std::cmp::Reverse(completion));
        last_completion = last_completion.max(completion);
        acc.complete(completion - t);
    }
    let window_secs = (last_completion.max(schedule.offsets_us.last().copied().unwrap_or(0)))
        as f64
        / 1e6;
    acc.into_row(cfg.offered_rate, window_secs)
}

/// The measured saturation point of a sweep: the highest offered rate
/// whose row still achieved at least `threshold` (e.g. 0.95) of it.
/// `None` when even the lowest offered rate collapsed.
pub fn saturation_point(rows: &[SloRow], threshold: f64) -> Option<f64> {
    rows.iter()
        .filter(|r| r.achieved_ratio() >= threshold)
        .map(|r| r.offered_per_sec)
        .fold(None, |best, r| Some(best.map_or(r, |b: f64| b.max(r))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(rate: f64, n: u64) -> OpenLoopConfig {
        OpenLoopConfig::at_rate(rate, n)
    }

    #[test]
    fn schedule_is_monotone_and_deterministic() {
        let c = cfg(1000.0, 500);
        let a = ArrivalSchedule::generate(&c, 42);
        let b = ArrivalSchedule::generate(&c, 42);
        assert_eq!(a.to_bytes(), b.to_bytes(), "byte-identical for same seed");
        assert!(a.offsets_us.windows(2).all(|w| w[0] <= w[1]), "monotone");
        let other = ArrivalSchedule::generate(&c, 43);
        assert_ne!(a.offsets_us, other.offsets_us, "seed matters");
    }

    #[test]
    fn schedule_mean_rate_converges() {
        let c = cfg(10_000.0, 20_000);
        let s = ArrivalSchedule::generate(&c, 7);
        let achieved = s.offsets_us.len() as f64 / s.span_secs();
        let err = (achieved - 10_000.0).abs() / 10_000.0;
        assert!(err < 0.05, "mean rate {achieved:.0} vs offered 10000");
    }

    #[test]
    fn fixed_cadence_schedule_is_evenly_spaced() {
        let mut c = cfg(1000.0, 100);
        c.poisson = false;
        let s = ArrivalSchedule::generate(&c, 1);
        for (i, &t) in s.offsets_us.iter().enumerate() {
            let want = (i as u64 + 1) * 1000;
            assert!(t.abs_diff(want) <= 1, "offset {i} = {t}, want ~{want}");
        }
    }

    #[test]
    fn simulator_shows_queueing_collapse_past_capacity() {
        // 4 servers at 1ms mean service = ~4000/s capacity.
        let under = simulate(&cfg(1_000.0, 4_000), 9, 1_000.0);
        let over = simulate(&cfg(20_000.0, 4_000), 9, 1_000.0);
        assert!(under.achieved_ratio() > 0.95, "{under:?}");
        assert!(
            over.achieved_ratio() < 0.5,
            "overload must not absorb offered load: {over:?}"
        );
        assert!(
            over.latency.p99_us > under.latency.p99_us * 5,
            "p99 must diverge under overload: {} vs {}",
            over.latency.p99_us,
            under.latency.p99_us
        );
        assert!(over.dropped > 0, "ledger must shed under overload");
    }

    #[test]
    fn simulator_is_deterministic() {
        let a = simulate(&cfg(5_000.0, 2_000), 11, 500.0);
        let b = simulate(&cfg(5_000.0, 2_000), 11, 500.0);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn saturation_point_picks_last_sustained_rate() {
        let mk = |offered: f64, achieved: f64| SloRow {
            offered_per_sec: offered,
            achieved_per_sec: achieved,
            arrivals: 0,
            completed: 0,
            failed: 0,
            dropped: 0,
            late: 0,
            latency: Histogram::new().summary(),
        };
        let rows = vec![
            mk(1000.0, 990.0),
            mk(2000.0, 1980.0),
            mk(4000.0, 2100.0),
        ];
        assert_eq!(saturation_point(&rows, 0.95), Some(2000.0));
        assert_eq!(saturation_point(&rows[2..], 0.95), None);
    }
}
