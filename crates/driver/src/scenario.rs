//! Adversarial traffic scenarios.
//!
//! The plain workload mix is closed-loop and Zipfian over the *whole*
//! catalogue — realistic on average, but production marketplaces die on
//! concentrated moments: a flash sale funnels thousands of checkouts
//! into ONE product's stock row, a repricing job races carts mid-flight,
//! a dashboard crawl storms the read path while checkout traffic is at
//! peak, and abandoned carts leave debris behind. Each
//! [`ScenarioKind`] shapes the operation
//! stream accordingly: with probability `hot_fraction` an op targets the
//! hot set (the top `hot_products` popularity ranks, skewed by
//! `hot_theta`), otherwise the background [`next_op`] mix runs untouched.
//!
//! Scenario ops reuse the workload's customer lease pool and rank table,
//! so every safety property of the base generator (no shared carts, no
//! deleted product sampled) carries over.

use crate::workload::{next_op, Op, WorkloadState};
use om_common::config::{RunConfig, ScenarioConfig, ScenarioKind};
use om_common::entity::PaymentMethod;
use om_common::ids::SellerId;
use om_common::rng::{SplitMix64, Zipfian};
use om_common::Money;

/// Floor of the price-storm ladder, in cents. Strictly above the data
/// generator's initial price range (`100..=100_000`), so any observed
/// order price is attributable: either an initial price or a ladder
/// rung — anything else is a torn read. See [`ScenarioState::price_ladder`].
pub const STORM_PRICE_FLOOR_CENTS: i64 = 200_100;

/// Number of rungs on the price-storm ladder.
pub const STORM_PRICE_RUNGS: usize = 8;

/// The price-storm ladder: every price a storm update may write. Public
/// so tests can assert observed prices ∈ initial range ∪ ladder (anything
/// else is torn).
pub fn storm_price_ladder() -> Vec<Money> {
    (0..STORM_PRICE_RUNGS)
        .map(|i| Money::from_cents(STORM_PRICE_FLOOR_CENTS + 10_000 * i as i64))
        .collect()
}

/// Immutable per-run scenario state: the hot-set sampler and the
/// price-storm ladder. Shared read-only across workers.
pub struct ScenarioState {
    cfg: ScenarioConfig,
    hot_zipf: Zipfian,
    ladder: Vec<Money>,
}

impl ScenarioState {
    pub fn new(cfg: ScenarioConfig, state: &WorkloadState) -> Self {
        let hot = (cfg.hot_products as usize).clamp(1, state.rank_space());
        Self {
            cfg,
            hot_zipf: Zipfian::new(hot as u64, cfg.hot_theta),
            ladder: storm_price_ladder(),
        }
    }

    pub fn kind(&self) -> ScenarioKind {
        self.cfg.kind
    }

    pub fn config(&self) -> &ScenarioConfig {
        &self.cfg
    }

    /// The storm's price ladder. Tests assert every observed price is an
    /// initial price or one of these — a value outside both sets is torn.
    pub fn price_ladder(&self) -> &[Money] {
        &self.ladder
    }

    /// Samples a hot product: a Zipfian draw over the top ranks.
    fn hot_product(&self, state: &WorkloadState, rng: &mut SplitMix64) -> om_common::ids::ProductId {
        let rank = self.hot_zipf.sample(rng) as usize;
        state.product_at_rank(rank)
    }

    /// A single-line hot checkout (quantity 1: flash-sale stock drains
    /// one unit per success, so `successes <= initial_stock` is exact).
    fn hot_checkout(&self, state: &WorkloadState, rng: &mut SplitMix64) -> Option<Op> {
        let customer = state.lease_customer(rng)?;
        let product = self.hot_product(state, rng);
        let method = match rng.next_bounded(4) {
            0 => PaymentMethod::CreditCard,
            1 => PaymentMethod::DebitCard,
            2 => PaymentMethod::Boleto,
            _ => PaymentMethod::Voucher,
        };
        Some(Op::Checkout {
            customer,
            items: vec![(state.seller_of(product), product, 1)],
            method,
        })
    }

    /// Seller owning a hot product — the dashboard storm's scan target.
    fn hot_seller(&self, state: &WorkloadState, rng: &mut SplitMix64) -> SellerId {
        state.seller_of(self.hot_product(state, rng))
    }
}

/// Generates the next operation under `scenario`, falling back to the
/// plain mix for the `1 - hot_fraction` background share. Returns `None`
/// when inputs are temporarily unavailable (same contract as
/// [`next_op`]).
pub fn next_scenario_op(
    state: &WorkloadState,
    scenario: &ScenarioState,
    config: &RunConfig,
    rng: &mut SplitMix64,
) -> Option<Op> {
    if !rng.chance(scenario.cfg.hot_fraction) {
        return next_op(state, config, rng);
    }
    match scenario.cfg.kind {
        // Everybody wants the same thing, now.
        ScenarioKind::FlashSale => scenario.hot_checkout(state, rng),
        // Repricing batch races carts mid-checkout on the same rows.
        ScenarioKind::PriceStorm => {
            if rng.chance(0.5) {
                let product = scenario.hot_product(state, rng);
                let price = *rng.pick(&scenario.ladder);
                Some(Op::PriceUpdate {
                    seller: state.seller_of(product),
                    product,
                    price,
                })
            } else {
                scenario.hot_checkout(state, rng)
            }
        }
        // Read storm (seller scans) against write-heavy checkout.
        ScenarioKind::DashboardStorm => {
            if rng.chance(0.5) {
                Some(Op::SellerDashboard {
                    seller: scenario.hot_seller(state, rng),
                })
            } else {
                scenario.hot_checkout(state, rng)
            }
        }
        // Most carts never convert; the few that do inherit the debris.
        ScenarioKind::CartChurn => {
            if rng.chance(0.6) {
                let customer = state.lease_customer(rng)?;
                let n = rng.range_inclusive(1, config.max_cart_items.max(1) as u64) as usize;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let product = scenario.hot_product(state, rng);
                    let qty = rng.range_inclusive(1, 2) as u32;
                    items.push((state.seller_of(product), product, qty));
                }
                Some(Op::AbandonCart { customer, items })
            } else {
                scenario.hot_checkout(state, rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_common::config::ScaleConfig;
    use std::collections::HashMap;

    fn config(kind: ScenarioKind) -> RunConfig {
        RunConfig {
            scale: ScaleConfig {
                sellers: 4,
                products_per_seller: 25,
                customers: 50,
                initial_stock: 100,
            },
            // No background deletes: rank 0 must stay pinned to one
            // product so the funnel assertions are exact.
            mix: om_common::config::WorkloadMix {
                product_delete: 0,
                ..Default::default()
            },
            scenario: Some(ScenarioConfig::named(kind)),
            ..RunConfig::smoke()
        }
    }

    fn ops_for(kind: ScenarioKind, n: usize) -> (Vec<Op>, WorkloadState) {
        let cfg = config(kind);
        let state = WorkloadState::new(&cfg);
        let scenario = ScenarioState::new(cfg.scenario.unwrap(), &state);
        let mut rng = SplitMix64::new(0xF1A5);
        let mut ops = Vec::new();
        while ops.len() < n {
            if let Some(op) = next_scenario_op(&state, &scenario, &cfg, &mut rng) {
                if let Some(c) = op.leased_customer() {
                    state.return_customer(c);
                }
                ops.push(op);
            }
        }
        (ops, state)
    }

    #[test]
    fn flash_sale_funnels_checkouts_into_one_product() {
        let (ops, state) = ops_for(ScenarioKind::FlashSale, 1000);
        let hot = state.product_at_rank(0);
        let mut hot_checkouts = 0usize;
        let mut checkouts = 0usize;
        for op in &ops {
            if let Op::Checkout { items, .. } = op {
                checkouts += 1;
                if items.iter().any(|(_, p, _)| *p == hot) {
                    hot_checkouts += 1;
                }
            }
        }
        // hot_fraction 0.95 of ops are single-line checkouts of THE product.
        assert!(checkouts >= 900, "checkouts={checkouts}");
        assert!(
            hot_checkouts * 10 >= checkouts * 9,
            "hot share too low: {hot_checkouts}/{checkouts}"
        );
    }

    #[test]
    fn price_storm_prices_come_from_the_ladder() {
        let cfg = config(ScenarioKind::PriceStorm);
        let state = WorkloadState::new(&cfg);
        let scenario = ScenarioState::new(cfg.scenario.unwrap(), &state);
        let mut rng = SplitMix64::new(3);
        let mut storm_updates = 0;
        for _ in 0..2000 {
            let Some(op) = next_scenario_op(&state, &scenario, &cfg, &mut rng) else {
                continue;
            };
            if let Some(c) = op.leased_customer() {
                state.return_customer(c);
            }
            if let Op::PriceUpdate { price, .. } = op {
                if price.0 > 100_000 {
                    assert!(
                        scenario.price_ladder().contains(&price),
                        "storm price off the ladder: {price:?}"
                    );
                    storm_updates += 1;
                }
            }
        }
        assert!(storm_updates > 300, "storm updates={storm_updates}");
        // Ladder is disjoint from the datagen price range by construction.
        assert!(scenario.price_ladder().iter().all(|p| p.0 > 100_000));
    }

    #[test]
    fn dashboard_storm_scans_hot_sellers() {
        let (ops, state) = ops_for(ScenarioKind::DashboardStorm, 1000);
        let hot_sellers: std::collections::HashSet<_> = (0..8)
            .map(|r| state.seller_of(state.product_at_rank(r)))
            .collect();
        let mut scans = 0usize;
        let mut hot_scans = 0usize;
        for op in &ops {
            if let Op::SellerDashboard { seller } = op {
                scans += 1;
                if hot_sellers.contains(seller) {
                    hot_scans += 1;
                }
            }
        }
        assert!(scans >= 250, "scans={scans}");
        assert!(
            hot_scans * 10 >= scans * 8,
            "hot scans too few: {hot_scans}/{scans}"
        );
    }

    #[test]
    fn cart_churn_mostly_abandons() {
        let (ops, _) = ops_for(ScenarioKind::CartChurn, 1000);
        let abandons = ops
            .iter()
            .filter(|o| matches!(o, Op::AbandonCart { .. }))
            .count();
        let checkouts = ops
            .iter()
            .filter(|o| matches!(o, Op::Checkout { .. }))
            .count();
        assert!(abandons > checkouts, "{abandons} vs {checkouts}");
        assert!(abandons >= 350, "abandons={abandons}");
    }

    #[test]
    fn hot_theta_skews_within_the_hot_set() {
        let cfg = RunConfig {
            scenario: Some(ScenarioConfig::price_storm().hot_products(8).hot_theta(0.99)),
            ..config(ScenarioKind::PriceStorm)
        };
        let state = WorkloadState::new(&cfg);
        let scenario = ScenarioState::new(cfg.scenario.unwrap(), &state);
        let mut rng = SplitMix64::new(5);
        let mut counts: HashMap<_, u32> = HashMap::new();
        for _ in 0..4000 {
            *counts.entry(scenario.hot_product(&state, &mut rng)).or_default() += 1;
        }
        assert!(counts.len() <= 8, "hot set bounded: {}", counts.len());
        let top = *counts.values().max().unwrap();
        assert!(top > 1000, "rank 0 dominates the hot set, top={top}");
    }

    #[test]
    fn background_share_still_uses_full_mix() {
        // hot_fraction 0 degenerates to the plain generator: deletes and
        // delivery updates must appear.
        let cfg = RunConfig {
            scenario: Some(ScenarioConfig::flash_sale().hot_theta(0.0)),
            ..config(ScenarioKind::FlashSale)
        };
        let mut sc = cfg.scenario.unwrap();
        sc.hot_fraction = 0.0;
        let state = WorkloadState::new(&cfg);
        let scenario = ScenarioState::new(sc, &state);
        let mut rng = SplitMix64::new(6);
        let mut kinds = std::collections::HashSet::new();
        for _ in 0..2000 {
            if let Some(op) = next_scenario_op(&state, &scenario, &cfg, &mut rng) {
                if let Some(c) = op.leased_customer() {
                    state.return_customer(c);
                }
                kinds.insert(op.kind());
            }
        }
        assert!(kinds.len() >= 4, "background mix visible: {kinds:?}");
    }
}
