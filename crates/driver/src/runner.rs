//! The benchmark runner: experiment lifecycle management.
//!
//! Phases (paper §II, *Driver*): data generation → ingestion → warm-up →
//! measured submission → statistics collection → quiesce → audit.
//!
//! The measured window runs in one of two modes:
//!
//! * **closed loop** (default): each worker issues its next operation
//!   only after the previous one completes — throughput-oriented, but a
//!   slowing system silently throttles its own offered load;
//! * **open loop** (`RunConfig::open_loop`): requests fire on a
//!   deterministic arrival schedule regardless of completions, with a
//!   bounded in-flight ledger and drop/late accounting, and latency
//!   measured from the *scheduled* arrival — queueing delay included.
//!   The report gains an [`SloRow`].
//!
//! `RunConfig::chaos_drill` additionally fires the platform's
//! crash-recovery drill *mid-window* (once a quarter of the measured
//! operations have completed), where the post-run `recovery_drill` waits
//! for quiescence.

use crate::audit::{audit, RuntimeObservations};
use crate::datagen::DataGenerator;
use crate::openloop::{ArrivalSchedule, SloAccumulator, SloRow, LATE_SLACK_US};
use crate::report::RunReport;
use crate::scenario::{next_scenario_op, ScenarioState};
use crate::workload::{next_op, Op, WorkloadState};
use om_common::config::{OpenLoopConfig, RunConfig};
use om_common::rng::SplitMix64;
use om_common::stats::{Histogram, Throughput};
use om_marketplace::api::{
    CheckoutItem, CheckoutRequest, MarketplacePlatform, PlatformKind, RecoveryOutcome,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-worker measurement buffers, merged after the run.
struct WorkerStats {
    latency: BTreeMap<&'static str, Histogram>,
    completed: u64,
    failed: u64,
    torn_dashboards: u64,
}

impl WorkerStats {
    fn new() -> Self {
        Self {
            latency: BTreeMap::new(),
            completed: 0,
            failed: 0,
            torn_dashboards: 0,
        }
    }
}

/// Generates the next operation, honoring the active scenario shape.
fn gen_op(
    state: &WorkloadState,
    scenario: Option<&ScenarioState>,
    config: &RunConfig,
    rng: &mut SplitMix64,
) -> Option<Op> {
    match scenario {
        Some(sc) => next_scenario_op(state, sc, config, rng),
        None => next_op(state, config, rng),
    }
}

/// Executes one operation against the platform; returns `Ok(())` if it
/// counts as completed (rejections count — they are valid business
/// outcomes); torn-dashboard bookkeeping goes through `stats`.
fn execute(
    platform: &dyn MarketplacePlatform,
    state: &WorkloadState,
    op: &Op,
    stats: &mut WorkerStats,
) -> Result<(), om_common::OmError> {
    match op {
        Op::Checkout {
            customer,
            items,
            method,
        } => {
            let mut added = 0;
            for &(seller, product, quantity) in items {
                match platform.add_to_cart(
                    *customer,
                    CheckoutItem {
                        seller,
                        product,
                        quantity,
                    },
                ) {
                    Ok(()) => added += 1,
                    Err(e) if e.label() == "rejected" || e.label() == "not_found" => {
                        // Deleted product raced the checkout: fine.
                    }
                    Err(e) => {
                        state.return_customer(*customer);
                        return Err(e);
                    }
                }
            }
            let result = if added > 0 {
                platform
                    .checkout(CheckoutRequest {
                        customer: *customer,
                        items: vec![],
                        method: *method,
                    })
                    .map(|_| ())
            } else {
                Ok(())
            };
            state.return_customer(*customer);
            result
        }
        Op::AbandonCart { customer, items } => {
            // Fill the cart, then walk away: no checkout, no cleanup. The
            // customer (and their loaded cart) goes straight back to the
            // pool.
            for &(seller, product, quantity) in items {
                match platform.add_to_cart(
                    *customer,
                    CheckoutItem {
                        seller,
                        product,
                        quantity,
                    },
                ) {
                    Ok(()) => {}
                    Err(e) if e.label() == "rejected" || e.label() == "not_found" => {}
                    Err(e) => {
                        state.return_customer(*customer);
                        return Err(e);
                    }
                }
            }
            state.return_customer(*customer);
            Ok(())
        }
        Op::PriceUpdate {
            seller,
            product,
            price,
        } => match platform.price_update(*seller, *product, *price) {
            Ok(()) => Ok(()),
            // The product may have been deleted concurrently.
            Err(e) if e.label() == "rejected" || e.label() == "not_found" => Ok(()),
            Err(e) => Err(e),
        },
        Op::ProductDelete { seller, product } => {
            match platform.product_delete(*seller, *product) {
                Ok(()) => Ok(()),
                Err(e) if e.label() == "rejected" || e.label() == "not_found" => Ok(()),
                Err(e) => Err(e),
            }
        }
        Op::UpdateDelivery => platform.update_delivery(10).map(|_| ()),
        Op::SellerDashboard { seller } => {
            let dashboard = platform.seller_dashboard(*seller)?;
            if !dashboard.is_snapshot_consistent() {
                stats.torn_dashboards += 1;
            }
            Ok(())
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    platform: &dyn MarketplacePlatform,
    state: &WorkloadState,
    scenario: Option<&ScenarioState>,
    config: &RunConfig,
    mut rng: SplitMix64,
    measured_ops: u64,
    warmup_ops: u64,
    progress: &AtomicU64,
) -> WorkerStats {
    let mut stats = WorkerStats::new();
    let mut done = 0u64;
    let total = warmup_ops + measured_ops;
    let mut dry_spins = 0;
    while done < total {
        let Some(op) = gen_op(state, scenario, config, &mut rng) else {
            // No leasable input right now; try a different op soon.
            dry_spins += 1;
            if dry_spins > 1_000_000 {
                break; // pathological config; avoid livelock
            }
            std::thread::yield_now();
            continue;
        };
        dry_spins = 0;
        let measuring = done >= warmup_ops;
        let started = Instant::now();
        let result = execute(platform, state, &op, &mut stats);
        if measuring {
            match result {
                Ok(()) => {
                    stats.completed += 1;
                    stats
                        .latency
                        .entry(op.kind().label())
                        .or_default()
                        .record_duration(started.elapsed());
                }
                Err(_) => stats.failed += 1,
            }
            progress.fetch_add(1, Ordering::Relaxed);
        }
        done += 1;
    }
    stats
}

/// One open-loop executor: drains the dispatch queue, measuring each
/// completion from its *scheduled* arrival instant.
fn open_loop_worker(
    platform: &dyn MarketplacePlatform,
    state: &WorkloadState,
    rx: crossbeam::channel::Receiver<(Op, Instant)>,
    progress: &AtomicU64,
) -> (WorkerStats, SloAccumulator) {
    let mut stats = WorkerStats::new();
    let mut acc = SloAccumulator::new();
    while let Ok((op, scheduled)) = rx.recv() {
        let kind = op.kind().label();
        let result = execute(platform, state, &op, &mut stats);
        // Queueing delay (time spent in the ledger behind other arrivals)
        // is part of the customer-visible latency — the whole point of
        // the open loop.
        let latency = scheduled.elapsed();
        match result {
            Ok(()) => {
                stats.completed += 1;
                stats
                    .latency
                    .entry(kind)
                    .or_default()
                    .record_duration(latency);
                acc.complete(latency.as_micros() as u64);
            }
            Err(_) => {
                stats.failed += 1;
                acc.failed += 1;
            }
        }
        progress.fetch_add(1, Ordering::Relaxed);
    }
    (stats, acc)
}

/// Sleeps (coarsely) then spins (precisely) until `target`.
fn wait_until(target: Instant) {
    const SPIN_SLACK: Duration = Duration::from_micros(200);
    let now = Instant::now();
    if let Some(gap) = target.checked_duration_since(now) {
        if gap > SPIN_SLACK {
            std::thread::sleep(gap - SPIN_SLACK);
        }
        while Instant::now() < target {
            std::hint::spin_loop();
        }
    }
}

/// The open-loop measured window: a dispatcher fires the arrival schedule
/// into a bounded queue (the in-flight ledger) that `workers` executors
/// drain. Returns the merged worker stats, the SLO row and the window
/// length in seconds.
fn open_loop_window(
    platform: &dyn MarketplacePlatform,
    state: &WorkloadState,
    scenario: Option<&ScenarioState>,
    config: &RunConfig,
    ol: &OpenLoopConfig,
    seeder: &mut SplitMix64,
    progress: &AtomicU64,
) -> (Vec<WorkerStats>, SloRow, f64) {
    let schedule = ArrivalSchedule::generate(ol, config.seed);
    let workers = if ol.workers == 0 {
        config.workers.max(1)
    } else {
        ol.workers
    };
    // The ledger: queued arrivals are bounded by `max_in_flight`; each
    // executor holds at most one more, so in-flight <= cap + workers.
    let (tx, rx) = crossbeam::channel::bounded::<(Op, Instant)>(ol.max_in_flight.max(1));
    let mut gen_rng = seeder.fork();
    let mut dispatch = SloAccumulator::new();
    let mut worker_stats = Vec::new();
    let mut worker_accs = Vec::new();
    let start = Instant::now();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..workers {
            let rx = rx.clone();
            let platform_ref: &dyn MarketplacePlatform = platform;
            let progress_ref = &*progress;
            handles.push(
                scope.spawn(move || open_loop_worker(platform_ref, state, rx, progress_ref)),
            );
        }
        for &offset in &schedule.offsets_us {
            let target = start + Duration::from_micros(offset);
            wait_until(target);
            dispatch.arrivals += 1;
            // A handful of retries tolerates transient lease starvation;
            // a persistently dry generator sheds the arrival instead of
            // stalling the schedule.
            let mut op = None;
            for _ in 0..8 {
                op = gen_op(state, scenario, config, &mut gen_rng);
                if op.is_some() {
                    break;
                }
            }
            let Some(op) = op else {
                dispatch.dropped += 1;
                continue;
            };
            if Instant::now().duration_since(target).as_micros() as u64 > LATE_SLACK_US {
                dispatch.late += 1;
            }
            if let Err(crossbeam::channel::TrySendError::Full((op, _)))
            | Err(crossbeam::channel::TrySendError::Disconnected((op, _))) =
                tx.try_send((op, target))
            {
                // Ledger full: shed the arrival, release its inputs.
                if let Some(c) = op.leased_customer() {
                    state.return_customer(c);
                }
                dispatch.dropped += 1;
            }
        }
        drop(tx); // close the ledger; workers drain and exit
        for h in handles {
            let (stats, acc) = h.join().expect("open-loop worker panicked");
            worker_stats.push(stats);
            worker_accs.push(acc);
        }
    });
    let window_secs = start.elapsed().as_secs_f64();
    for acc in &worker_accs {
        dispatch.merge(acc);
    }
    let row = dispatch.into_row(ol.offered_rate, window_secs);
    (worker_stats, row, window_secs)
}

/// Builds the platform for the `(kind, config.backend)` matrix cell
/// through the factory and runs the full lifecycle on it. This is the
/// `RunConfig`-driven entry point: selecting a different backend — or a
/// scenario, an open-loop rate, a chaos drill — is a config change,
/// never a code change.
pub fn run_matrix_cell(kind: PlatformKind, config: &RunConfig) -> RunReport {
    let mut spec = om_marketplace::PlatformSpec::new(kind, config.backend)
        .parallelism(config.workers.max(1))
        .decline_rate(config.payment_decline_rate)
        .checkpoint_interval(config.checkpoint_interval)
        .df_workers(config.df_workers)
        .durable_checkpoints(config.durable_checkpoints)
        .durable_options(config.durable);
    if let Some(dir) = &config.data_dir {
        spec = spec.data_dir(dir);
    }
    let platform = om_marketplace::build_platform(&spec);
    run_benchmark(platform.as_ref(), config, true)
}

/// Runs the full benchmark lifecycle on `platform` and returns the
/// report. `ingest` controls whether the runner generates and loads data
/// (pass `false` if the platform is pre-loaded).
pub fn run_benchmark(
    platform: &dyn MarketplacePlatform,
    config: &RunConfig,
    ingest: bool,
) -> RunReport {
    // 1. Data generation + ingestion.
    if ingest {
        DataGenerator::new(config.scale, config.seed)
            .ingest_all(platform)
            .expect("ingestion succeeds");
    }

    let state = Arc::new(WorkloadState::new(config));
    let scenario = config.scenario.map(|sc| ScenarioState::new(sc, &state));
    let mut seeder = SplitMix64::new(config.seed ^ 0x5EED);

    // Chaos coordination: the drill thread fires once a quarter of the
    // measured operations have completed (or when the window ends first),
    // so the crash lands mid-load, not on an idle platform.
    let progress = AtomicU64::new(0);
    let window_over = AtomicBool::new(false);
    let chaos_outcome: parking_lot::Mutex<Option<RecoveryOutcome>> = parking_lot::Mutex::new(None);
    let total_measured = match &config.open_loop {
        Some(ol) => ol.arrivals,
        None => config.ops_per_worker * config.workers as u64,
    };
    let chaos_target = (total_measured / 4).max(1);

    // 2 + 3. Warm-up and measured submission.
    let mut worker_stats: Vec<WorkerStats> = Vec::new();
    let mut slo: Option<SloRow> = None;
    let measured_window = Instant::now();
    let mut window_secs = 0.0f64;
    std::thread::scope(|scope| {
        if config.chaos_drill {
            let progress_ref = &progress;
            let over_ref = &window_over;
            let outcome_ref = &chaos_outcome;
            let platform_ref: &dyn MarketplacePlatform = platform;
            scope.spawn(move || {
                while progress_ref.load(Ordering::Relaxed) < chaos_target
                    && !over_ref.load(Ordering::Relaxed)
                {
                    std::thread::sleep(Duration::from_millis(1));
                }
                *outcome_ref.lock() = platform_ref.crash_and_recover();
            });
        }

        if let Some(ol) = &config.open_loop {
            // Closed-loop warm-up, then the open-loop measured window.
            if config.warmup_ops_per_worker > 0 {
                let mut warm_handles = Vec::new();
                for _ in 0..config.workers.max(1) {
                    let rng = seeder.fork();
                    let state = state.clone();
                    let scenario_ref = scenario.as_ref();
                    let platform_ref: &dyn MarketplacePlatform = platform;
                    let progress_ref = &progress;
                    warm_handles.push(scope.spawn(move || {
                        worker_loop(
                            platform_ref,
                            &state,
                            scenario_ref,
                            config,
                            rng,
                            0,
                            config.warmup_ops_per_worker,
                            progress_ref,
                        )
                    }));
                }
                for h in warm_handles {
                    h.join().expect("warmup worker panicked");
                }
            }
            let (stats, row, secs) = open_loop_window(
                platform,
                &state,
                scenario.as_ref(),
                config,
                ol,
                &mut seeder,
                &progress,
            );
            worker_stats = stats;
            slo = Some(row);
            window_secs = secs;
        } else {
            let mut handles = Vec::new();
            for _ in 0..config.workers {
                let rng = seeder.fork();
                let state = state.clone();
                let scenario_ref = scenario.as_ref();
                let platform_ref: &dyn MarketplacePlatform = platform;
                let progress_ref = &progress;
                handles.push(scope.spawn(move || {
                    worker_loop(
                        platform_ref,
                        &state,
                        scenario_ref,
                        config,
                        rng,
                        config.ops_per_worker,
                        config.warmup_ops_per_worker,
                        progress_ref,
                    )
                }));
            }
            for h in handles {
                worker_stats.push(h.join().expect("worker panicked"));
            }
            window_secs = measured_window.elapsed().as_secs_f64();
        }
        // Unblock a chaos thread still waiting on its progress target; it
        // fires against the drained platform, degenerating to a post-run
        // drill rather than hanging the scope.
        window_over.store(true, Ordering::Relaxed);
    });

    // 4. Statistics collection.
    let mut latency: BTreeMap<String, Histogram> = BTreeMap::new();
    let mut completed = 0;
    let mut failed = 0;
    let mut observations = RuntimeObservations::default();
    for stats in worker_stats {
        completed += stats.completed;
        failed += stats.failed;
        observations.torn_dashboards += stats.torn_dashboards;
        for (kind, hist) in stats.latency {
            latency.entry(kind.to_string()).or_default().merge(&hist);
        }
    }

    // 5. Quiesce + audit.
    platform.quiesce();
    let counters = platform.counters();
    let snapshot = platform.snapshot().unwrap_or_default();
    let criteria = audit(&snapshot, &counters, &observations, config.scale.initial_stock);

    // 6. Recovery outcome: the mid-window chaos drill if one fired,
    // otherwise the optional post-run drill on the quiesced platform.
    let recovery = chaos_outcome.lock().take().or_else(|| {
        if config.recovery_drill {
            platform.crash_and_recover()
        } else {
            None
        }
    });

    let throughput = Throughput {
        operations: completed,
        window_secs,
    };
    RunReport {
        platform: platform.kind().label().to_string(),
        backend: platform
            .backend()
            .map(|b| b.label().to_string())
            .unwrap_or_else(|| "native".to_string()),
        durability: match platform.backend() {
            Some(kind) if kind.is_durable() => "disk",
            Some(_) => "memory",
            None => "ephemeral",
        }
        .to_string(),
        config: config.clone(),
        operations: completed,
        failed_operations: failed,
        window_secs,
        throughput_per_sec: throughput.per_sec(),
        latency: latency
            .into_iter()
            .map(|(k, h)| (k, h.summary()))
            .collect(),
        counters,
        criteria,
        recovery,
        slo,
    }
}
