//! The benchmark runner: experiment lifecycle management.
//!
//! Phases (paper §II, *Driver*): data generation → ingestion → warm-up →
//! measured submission → statistics collection → quiesce → audit.

use crate::audit::{audit, RuntimeObservations};
use crate::datagen::DataGenerator;
use crate::report::RunReport;
use crate::workload::{next_op, Op, WorkloadState};
use om_common::config::RunConfig;
use om_common::rng::SplitMix64;
use om_common::stats::{Histogram, Throughput};
use om_marketplace::api::{CheckoutItem, CheckoutRequest, MarketplacePlatform, PlatformKind};
use std::collections::BTreeMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Instant;

/// Per-worker measurement buffers, merged after the run.
struct WorkerStats {
    latency: BTreeMap<&'static str, Histogram>,
    completed: u64,
    failed: u64,
    torn_dashboards: u64,
}

impl WorkerStats {
    fn new() -> Self {
        Self {
            latency: BTreeMap::new(),
            completed: 0,
            failed: 0,
            torn_dashboards: 0,
        }
    }
}

/// Executes one operation against the platform; returns `Ok(true)` if it
/// counts as completed (rejections count — they are valid business
/// outcomes), `Ok(false)` for torn-dashboard bookkeeping handled by the
/// caller.
fn execute(
    platform: &dyn MarketplacePlatform,
    state: &WorkloadState,
    op: &Op,
    stats: &mut WorkerStats,
) -> Result<(), om_common::OmError> {
    match op {
        Op::Checkout {
            customer,
            items,
            method,
        } => {
            let mut added = 0;
            for &(seller, product, quantity) in items {
                match platform.add_to_cart(
                    *customer,
                    CheckoutItem {
                        seller,
                        product,
                        quantity,
                    },
                ) {
                    Ok(()) => added += 1,
                    Err(e) if e.label() == "rejected" || e.label() == "not_found" => {
                        // Deleted product raced the checkout: fine.
                    }
                    Err(e) => {
                        state.return_customer(*customer);
                        return Err(e);
                    }
                }
            }
            let result = if added > 0 {
                platform
                    .checkout(CheckoutRequest {
                        customer: *customer,
                        items: vec![],
                        method: *method,
                    })
                    .map(|_| ())
            } else {
                Ok(())
            };
            state.return_customer(*customer);
            result
        }
        Op::PriceUpdate {
            seller,
            product,
            price,
        } => match platform.price_update(*seller, *product, *price) {
            Ok(()) => Ok(()),
            // The product may have been deleted concurrently.
            Err(e) if e.label() == "rejected" || e.label() == "not_found" => Ok(()),
            Err(e) => Err(e),
        },
        Op::ProductDelete { seller, product } => {
            match platform.product_delete(*seller, *product) {
                Ok(()) => Ok(()),
                Err(e) if e.label() == "rejected" || e.label() == "not_found" => Ok(()),
                Err(e) => Err(e),
            }
        }
        Op::UpdateDelivery => platform.update_delivery(10).map(|_| ()),
        Op::SellerDashboard { seller } => {
            let dashboard = platform.seller_dashboard(*seller)?;
            if !dashboard.is_snapshot_consistent() {
                stats.torn_dashboards += 1;
            }
            Ok(())
        }
    }
}

fn worker_loop(
    platform: &dyn MarketplacePlatform,
    state: &WorkloadState,
    config: &RunConfig,
    mut rng: SplitMix64,
    measured_ops: u64,
    warmup_ops: u64,
) -> WorkerStats {
    let mut stats = WorkerStats::new();
    let mut done = 0u64;
    let total = warmup_ops + measured_ops;
    let mut dry_spins = 0;
    while done < total {
        let Some(op) = next_op(state, config, &mut rng) else {
            // No leasable input right now; try a different op soon.
            dry_spins += 1;
            if dry_spins > 1_000_000 {
                break; // pathological config; avoid livelock
            }
            std::thread::yield_now();
            continue;
        };
        dry_spins = 0;
        let measuring = done >= warmup_ops;
        let started = Instant::now();
        let result = execute(platform, state, &op, &mut stats);
        if measuring {
            match result {
                Ok(()) => {
                    stats.completed += 1;
                    stats
                        .latency
                        .entry(op.kind().label())
                        .or_default()
                        .record_duration(started.elapsed());
                }
                Err(_) => stats.failed += 1,
            }
        }
        done += 1;
    }
    stats
}

/// Builds the platform for the `(kind, config.backend)` matrix cell
/// through the factory and runs the full lifecycle on it. This is the
/// `RunConfig`-driven entry point: selecting a different backend — or a
/// different checkpoint discipline, or arming the post-run recovery
/// drill — is a config change, never a code change.
pub fn run_matrix_cell(kind: PlatformKind, config: &RunConfig) -> RunReport {
    let mut spec = om_marketplace::PlatformSpec::new(kind, config.backend)
        .parallelism(config.workers.max(1))
        .decline_rate(config.payment_decline_rate)
        .checkpoint_interval(config.checkpoint_interval)
        .df_workers(config.df_workers)
        .durable_checkpoints(config.durable_checkpoints)
        .durable_options(config.durable);
    if let Some(dir) = &config.data_dir {
        spec = spec.data_dir(dir);
    }
    let platform = om_marketplace::build_platform(&spec);
    run_benchmark(platform.as_ref(), config, true)
}

/// Runs the full benchmark lifecycle on `platform` and returns the
/// report. `ingest` controls whether the runner generates and loads data
/// (pass `false` if the platform is pre-loaded).
pub fn run_benchmark(
    platform: &dyn MarketplacePlatform,
    config: &RunConfig,
    ingest: bool,
) -> RunReport {
    // 1. Data generation + ingestion.
    if ingest {
        DataGenerator::new(config.scale, config.seed)
            .ingest_all(platform)
            .expect("ingestion succeeds");
    }

    let state = Arc::new(WorkloadState::new(config));
    let mut seeder = SplitMix64::new(config.seed ^ 0x5EED);

    // 2 + 3. Warm-up and measured submission (closed loop).
    let measured_window = Instant::now();
    let window_start = Arc::new(AtomicU64::new(0));
    let _ = window_start;
    let mut worker_stats: Vec<WorkerStats> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..config.workers {
            let rng = seeder.fork();
            let state = state.clone();
            let platform_ref: &dyn MarketplacePlatform = platform;
            let config_ref = config;
            handles.push(scope.spawn(move || {
                worker_loop(
                    platform_ref,
                    &state,
                    config_ref,
                    rng,
                    config_ref.ops_per_worker,
                    config_ref.warmup_ops_per_worker,
                )
            }));
        }
        for h in handles {
            worker_stats.push(h.join().expect("worker panicked"));
        }
    });
    let window_secs = measured_window.elapsed().as_secs_f64();

    // 4. Statistics collection.
    let mut latency: BTreeMap<String, Histogram> = BTreeMap::new();
    let mut completed = 0;
    let mut failed = 0;
    let mut observations = RuntimeObservations::default();
    for stats in worker_stats {
        completed += stats.completed;
        failed += stats.failed;
        observations.torn_dashboards += stats.torn_dashboards;
        for (kind, hist) in stats.latency {
            latency.entry(kind.to_string()).or_default().merge(&hist);
        }
    }

    // 5. Quiesce + audit.
    platform.quiesce();
    let counters = platform.counters();
    let snapshot = platform.snapshot().unwrap_or_default();
    let criteria = audit(&snapshot, &counters, &observations, config.scale.initial_stock);

    // 6. Optional recovery cell: crash the quiesced platform mid-epoch
    // and measure the restart from its durable checkpoint.
    let recovery = if config.recovery_drill {
        platform.crash_and_recover()
    } else {
        None
    };

    let throughput = Throughput {
        operations: completed,
        window_secs,
    };
    RunReport {
        platform: platform.kind().label().to_string(),
        backend: platform
            .backend()
            .map(|b| b.label().to_string())
            .unwrap_or_else(|| "native".to_string()),
        durability: match platform.backend() {
            Some(kind) if kind.is_durable() => "disk",
            Some(_) => "memory",
            None => "ephemeral",
        }
        .to_string(),
        config: config.clone(),
        operations: completed,
        failed_operations: failed,
        window_secs,
        throughput_per_sec: throughput.per_sec(),
        latency: latency
            .into_iter()
            .map(|(k, h)| (k, h.summary()))
            .collect(),
        counters,
        criteria,
        recovery,
    }
}
