//! # om-driver
//!
//! The Online Marketplace **benchmark driver** (paper §II, *Driver*):
//! manages the experiment lifecycle — data generation, data ingestion,
//! system warm-up, submission of workload, statistics collection and
//! cleanup — plus the **criteria auditor** that turns the paper's
//! data-management criteria into measured violation counts.
//!
//! Practical challenges the talk highlights are handled explicitly:
//!
//! * **Deleted products without distorting the key distribution** — the
//!   workload keeps a fixed rank→product table; deleting a product swaps a
//!   replacement into its rank instead of shrinking the key space
//!   ([`workload::WorkloadState`]).
//! * **Safe concurrent access to transaction inputs** — customers are
//!   leased from a pool so no two in-flight transactions share a cart.
//!
//! Entry point: [`runner::run_benchmark`].

pub mod audit;
pub mod datagen;
pub mod openloop;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod workload;

pub use audit::{CriteriaReport, CriterionVerdict};
pub use datagen::DataGenerator;
pub use openloop::{saturation_point, simulate, ArrivalSchedule, SloAccumulator, SloRow};
pub use report::RunReport;
pub use runner::{run_benchmark, run_matrix_cell};
pub use scenario::{next_scenario_op, ScenarioState};
