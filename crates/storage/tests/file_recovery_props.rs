//! Property tests of the file backend's recovery rules: **truncating the
//! WAL at *any* byte boundary recovers to the last fully-committed
//! batch** — a torn multi-key commit is never partially visible, no
//! committed batch is lost, and recovery is deterministic.
//!
//! The workload commits multi-key batches (every batch writes one round
//! marker to several keys), then simulates a crash by chopping the WAL
//! at an arbitrary byte. The recovered store must equal the reference
//! model after exactly the batches whose frames survived in full.

use om_common::checksum::parse_frame;
use om_storage::{FileBackend, FileBackendOptions, StateBackend, WriteBatch};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "om-file-props-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

struct DirGuard(PathBuf);
impl Drop for DirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One committed batch: puts (key, value) and deletes (key, None).
type Batch = Vec<(u8, Option<u16>)>;

fn batch_strategy() -> impl Strategy<Value = Batch> {
    prop::collection::vec(
        (any::<u8>(), any::<u16>(), any::<bool>())
            .prop_map(|(k, v, put)| (k % 8, put.then_some(v))),
        1..6,
    )
}

fn key_bytes(k: u8) -> Vec<u8> {
    vec![b'k', k]
}

/// The WAL-only options the torn-tail property needs: no snapshots, one
/// segment, so every committed batch is exactly one frame in one file.
const WAL_ONLY: FileBackendOptions = FileBackendOptions {
    shards: 4,
    snapshot_every: 0,
    segment_bytes: u64::MAX,
    sync_commits: false,
};

fn wal_segment(dir: &std::path::Path) -> PathBuf {
    let mut logs: Vec<PathBuf> = std::fs::read_dir(dir.join("wal"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .collect();
    assert_eq!(logs.len(), 1, "WAL_ONLY options must yield a single segment");
    logs.pop().unwrap()
}

/// Applies the first `n` batches to a reference model.
fn model_after(batches: &[Batch], n: usize) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let mut model = BTreeMap::new();
    for batch in &batches[..n] {
        for (k, v) in batch {
            match v {
                Some(v) => {
                    model.insert(key_bytes(*k), v.to_le_bytes().to_vec());
                }
                None => {
                    model.remove(&key_bytes(*k));
                }
            }
        }
    }
    model
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any batch sequence and any truncation byte, the reopened
    /// store holds exactly the prefix of fully-framed batches.
    #[test]
    fn truncation_at_any_byte_recovers_the_last_full_commit(
        batches in prop::collection::vec(batch_strategy(), 1..10),
        cut_ratio in 0.0f64..1.0,
    ) {
        let dir = scratch("any-byte");
        let _guard = DirGuard(dir.clone());
        {
            let backend = FileBackend::open(&dir, WAL_ONLY).unwrap();
            for batch in &batches {
                let mut wb = WriteBatch::new();
                for (k, v) in batch {
                    wb = match v {
                        Some(v) => wb.put(key_bytes(*k), v.to_le_bytes().to_vec()),
                        None => wb.delete(key_bytes(*k)),
                    };
                }
                backend.commit(wb).unwrap();
            }
        }
        let seg = wal_segment(&dir);
        let bytes = std::fs::read(&seg).unwrap();
        let cut = ((bytes.len() as f64) * cut_ratio) as usize;

        // How many whole frames survive the cut — each frame is exactly
        // one committed batch, in commit order.
        let mut survivors = 0usize;
        let mut at = 0usize;
        while let Ok(Some((_, next))) = parse_frame(&bytes[..cut], at) {
            survivors += 1;
            at = next;
        }

        // Crash: the tail after `cut` never reached the disk.
        std::fs::write(&seg, &bytes[..cut]).unwrap();
        let recovered = FileBackend::open(&dir, WAL_ONLY).unwrap();
        let model = model_after(&batches, survivors);
        prop_assert_eq!(recovered.len(), model.len(), "cut={} survivors={}", cut, survivors);
        for k in 0..8u8 {
            prop_assert_eq!(
                recovered.get(&key_bytes(k)),
                model.get(&key_bytes(k)).cloned(),
                "key {} after cut={} survivors={}",
                k, cut, survivors
            );
        }

        // And the recovered store keeps working: one more commit, one
        // more reopen, still consistent.
        recovered.put(b"post", b"crash");
        drop(recovered);
        let again = FileBackend::open(&dir, WAL_ONLY).unwrap();
        prop_assert_eq!(again.get(b"post"), Some(b"crash".to_vec()));
    }

    /// Same property with snapshots in play: the cut hits the
    /// post-snapshot WAL tail, and recovery = snapshot + surviving tail
    /// frames. No committed batch below the snapshot is ever at risk.
    #[test]
    fn truncation_after_a_snapshot_recovers_snapshot_plus_tail(
        before in prop::collection::vec(batch_strategy(), 1..6),
        after in prop::collection::vec(batch_strategy(), 1..6),
        cut_ratio in 0.0f64..1.0,
    ) {
        let dir = scratch("snap-tail");
        let _guard = DirGuard(dir.clone());
        let opts = FileBackendOptions { snapshot_every: 0, ..WAL_ONLY };
        {
            let backend = FileBackend::open(&dir, opts).unwrap();
            let commit = |batch: &Batch| {
                let mut wb = WriteBatch::new();
                for (k, v) in batch {
                    wb = match v {
                        Some(v) => wb.put(key_bytes(*k), v.to_le_bytes().to_vec()),
                        None => wb.delete(key_bytes(*k)),
                    };
                }
                backend.commit(wb).unwrap();
            };
            for batch in &before {
                commit(batch);
            }
            backend.snapshot_now().unwrap();
            for batch in &after {
                commit(batch);
            }
        }
        // The snapshot rolled to a fresh segment holding only the
        // post-snapshot batches; cut inside it.
        let seg = wal_segment(&dir);
        let bytes = std::fs::read(&seg).unwrap();
        let cut = ((bytes.len() as f64) * cut_ratio) as usize;
        let mut survivors = 0usize;
        let mut at = 0usize;
        while let Ok(Some((_, next))) = parse_frame(&bytes[..cut], at) {
            survivors += 1;
            at = next;
        }
        std::fs::write(&seg, &bytes[..cut]).unwrap();

        let recovered = FileBackend::open(&dir, opts).unwrap();
        let mut all: Vec<Batch> = before.clone();
        all.extend_from_slice(&after);
        let model = model_after(&all, before.len() + survivors);
        for k in 0..8u8 {
            prop_assert_eq!(
                recovered.get(&key_bytes(k)),
                model.get(&key_bytes(k)).cloned(),
                "key {} cut={} survivors={}",
                k, cut, survivors
            );
        }
        prop_assert_eq!(recovered.len(), model.len());
    }
}
