//! Property tests of the file backend's recovery rules: **truncating the
//! WAL at *any* byte boundary recovers to the last fully-committed
//! batch** — a torn multi-key commit is never partially visible, no
//! committed batch is lost, and recovery is deterministic.
//!
//! The workload commits multi-key batches (every batch writes one round
//! marker to several keys), then simulates a crash by chopping the WAL
//! at an arbitrary byte. The recovered store must equal the reference
//! model after exactly the batches whose frames survived in full.

use om_common::checksum::parse_frame;
use om_storage::{FileBackend, FileBackendOptions, StateBackend, WriteBatch};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "om-file-props-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

struct DirGuard(PathBuf);
impl Drop for DirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One committed batch: puts (key, value) and deletes (key, None).
type Batch = Vec<(u8, Option<u16>)>;

fn batch_strategy() -> impl Strategy<Value = Batch> {
    prop::collection::vec(
        (any::<u8>(), any::<u16>(), any::<bool>())
            .prop_map(|(k, v, put)| (k % 8, put.then_some(v))),
        1..6,
    )
}

fn key_bytes(k: u8) -> Vec<u8> {
    vec![b'k', k]
}

/// The WAL-only options the torn-tail property needs: no snapshots, one
/// segment, so every committed batch is exactly one frame in one file.
const WAL_ONLY: FileBackendOptions = FileBackendOptions {
    shards: 4,
    snapshot_every: 0,
    segment_bytes: u64::MAX,
    sync_commits: false,
    group_commit: om_common::config::GroupCommitPolicy::Fixed(0),
    snapshot_mode: om_common::config::SnapshotMode::Incremental,
    compact_max_deltas: 16,
    compact_ratio_pct: 100,
    recovery_threads: 0,
};

fn wal_segment(dir: &std::path::Path) -> PathBuf {
    let mut logs: Vec<PathBuf> = std::fs::read_dir(dir.join("wal"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .collect();
    assert_eq!(logs.len(), 1, "WAL_ONLY options must yield a single segment");
    logs.pop().unwrap()
}

/// Applies the first `n` batches to a reference model.
fn model_after(batches: &[Batch], n: usize) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let mut model = BTreeMap::new();
    for batch in &batches[..n] {
        for (k, v) in batch {
            match v {
                Some(v) => {
                    model.insert(key_bytes(*k), v.to_le_bytes().to_vec());
                }
                None => {
                    model.remove(&key_bytes(*k));
                }
            }
        }
    }
    model
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any batch sequence and any truncation byte, the reopened
    /// store holds exactly the prefix of fully-framed batches.
    #[test]
    fn truncation_at_any_byte_recovers_the_last_full_commit(
        batches in prop::collection::vec(batch_strategy(), 1..10),
        cut_ratio in 0.0f64..1.0,
    ) {
        let dir = scratch("any-byte");
        let _guard = DirGuard(dir.clone());
        {
            let backend = FileBackend::open(&dir, WAL_ONLY).unwrap();
            for batch in &batches {
                let mut wb = WriteBatch::new();
                for (k, v) in batch {
                    wb = match v {
                        Some(v) => wb.put(key_bytes(*k), v.to_le_bytes().to_vec()),
                        None => wb.delete(key_bytes(*k)),
                    };
                }
                backend.commit(wb).unwrap();
            }
        }
        let seg = wal_segment(&dir);
        let bytes = std::fs::read(&seg).unwrap();
        let cut = ((bytes.len() as f64) * cut_ratio) as usize;

        // How many whole frames survive the cut — each frame is exactly
        // one committed batch, in commit order.
        let mut survivors = 0usize;
        let mut at = 0usize;
        while let Ok(Some((_, next))) = parse_frame(&bytes[..cut], at) {
            survivors += 1;
            at = next;
        }

        // Crash: the tail after `cut` never reached the disk.
        std::fs::write(&seg, &bytes[..cut]).unwrap();
        let recovered = FileBackend::open(&dir, WAL_ONLY).unwrap();
        let model = model_after(&batches, survivors);
        prop_assert_eq!(recovered.len(), model.len(), "cut={} survivors={}", cut, survivors);
        for k in 0..8u8 {
            prop_assert_eq!(
                recovered.get(&key_bytes(k)),
                model.get(&key_bytes(k)).cloned(),
                "key {} after cut={} survivors={}",
                k, cut, survivors
            );
        }

        // And the recovered store keeps working: one more commit, one
        // more reopen, still consistent.
        recovered.put(b"post", b"crash");
        drop(recovered);
        let again = FileBackend::open(&dir, WAL_ONLY).unwrap();
        prop_assert_eq!(again.get(b"post"), Some(b"crash".to_vec()));
    }

    /// Same property with snapshots in play: the cut hits the
    /// post-snapshot WAL tail, and recovery = snapshot + surviving tail
    /// frames. No committed batch below the snapshot is ever at risk.
    #[test]
    fn truncation_after_a_snapshot_recovers_snapshot_plus_tail(
        before in prop::collection::vec(batch_strategy(), 1..6),
        after in prop::collection::vec(batch_strategy(), 1..6),
        cut_ratio in 0.0f64..1.0,
    ) {
        let dir = scratch("snap-tail");
        let _guard = DirGuard(dir.clone());
        let opts = FileBackendOptions { snapshot_every: 0, ..WAL_ONLY };
        {
            let backend = FileBackend::open(&dir, opts).unwrap();
            let commit = |batch: &Batch| {
                let mut wb = WriteBatch::new();
                for (k, v) in batch {
                    wb = match v {
                        Some(v) => wb.put(key_bytes(*k), v.to_le_bytes().to_vec()),
                        None => wb.delete(key_bytes(*k)),
                    };
                }
                backend.commit(wb).unwrap();
            };
            for batch in &before {
                commit(batch);
            }
            backend.snapshot_now().unwrap();
            for batch in &after {
                commit(batch);
            }
        }
        // The snapshot rolled to a fresh segment holding only the
        // post-snapshot batches; cut inside it.
        let seg = wal_segment(&dir);
        let bytes = std::fs::read(&seg).unwrap();
        let cut = ((bytes.len() as f64) * cut_ratio) as usize;
        let mut survivors = 0usize;
        let mut at = 0usize;
        while let Ok(Some((_, next))) = parse_frame(&bytes[..cut], at) {
            survivors += 1;
            at = next;
        }
        std::fs::write(&seg, &bytes[..cut]).unwrap();

        let recovered = FileBackend::open(&dir, opts).unwrap();
        let mut all: Vec<Batch> = before.clone();
        all.extend_from_slice(&after);
        let model = model_after(&all, before.len() + survivors);
        for k in 0..8u8 {
            prop_assert_eq!(
                recovered.get(&key_bytes(k)),
                model.get(&key_bytes(k)).cloned(),
                "key {} cut={} survivors={}",
                k, cut, survivors
            );
        }
        prop_assert_eq!(recovered.len(), model.len());
    }

    /// **Concurrent group commit** under `sync_commits`: N threads
    /// commit multi-key batches through the cohort barrier, then the
    /// WAL is truncated at an arbitrary byte. Recovery must land on a
    /// **prefix-closed** set of commits: exactly the batches whose
    /// frames survived in full, in WAL order — never half a batch,
    /// never a later commit without an earlier one. (Group commit
    /// assigns sequence numbers under the appender lock, so WAL order
    /// is commit order even with 4 writers racing.)
    #[test]
    fn concurrent_group_commits_truncate_to_a_prefix_at_any_byte(
        commits_per_writer in 1u8..6,
        window_on in proptest::bool::ANY,
        cut_ratio in 0.0f64..1.0,
    ) {
        const WRITERS: u8 = 4;
        let dir = scratch("group");
        let _guard = DirGuard(dir.clone());
        let opts = FileBackendOptions {
            sync_commits: true,
            group_commit: om_common::config::GroupCommitPolicy::Fixed(if window_on {
                50
            } else {
                0
            }),
            ..WAL_ONLY
        };
        {
            let backend = std::sync::Arc::new(FileBackend::open(&dir, opts).unwrap());
            let mut handles = Vec::new();
            for w in 0..WRITERS {
                let backend = backend.clone();
                handles.push(std::thread::spawn(move || {
                    for i in 0..commits_per_writer {
                        // Two keys per batch: one per-writer, one
                        // contended — a torn recovery would split them.
                        let wb = WriteBatch::new()
                            .put(key_bytes(w), vec![i])
                            .put(b"shared".to_vec(), vec![w, i]);
                        backend.commit(wb).unwrap();
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        }
        let seg = wal_segment(&dir);
        let bytes = std::fs::read(&seg).unwrap();
        let cut = ((bytes.len() as f64) * cut_ratio) as usize;

        // The reference model: replay the whole frames that survive the
        // cut, in file order (== commit order).
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut at = 0usize;
        while let Ok(Some((payload, next))) = parse_frame(&bytes[..cut], at) {
            // seq u64 ++ n_ops u32 ++ ops — decode just enough to apply.
            let n_ops = u32::from_le_bytes(payload[8..12].try_into().unwrap()) as usize;
            let mut p = 12usize;
            for _ in 0..n_ops {
                let tag = payload[p];
                let key_len =
                    u32::from_le_bytes(payload[p + 1..p + 5].try_into().unwrap()) as usize;
                let key = payload[p + 5..p + 5 + key_len].to_vec();
                p += 5 + key_len;
                if tag == 1 {
                    let val_len =
                        u32::from_le_bytes(payload[p..p + 4].try_into().unwrap()) as usize;
                    model.insert(key, payload[p + 4..p + 4 + val_len].to_vec());
                    p += 4 + val_len;
                } else {
                    model.remove(&key);
                }
            }
            at = next;
        }

        std::fs::write(&seg, &bytes[..cut]).unwrap();
        let recovered = FileBackend::open(&dir, opts).unwrap();
        let live: BTreeMap<Vec<u8>, Vec<u8>> =
            recovered.scan_prefix(b"").into_iter().collect();
        prop_assert_eq!(&live, &model, "cut={} of {}", cut, bytes.len());
        // Acknowledged batches are a prefix: if any batch of writer w
        // survived, the shared key must hold a pair some writer wrote —
        // never a mix of two batches.
        if let Some(pair) = live.get(&b"shared"[..]) {
            prop_assert_eq!(pair.len(), 2);
        }
    }

    /// Incremental and full snapshot modes recover **identical state**
    /// from the same commit/snapshot schedule — base + delta chain +
    /// WAL tail must equal full snapshot + WAL tail, compaction
    /// included.
    #[test]
    fn incremental_and_full_snapshots_recover_identically(
        phases in prop::collection::vec(prop::collection::vec(batch_strategy(), 1..5), 1..4),
    ) {
        use om_common::config::SnapshotMode;
        let dir_full = scratch("eq-full");
        let _g1 = DirGuard(dir_full.clone());
        let dir_incr = scratch("eq-incr");
        let _g2 = DirGuard(dir_incr.clone());
        let full_opts = FileBackendOptions {
            snapshot_mode: SnapshotMode::Full,
            ..WAL_ONLY
        };
        // Tiny compaction thresholds so the property also walks the
        // fold-into-base path.
        let incr_opts = FileBackendOptions {
            snapshot_mode: SnapshotMode::Incremental,
            compact_max_deltas: 2,
            compact_ratio_pct: 150,
            ..WAL_ONLY
        };
        {
            let full = FileBackend::open(&dir_full, full_opts).unwrap();
            let incr = FileBackend::open(&dir_incr, incr_opts).unwrap();
            // Apply every phase to both stores; snapshot both between
            // phases (the last phase stays WAL-only).
            for (p, phase) in phases.iter().enumerate() {
                for batch in phase {
                    let mut wb = WriteBatch::new();
                    for (k, v) in batch {
                        wb = match v {
                            Some(v) => wb.put(key_bytes(*k), v.to_le_bytes().to_vec()),
                            None => wb.delete(key_bytes(*k)),
                        };
                    }
                    full.commit(wb.clone()).unwrap();
                    incr.commit(wb).unwrap();
                }
                if p + 1 < phases.len() {
                    full.snapshot_now().unwrap();
                    incr.snapshot_now().unwrap();
                }
            }
        }
        let full = FileBackend::open(&dir_full, full_opts).unwrap();
        let incr = FileBackend::open(&dir_incr, incr_opts).unwrap();
        prop_assert_eq!(
            full.scan_prefix(b""),
            incr.scan_prefix(b""),
            "snapshot modes diverged"
        );
        // And both keep accepting commits after recovery.
        full.put(b"post", b"1");
        incr.put(b"post", b"1");
        prop_assert_eq!(full.len(), incr.len());
    }

    /// The cold reader's **indexed** point gets and prefix scans agree
    /// with the full-chain-scan baseline AND with a reference model, for
    /// any commit/snapshot schedule — delta chains, tombstones, WAL
    /// tails and compaction included.
    #[test]
    fn indexed_cold_reads_equal_chain_scans_for_any_history(
        phases in prop::collection::vec(prop::collection::vec(batch_strategy(), 1..5), 1..5),
        compact in proptest::bool::ANY,
    ) {
        use om_storage::{ColdReader, ColdReaderOptions};
        let dir = scratch("cold-eq");
        let _guard = DirGuard(dir.clone());
        // Small compaction thresholds sometimes, so the property also
        // covers chains that folded into a fresh base mid-history.
        let opts = FileBackendOptions {
            compact_max_deltas: if compact { 2 } else { 64 },
            compact_ratio_pct: 150,
            ..WAL_ONLY
        };
        let mut all: Vec<Batch> = Vec::new();
        {
            let backend = FileBackend::open(&dir, opts).unwrap();
            for (p, phase) in phases.iter().enumerate() {
                for batch in phase {
                    let mut wb = WriteBatch::new();
                    for (k, v) in batch {
                        wb = match v {
                            Some(v) => wb.put(key_bytes(*k), v.to_le_bytes().to_vec()),
                            None => wb.delete(key_bytes(*k)),
                        };
                    }
                    backend.commit(wb).unwrap();
                    all.push(batch.clone());
                }
                if p + 1 < phases.len() {
                    backend.snapshot_now().unwrap();
                }
            }
        }
        let model = model_after(&all, all.len());
        for use_index in [true, false] {
            let reader =
                ColdReader::open_with(&dir, ColdReaderOptions { use_index }).unwrap();
            for k in 0..8u8 {
                prop_assert_eq!(
                    reader.get(&key_bytes(k)).unwrap(),
                    model.get(&key_bytes(k)).cloned(),
                    "key {} use_index={}",
                    k,
                    use_index
                );
            }
            prop_assert_eq!(reader.get(b"absent").unwrap(), None);
            let scanned: BTreeMap<Vec<u8>, Vec<u8>> =
                reader.scan_prefix(b"").unwrap().into_iter().collect();
            prop_assert_eq!(&scanned, &model, "use_index={}", use_index);
        }
    }

    /// Damaging or deleting index sidecars never changes a cold read:
    /// the reader detects the invalid sidecar (every index frame is
    /// CRC-checked), rebuilds the index in memory, and serves exactly
    /// the same state the intact chain holds.
    #[test]
    fn damaged_or_missing_indexes_degrade_safely(
        phases in prop::collection::vec(prop::collection::vec(batch_strategy(), 1..4), 2..5),
        damage in 0u8..3,
    ) {
        use om_storage::ColdReader;
        let dir = scratch("cold-damage");
        let _guard = DirGuard(dir.clone());
        let mut all: Vec<Batch> = Vec::new();
        {
            let backend = FileBackend::open(&dir, WAL_ONLY).unwrap();
            for (p, phase) in phases.iter().enumerate() {
                for batch in phase {
                    let mut wb = WriteBatch::new();
                    for (k, v) in batch {
                        wb = match v {
                            Some(v) => wb.put(key_bytes(*k), v.to_le_bytes().to_vec()),
                            None => wb.delete(key_bytes(*k)),
                        };
                    }
                    backend.commit(wb).unwrap();
                    all.push(batch.clone());
                }
                if p + 1 < phases.len() {
                    backend.snapshot_now().unwrap();
                }
            }
        }
        // Sabotage every sidecar the writer produced.
        let mut sidecars = 0;
        for entry in std::fs::read_dir(dir.join("snap")).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "idx") {
                sidecars += 1;
                match damage {
                    0 => std::fs::remove_file(&path).unwrap(),
                    1 => {
                        let bytes = std::fs::read(&path).unwrap();
                        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
                    }
                    _ => {
                        let mut bytes = std::fs::read(&path).unwrap();
                        let mid = bytes.len() / 2;
                        bytes[mid] ^= 0xff;
                        std::fs::write(&path, &bytes).unwrap();
                    }
                }
            }
        }
        prop_assert!(sidecars > 0, "every snapshot chain file carries a sidecar");
        let model = model_after(&all, all.len());
        let reader = ColdReader::open(&dir).unwrap();
        for k in 0..8u8 {
            prop_assert_eq!(
                reader.get(&key_bytes(k)).unwrap(),
                model.get(&key_bytes(k)).cloned(),
                "key {} damage={}",
                k,
                damage
            );
        }
        let scanned: BTreeMap<Vec<u8>, Vec<u8>> =
            reader.scan_prefix(b"").unwrap().into_iter().collect();
        prop_assert_eq!(&scanned, &model, "damage={}", damage);
    }
}
