//! Property-based tests of the `StateBackend` contract, in the style of
//! `om-mvcc`'s `si_props.rs`:
//!
//! * both backends agree with a plain `BTreeMap` reference model over
//!   randomized sequential op streams (puts, deletes, multi-key commits);
//! * the snapshot-isolation backend **never exposes a torn multi-key
//!   commit** to a concurrent snapshot read, whatever the writer/reader
//!   interleaving;
//! * the eventual backend's secondary replica **converges to the primary
//!   after quiesce**, whatever write sequence (including overwrites and
//!   deletes) preceded it;
//! * sessions provide read-your-writes on both disciplines, even while
//!   the eventual backend's replica lags arbitrarily.

use om_common::config::BackendKind;
use om_storage::{make_backend, EventualBackend, SnapshotBackend, StateBackend, WriteBatch};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One step of a randomized backend workload.
#[derive(Debug, Clone)]
enum Step {
    Put(u8, u16),
    Delete(u8),
    Get(u8),
    /// Multi-key commit writing `val` to every key in the batch.
    Commit(Vec<u8>, u16),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (any::<u8>(), any::<u16>()).prop_map(|(k, v)| Step::Put(k % 16, v)),
        any::<u8>().prop_map(|k| Step::Delete(k % 16)),
        any::<u8>().prop_map(|k| Step::Get(k % 16)),
        (prop::collection::vec(any::<u8>(), 1..6), any::<u16>())
            .prop_map(|(ks, v)| Step::Commit(ks.into_iter().map(|k| k % 16).collect(), v)),
    ]
}

fn key_bytes(k: u8) -> Vec<u8> {
    vec![b'k', k]
}

fn val_bytes(v: u16) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

fn run_model_check(backend: &dyn StateBackend, steps: &[Step]) -> Result<(), TestCaseError> {
    let mut model: BTreeMap<u8, u16> = BTreeMap::new();
    for step in steps {
        match step {
            Step::Put(k, v) => {
                backend.put(&key_bytes(*k), &val_bytes(*v));
                model.insert(*k, *v);
            }
            Step::Delete(k) => {
                backend.delete(&key_bytes(*k));
                model.remove(k);
            }
            Step::Get(k) => {
                prop_assert_eq!(
                    backend.get(&key_bytes(*k)),
                    model.get(k).map(|v| val_bytes(*v)),
                    "backend {:?} diverged from model on key {}",
                    backend.kind(),
                    k
                );
            }
            Step::Commit(keys, v) => {
                let mut batch = WriteBatch::new();
                for k in keys {
                    batch = batch.put(key_bytes(*k), val_bytes(*v));
                    model.insert(*k, *v);
                }
                let n = batch.len();
                let applied = backend.commit(batch).expect("no concurrency, no conflicts");
                prop_assert_eq!(applied, n);
            }
        }
    }
    // Final state: every live key agrees; backend length matches.
    for (k, v) in &model {
        prop_assert_eq!(backend.get(&key_bytes(*k)), Some(val_bytes(*v)));
    }
    prop_assert_eq!(backend.len(), model.len(), "{:?}", backend.kind());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sequential op streams match the reference model on both backends.
    #[test]
    fn sequential_stream_matches_reference_model(
        steps in prop::collection::vec(step_strategy(), 1..48)
    ) {
        for kind in BackendKind::ALL {
            let backend = make_backend(kind, 4);
            run_model_check(backend.as_ref(), &steps)?;
            backend.quiesce();
        }
    }

    /// Whatever write/overwrite/delete sequence ran, once writers stop
    /// and the backend quiesces, the eventual secondary agrees with the
    /// primary (per-key last-writer-wins convergence through the
    /// reordering applier).
    #[test]
    fn eventual_secondary_converges_after_quiesce(
        steps in prop::collection::vec(step_strategy(), 1..64)
    ) {
        let backend = EventualBackend::new(4);
        for step in &steps {
            match step {
                Step::Put(k, v) => backend.put(&key_bytes(*k), &val_bytes(*v)),
                Step::Delete(k) => backend.delete(&key_bytes(*k)),
                Step::Get(_) => {}
                Step::Commit(keys, v) => {
                    let mut batch = WriteBatch::new();
                    for k in keys {
                        batch = batch.put(key_bytes(*k), val_bytes(*v));
                    }
                    backend.commit(batch).unwrap();
                }
            }
        }
        backend.quiesce();
        prop_assert!(
            backend.replicas_converged(),
            "secondary must equal primary after quiesce"
        );
    }

    /// Read-your-writes: a session always observes its own most recent
    /// write per key, on both disciplines, regardless of replica lag.
    #[test]
    fn sessions_read_their_own_writes(
        writes in prop::collection::vec((any::<u8>(), any::<u16>()), 1..32)
    ) {
        for kind in BackendKind::ALL {
            let backend = make_backend(kind, 4);
            let mut session = backend.session();
            let mut last: BTreeMap<u8, u16> = BTreeMap::new();
            for (k, v) in &writes {
                let k = k % 8;
                session.put(&key_bytes(k), &val_bytes(*v));
                last.insert(k, *v);
                prop_assert_eq!(
                    session.get(&key_bytes(k)),
                    Some(val_bytes(*v)),
                    "session lost its own write on {:?}",
                    kind
                );
            }
            for (k, v) in &last {
                prop_assert_eq!(session.get(&key_bytes(*k)), Some(val_bytes(*v)));
            }
        }
    }
}

/// The snapshot-isolation backend must never expose a torn multi-key
/// commit: every commit writes one round number to *all* keys, so any
/// consistent snapshot sees a single distinct value across them.
#[test]
fn si_backend_never_exposes_torn_commits() {
    let backend = Arc::new(SnapshotBackend::new(8));
    let keys: Vec<Vec<u8>> = (0..12u8).map(key_bytes).collect();
    // Seed so readers always see a full row.
    {
        let mut batch = WriteBatch::new();
        for k in &keys {
            batch = batch.put(k.clone(), val_bytes(0));
        }
        backend.commit(batch).unwrap();
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut writers = Vec::new();
    for w in 0..2u16 {
        let backend = backend.clone();
        let keys = keys.clone();
        writers.push(std::thread::spawn(move || {
            let mut round = 1u16;
            let mut committed = 0u32;
            while committed < 150 {
                let mut batch = WriteBatch::new();
                for k in &keys {
                    batch = batch.put(k.clone(), val_bytes(w * 10_000 + round));
                }
                if backend.commit(batch).is_ok() {
                    committed += 1;
                }
                round += 1;
            }
        }));
    }
    let mut readers = Vec::new();
    for _ in 0..3 {
        let backend = backend.clone();
        let keys = keys.clone();
        let stop = stop.clone();
        readers.push(std::thread::spawn(move || {
            let key_refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            let mut observed = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let values = backend.get_many(&key_refs);
                let distinct: std::collections::HashSet<_> = values.iter().collect();
                assert!(
                    distinct.len() == 1,
                    "torn commit observed under snapshot isolation: {values:?}"
                );
                observed += 1;
            }
            observed
        }));
    }
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let mut total_reads = 0;
    for r in readers {
        total_reads += r.join().unwrap();
    }
    assert!(total_reads > 0, "readers must have raced the writers");
}

/// Contrast case documenting the semantic gap the matrix measures: the
/// eventual backend applies multi-key commits per key, so a racing
/// reader *may* observe a torn subset (we only require that it never
/// observes values that were never written, and that the state converges
/// afterwards).
#[test]
fn eventual_backend_commits_are_not_atomic_but_converge() {
    let backend = Arc::new(EventualBackend::new(8));
    let keys: Vec<Vec<u8>> = (0..12u8).map(key_bytes).collect();
    let writer = {
        let backend = backend.clone();
        let keys = keys.clone();
        std::thread::spawn(move || {
            for round in 0..300u16 {
                let mut batch = WriteBatch::new();
                for k in &keys {
                    batch = batch.put(k.clone(), val_bytes(round));
                }
                backend.commit(batch).unwrap();
            }
        })
    };
    let key_refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    let valid: std::collections::HashSet<Option<Vec<u8>>> = (0..300u16)
        .map(|r| Some(val_bytes(r)))
        .chain(std::iter::once(None))
        .collect();
    for _ in 0..200 {
        for v in backend.get_many(&key_refs) {
            assert!(valid.contains(&v), "value from nowhere: {v:?}");
        }
    }
    writer.join().unwrap();
    backend.quiesce();
    assert!(backend.replicas_converged());
    let final_vals = backend.get_many(&key_refs);
    assert!(
        final_vals.iter().all(|v| v == &Some(val_bytes(299))),
        "after quiesce every key holds the last committed round"
    );
}
