//! Crash-consistency torture harness for the durable store.
//!
//! The tentpole loop: run a deterministic workload through a recording
//! [`FaultVfs`], then — for **every** write boundary the op log holds —
//! materialize the directory a machine that lost power at that op could
//! reboot with ([`CrashImage`]), recover a fresh [`FileBackend`] from
//! it, and assert the recovery contract:
//!
//! * **acks are prefix-closed** — the recovered state equals the model
//!   after exactly `j` commits for some `j` (no gaps, no reordering);
//! * **no acknowledged commit below the boundary is lost** — with
//!   `sync_commits`, every commit acknowledged while the log was at or
//!   below the boundary must be in the recovered prefix;
//! * **no torn value is visible** — every recovered value is exactly a
//!   value some commit wrote, never a byte-level hybrid.
//!
//! The default run sweeps every boundary of a small workload under a
//! couple of crash seeds (the CI "torture slice"); `OM_TORTURE_FULL=1`
//! widens the workload and the seed set. Every assertion carries the
//! `seed=…/boundary=…` coordinates, and `OM_TORTURE_SEED=<n>` replays a
//! failing seed exactly.
//!
//! Also here: the scheduled-fault matrix (torn write, transient EINTR,
//! disk-full, read-side corruption) and the WAL byte-flip tests — one
//! flipped byte in each frame section (length, CRC, payload) must make
//! recovery truncate at the damaged frame or fail loudly, never serve
//! the damage.

use om_common::config::{GroupCommitPolicy, SnapshotMode};
use om_common::OmError;
use om_storage::vfs::{CrashImage, FaultVfs};
use om_storage::{FileBackend, FileBackendOptions, StateBackend, WriteBatch};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// -- sweep configuration ----------------------------------------------------

fn full_sweep() -> bool {
    std::env::var_os("OM_TORTURE_FULL").is_some()
}

/// Base crash seed: overridable so a CI failure line can be replayed
/// byte-for-byte with `OM_TORTURE_SEED=<n>`.
fn torture_seed() -> u64 {
    std::env::var("OM_TORTURE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FF_EE00)
}

fn crash_seeds() -> Vec<u64> {
    let base = torture_seed();
    let n = if full_sweep() { 6 } else { 2 };
    (0..n).map(|i| base.wrapping_add(i)).collect()
}

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "om-torture-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct DirGuard(PathBuf);
impl Drop for DirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

// -- the model workload -----------------------------------------------------
//
// Commit k (1-based) writes `key-<k % KEYS>` = a value derived from k
// and the marker `seq` = k **in one atomic batch**. The marker names
// the prefix; the rotating keys make a lost/reordered commit visible in
// the map itself; the long values make torn frames produce byte-level
// hybrids the equality check would catch.

const KEYS: u64 = 5;

fn wkey(k: u64) -> Vec<u8> {
    format!("key-{}", k % KEYS).into_bytes()
}

fn wvalue(k: u64) -> Vec<u8> {
    format!("value-{k}-{}", "x".repeat(64 + (k as usize % 17))).into_bytes()
}

/// Expected full state after exactly `j` commits.
fn model_at(j: u64) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let mut m = BTreeMap::new();
    for k in 1..=j {
        m.insert(wkey(k), wvalue(k));
    }
    if j > 0 {
        m.insert(b"seq".to_vec(), j.to_le_bytes().to_vec());
    }
    m
}

/// Dumps the recovered store as a map over every key the workload can
/// ever write (so an extra/ghost key cannot hide).
fn dump(backend: &FileBackend) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let mut m = BTreeMap::new();
    for k in 0..KEYS {
        let key = format!("key-{k}").into_bytes();
        if let Some(v) = backend.get(&key) {
            m.insert(key, v);
        }
    }
    if let Some(v) = backend.get(b"seq") {
        m.insert(b"seq".to_vec(), v);
    }
    m
}

/// The recovered prefix length, per the marker key.
fn recovered_seq(backend: &FileBackend) -> u64 {
    backend
        .get(b"seq")
        .map(|v| u64::from_le_bytes(v[..8].try_into().expect("marker is 8 bytes")))
        .unwrap_or(0)
}

fn commit_one(backend: &FileBackend, k: u64) {
    backend
        .commit(
            WriteBatch::new()
                .put(wkey(k), wvalue(k))
                .put(&b"seq"[..], k.to_le_bytes().to_vec()),
        )
        .unwrap_or_else(|e| panic!("commit {k} failed with no fault scheduled: {e}"));
}

// -- the boundary sweep -----------------------------------------------------

/// Runs `commits` through a recording VFS with the given options, then
/// crash-tests every op-log boundary under every seed.
fn sweep_every_boundary(tag: &str, commits: u64, options: FileBackendOptions) {
    let root = scratch(tag);
    let _g = DirGuard(root.clone());
    let vfs = FaultVfs::new(torture_seed()).recording();

    // Workload: every commit acked (no faults), ack boundaries recorded.
    let mut acks: Vec<(u64, usize)> = Vec::new();
    {
        let backend =
            FileBackend::open_with_vfs(&root, options, Arc::new(vfs.clone())).unwrap();
        for k in 1..=commits {
            commit_one(&backend, k);
            // `sync_commits` means the ack implies every op recorded so
            // far is on media: the durability floor of later crashes.
            acks.push((k, vfs.log_len()));
        }
    }
    let log = vfs.take_log();
    assert!(
        log.len() > commits as usize,
        "{tag}: op log too small to be real ({} ops)",
        log.len()
    );
    let seeds = crash_seeds();
    eprintln!(
        "torture[{tag}]: {} ops x {} seeds (base seed {:#x}; OM_TORTURE_SEED replays, \
         OM_TORTURE_FULL=1 widens)",
        log.len(),
        seeds.len(),
        torture_seed()
    );

    for boundary in 0..=log.len() {
        for &seed in &seeds {
            let ctx = format!("{tag}: seed={seed:#x} boundary={boundary}/{}", log.len());
            let out = scratch("img");
            let _og = DirGuard(out.clone());
            CrashImage::materialize(&log, boundary, seed, &root, &out)
                .unwrap_or_else(|e| panic!("{ctx}: materialize failed: {e}"));
            let recovered = FileBackend::open(&out, options)
                .unwrap_or_else(|e| panic!("{ctx}: power-loss image must recover: {e}"));

            let j = recovered_seq(&recovered);
            assert!(j <= commits, "{ctx}: recovered seq {j} beyond what was written");
            // Prefix-closed + no torn value: the whole store equals the
            // model after exactly j commits.
            assert_eq!(dump(&recovered), model_at(j), "{ctx}: state is not the prefix {j}");
            // Durability floor: every commit acked at-or-below the
            // boundary is in the prefix.
            let floor = acks
                .iter()
                .filter(|(_, at)| *at <= boundary)
                .map(|(k, _)| *k)
                .max()
                .unwrap_or(0);
            assert!(
                j >= floor,
                "{ctx}: acked commit lost — recovered prefix {j} < acked floor {floor}"
            );
        }
    }
}

/// The headline sweep: WAL + incremental snapshots + deltas + pruning +
/// segment rolls, power loss at every recorded write boundary.
#[test]
fn power_loss_at_every_boundary_recovers_an_acked_prefix_incremental() {
    let commits = if full_sweep() { 64 } else { 20 };
    sweep_every_boundary(
        "incremental",
        commits,
        FileBackendOptions {
            shards: 2,
            snapshot_every: 6,
            segment_bytes: 512,
            sync_commits: true,
            group_commit: GroupCommitPolicy::Off,
            snapshot_mode: SnapshotMode::Incremental,
            compact_max_deltas: 2,
            compact_ratio_pct: 100,
            recovery_threads: 1,
        },
    );
}

/// Same contract under full-base snapshots (tmp + fsync + rename + dir
/// fsync + WAL prune on every snapshot boundary).
#[test]
fn power_loss_at_every_boundary_recovers_an_acked_prefix_full_snapshots() {
    let commits = if full_sweep() { 48 } else { 16 };
    sweep_every_boundary(
        "full-snap",
        commits,
        FileBackendOptions {
            shards: 2,
            snapshot_every: 5,
            segment_bytes: 768,
            sync_commits: true,
            group_commit: GroupCommitPolicy::Off,
            snapshot_mode: SnapshotMode::Full,
            compact_max_deltas: 16,
            compact_ratio_pct: 100,
            recovery_threads: 1,
        },
    );
}

/// The grouped write path (cohort barrier, leader flush) honours the
/// same contract — single-threaded here so the op order is exact.
#[test]
fn power_loss_sweep_covers_the_group_commit_write_path() {
    let commits = if full_sweep() { 32 } else { 12 };
    sweep_every_boundary(
        "grouped",
        commits,
        FileBackendOptions {
            shards: 2,
            snapshot_every: 8,
            segment_bytes: 1 << 20,
            sync_commits: true,
            group_commit: GroupCommitPolicy::Fixed(0),
            snapshot_mode: SnapshotMode::Incremental,
            compact_max_deltas: 4,
            compact_ratio_pct: 100,
            recovery_threads: 1,
        },
    );
}

// -- WAL read-side corruption (byte flips per frame section) ----------------

/// Writes `commits` through a real VFS with no snapshots (so every
/// commit is one WAL frame in one segment) and returns the store dir
/// plus the byte ranges of every frame.
fn wal_with_frames(commits: u64) -> (PathBuf, DirGuard, PathBuf, Vec<(usize, usize)>) {
    let root = scratch("flip");
    let guard = DirGuard(root.clone());
    let options = FileBackendOptions {
        shards: 2,
        snapshot_every: 0,
        sync_commits: true,
        group_commit: GroupCommitPolicy::Off,
        ..FileBackendOptions::default()
    };
    {
        let backend = FileBackend::open(&root, options).unwrap();
        for k in 1..=commits {
            commit_one(&backend, k);
        }
    }
    let wal = std::fs::read_dir(root.join("wal"))
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "log"))
        .expect("one WAL segment");
    let bytes = std::fs::read(&wal).unwrap();
    let mut frames = Vec::new();
    let mut at = 0usize;
    while let Ok(Some((payload, next))) = om_common::checksum::parse_frame(&bytes, at) {
        let _ = payload;
        frames.push((at, next));
        at = next;
    }
    assert_eq!(frames.len() as u64, commits, "one frame per commit");
    (root, guard, wal, frames)
}

/// Satellite (c): flip one byte in each section of a mid-log frame —
/// the 4-byte length, the 4-byte CRC, and the payload — and recover.
/// The damaged frame and everything after it must be dropped (the WAL
/// cannot tell a flipped byte from a torn tail), and the surviving
/// state must be exactly the prefix before it. Nothing corrupt is ever
/// served.
#[test]
fn wal_byte_flip_in_each_frame_section_truncates_at_the_damaged_frame() {
    const COMMITS: u64 = 8;
    const DAMAGED: usize = 4; // 0-based frame index => commits 1..=4 survive
    let (root, _g, wal, frames) = wal_with_frames(COMMITS);
    let (start, _end) = frames[DAMAGED];
    let pristine = std::fs::read(&wal).unwrap();
    for (section, at) in [
        ("len", start + 1),
        ("crc", start + 5),
        ("payload", start + 11),
    ] {
        let mut bytes = pristine.clone();
        bytes[at] ^= 0x40;
        std::fs::write(&wal, &bytes).unwrap();
        let recovered = FileBackend::open(
            &root,
            FileBackendOptions {
                shards: 2,
                snapshot_every: 0,
                sync_commits: true,
                group_commit: GroupCommitPolicy::Off,
                ..FileBackendOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("flip in {section}: final-segment damage must recover: {e}"));
        assert_eq!(
            recovered_seq(&recovered),
            DAMAGED as u64,
            "flip in {section}: recovery must stop exactly at the damaged frame"
        );
        assert_eq!(
            dump(&recovered),
            model_at(DAMAGED as u64),
            "flip in {section}: recovered state must be the clean prefix"
        );
        drop(recovered);
        // Recovery truncated the tail: re-opening is clean and appends
        // resume from the surviving prefix.
        let reopened = FileBackend::open(
            &root,
            FileBackendOptions {
                shards: 2,
                snapshot_every: 0,
                sync_commits: true,
                group_commit: GroupCommitPolicy::Off,
                ..FileBackendOptions::default()
            },
        )
        .unwrap();
        assert_eq!(recovered_seq(&reopened), DAMAGED as u64, "flip in {section}");
        drop(reopened);
        std::fs::write(&wal, &pristine).unwrap();
    }
}

/// A flipped byte in a **non-final** segment is not a crash artifact —
/// a torn tail can only exist at the very end of the log — so recovery
/// must refuse loudly instead of silently dropping acknowledged
/// commits.
#[test]
fn wal_corruption_in_a_non_final_segment_fails_loudly() {
    let root = scratch("midflip");
    let _g = DirGuard(root.clone());
    let options = FileBackendOptions {
        shards: 2,
        snapshot_every: 0,
        segment_bytes: 256, // force several segments
        sync_commits: true,
        group_commit: GroupCommitPolicy::Off,
        ..FileBackendOptions::default()
    };
    {
        let backend = FileBackend::open(&root, options).unwrap();
        for k in 1..=12u64 {
            commit_one(&backend, k);
        }
    }
    let mut segments: Vec<PathBuf> = std::fs::read_dir(root.join("wal"))
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "log"))
        .collect();
    segments.sort();
    assert!(segments.len() >= 2, "workload must span segments: {segments:?}");
    let first = &segments[0];
    let mut bytes = std::fs::read(first).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(first, &bytes).unwrap();
    let err = FileBackend::open(&root, options)
        .err()
        .expect("corruption below the final segment must refuse to open");
    let msg = err.to_string();
    assert!(
        msg.contains("not the final segment"),
        "error must name the damaged segment's position: {msg}"
    );
}

// -- scheduled-fault matrix -------------------------------------------------

fn matrix_options() -> FileBackendOptions {
    FileBackendOptions {
        shards: 2,
        snapshot_every: 0,
        sync_commits: true,
        group_commit: GroupCommitPolicy::Off,
        ..FileBackendOptions::default()
    }
}

/// A torn commit write wedges the store; unwedge truncates the torn
/// bytes and commits resume; a cold reopen agrees with the repair.
#[test]
fn torn_write_wedges_and_unwedge_truncates_the_torn_tail() {
    let root = scratch("torn");
    let _g = DirGuard(root.clone());
    let vfs = FaultVfs::new(torture_seed()).torn_write(2);
    let backend =
        FileBackend::open_with_vfs(&root, matrix_options(), Arc::new(vfs.clone())).unwrap();
    commit_one(&backend, 1);
    let err = backend
        .commit(WriteBatch::new().put(wkey(2), wvalue(2)).put(&b"seq"[..], 2u64.to_le_bytes().to_vec()))
        .expect_err("the torn write must fail the commit");
    assert!(matches!(err, OmError::Wedged(_)), "torn write must wedge: {err}");
    assert!(backend.is_wedged());
    assert!(vfs.fired().iter().any(|f| f == "torn write"), "{:?}", vfs.fired());
    // Fail-fast while wedged; no partial frame ever becomes visible.
    assert!(backend.try_put(b"x", b"y").is_err());
    let torn = FileBackend::unwedge(&backend).expect("repair succeeds");
    assert!(torn > 0, "the torn prefix had bytes to drop");
    assert!(!backend.is_wedged());
    commit_one(&backend, 2);
    assert_eq!(dump(&backend), model_at(2));
    drop(backend);
    let reborn = FileBackend::open(&root, matrix_options()).unwrap();
    assert_eq!(dump(&reborn), model_at(2), "cold reopen agrees with the repair");
}

/// Transient EINTR-class interruptions are retried inside the store:
/// the commit acks normally and nothing wedges.
#[test]
fn interrupted_writes_are_retried_transparently() {
    let root = scratch("eintr");
    let _g = DirGuard(root.clone());
    let vfs = FaultVfs::new(torture_seed()).interrupt_write(2);
    let backend =
        FileBackend::open_with_vfs(&root, matrix_options(), Arc::new(vfs.clone())).unwrap();
    commit_one(&backend, 1);
    commit_one(&backend, 2);
    assert!(!backend.is_wedged(), "a retried interrupt must not wedge");
    assert!(vfs.fired().iter().any(|f| f == "interrupted write"), "{:?}", vfs.fired());
    drop(backend);
    let reborn = FileBackend::open(&root, matrix_options()).unwrap();
    assert_eq!(dump(&reborn), model_at(2));
}

/// Disk-full wedges the store exactly like any other failed write: the
/// acked prefix stays durable and readable after a cold reopen.
#[test]
fn disk_full_wedges_and_the_acked_prefix_survives() {
    let root = scratch("full");
    let _g = DirGuard(root.clone());
    let vfs = FaultVfs::new(torture_seed()).disk_full_after(600);
    let backend =
        FileBackend::open_with_vfs(&root, matrix_options(), Arc::new(vfs.clone())).unwrap();
    let mut acked = 0u64;
    for k in 1..=20u64 {
        let batch = WriteBatch::new()
            .put(wkey(k), wvalue(k))
            .put(&b"seq"[..], k.to_le_bytes().to_vec());
        match backend.commit(batch) {
            Ok(_) => acked = k,
            Err(e) => {
                assert!(matches!(e, OmError::Wedged(_)), "disk full must wedge: {e}");
                break;
            }
        }
    }
    assert!(acked >= 1, "the byte budget admits at least one commit");
    assert!(backend.is_wedged());
    assert!(vfs.fired().iter().any(|f| f == "disk full"), "{:?}", vfs.fired());
    drop(backend);
    let reborn = FileBackend::open(&root, matrix_options()).unwrap();
    assert_eq!(dump(&reborn), model_at(acked), "acked prefix survives disk-full");
}

/// Read-side corruption during replay (a bit flip on the recovery
/// read) behaves like frame damage: the store either truncates at the
/// damaged frame — leaving a clean, shorter prefix — or refuses to
/// open. It never serves the flipped bytes.
#[test]
fn read_corruption_on_replay_truncates_or_fails_loudly() {
    const COMMITS: u64 = 6;
    let root = scratch("corrupt-read");
    let _g = DirGuard(root.clone());
    {
        let backend = FileBackend::open(&root, matrix_options()).unwrap();
        for k in 1..=COMMITS {
            commit_one(&backend, k);
        }
    }
    let mut outcomes = Vec::new();
    for nth in 1..=2u64 {
        let vfs = FaultVfs::new(torture_seed().wrapping_add(nth)).corrupt_read(nth);
        match FileBackend::open_with_vfs(&root, matrix_options(), Arc::new(vfs.clone())) {
            Ok(backend) => {
                let j = recovered_seq(&backend);
                assert!(j <= COMMITS, "read corruption invented commits");
                assert_eq!(
                    dump(&backend),
                    model_at(j),
                    "nth={nth}: a corrupt replay read must never leave a hybrid state"
                );
                outcomes.push(format!("truncated to {j}"));
            }
            Err(e) => outcomes.push(format!("refused: {e}")),
        }
        // The pristine on-disk bytes were never harmed: a clean reopen
        // still sees everything (replay truncation can shorten the WAL,
        // so only assert when the open refused).
        if outcomes.last().unwrap().starts_with("refused") {
            let clean = FileBackend::open(&root, matrix_options()).unwrap();
            assert_eq!(dump(&clean), model_at(COMMITS), "nth={nth}: disk bytes untouched");
        }
    }
    eprintln!("read-corruption outcomes: {outcomes:?}");
}
