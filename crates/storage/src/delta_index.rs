//! Sidecar indexes over the snapshot chain, and the **cold reader**
//! that uses them.
//!
//! PR 5's incremental snapshots made the write path cheap but left cold
//! reads paying O(chain): answering a single `get` from disk meant
//! scanning the base plus *every* delta file. This module closes that
//! gap with a per-file sidecar index (`snap/<stem>-<seq>.idx`) written
//! alongside every v2 base/delta, holding:
//!
//! * a **bloom filter** over the file's keys — a cold point-`get`
//!   skips every delta whose bloom rejects the key, so the number of
//!   files *read* stops growing with chain length, and
//! * **sparse key samples** per partition section (every
//!   `SAMPLE_EVERY`-th key with its absolute byte offset) — a file
//!   that may contain the key is scanned from the greatest sample at or
//!   below it, not from byte 0.
//!
//! The index is **advisory**: it is rebuilt from the data file whenever
//! it is missing or fails validation (creation-crash, truncation, bit
//! rot — the sidecar carries the same CRC-framed encoding as everything
//! else), so a damaged `.idx` can degrade a read back to a chain scan
//! but can never change its result. `docs/DURABILITY.md` specifies the
//! byte format.
//!
//! [`ColdReader`] is the consumer: it opens a store directory
//! *read-only* (taking the same directory lock a live backend would),
//! parses only headers, indexes and the WAL tail, and then answers
//! point-`get`s and prefix scans straight from the files — the
//! "recovery-lite" path a point lookup after a crash actually needs,
//! measured by the `b2_cold_read` bench cells.

use crate::backend::{shard_of, WriteOp};
use crate::file::{
    decode_batch, decode_op_payload, decode_snapshot_entry, parse_snap_header, sorted_files_in,
    SnapHeader,
};
use om_common::checksum::{parse_frame, push_frame};
use om_common::{OmError, OmResult};
use std::collections::BTreeMap;
use std::fs::{self, File};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Magic payload prefix of an index sidecar's header frame.
pub(crate) const INDEX_MAGIC: &[u8; 8] = b"OMDIDX01";

/// One key in every `SAMPLE_EVERY` is sampled into the sparse index
/// (the first key of every partition always is), bounding a region scan
/// to at most this many entry frames.
pub(crate) const SAMPLE_EVERY: usize = 16;

// -- bloom filter -----------------------------------------------------------

/// Split-and-mix of an FNV-1a seed: two independent 64-bit hashes drive
/// the double-hashing scheme `h1 + i*h2`.
fn bloom_hashes(key: &[u8]) -> (u64, u64) {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (h, (z ^ (z >> 31)) | 1)
}

const BLOOM_HASHES: u32 = 6;

#[derive(Debug, Clone)]
struct Bloom {
    bits: Vec<u8>,
    /// Power of two, so `hash & (n_bits-1)` replaces the modulo.
    n_bits: u64,
}

impl Bloom {
    /// ~10 bits per key (≈1% false positives at 6 hashes), floor 64.
    fn with_capacity(n_keys: u64) -> Self {
        let n_bits = (n_keys.saturating_mul(10)).next_power_of_two().max(64);
        Self {
            bits: vec![0u8; (n_bits / 8) as usize],
            n_bits,
        }
    }

    fn from_bits(bits: Vec<u8>, n_bits: u64) -> Option<Self> {
        if !n_bits.is_power_of_two() || n_bits < 8 || bits.len() as u64 != n_bits / 8 {
            return None;
        }
        Some(Self { bits, n_bits })
    }

    fn insert_hashes(&mut self, h1: u64, h2: u64) {
        for i in 0..u64::from(BLOOM_HASHES) {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) & (self.n_bits - 1);
            self.bits[(bit / 8) as usize] |= 1 << (bit % 8);
        }
    }

    fn may_contain(&self, key: &[u8]) -> bool {
        let (h1, h2) = bloom_hashes(key);
        (0..u64::from(BLOOM_HASHES)).all(|i| {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) & (self.n_bits - 1);
            self.bits[(bit / 8) as usize] & (1 << (bit % 8)) != 0
        })
    }
}

// -- the index --------------------------------------------------------------

/// Per-partition build output: the sparse samples plus the bloom hashes
/// of every key seen, produced while walking one partition section in
/// key order (recovery workers build these concurrently).
#[derive(Debug, Default)]
pub(crate) struct PartBuild {
    samples: Vec<(Vec<u8>, u64)>,
    hashes: Vec<(u64, u64)>,
}

impl PartBuild {
    /// Records `key` (at absolute file offset `off`) as the next entry
    /// of this partition. Keys must arrive in ascending order — the
    /// order v2 sections are written in.
    pub(crate) fn add(&mut self, key: &[u8], off: u64) {
        if self.hashes.len().is_multiple_of(SAMPLE_EVERY) {
            self.samples.push((key.to_vec(), off));
        }
        self.hashes.push(bloom_hashes(key));
    }

    fn n_keys(&self) -> usize {
        self.hashes.len()
    }
}

/// The decoded sidecar index of one base or delta file: a bloom filter
/// over its keys plus sparse `(key, offset)` samples per partition
/// section. Built by the snapshot writer, rebuilt from the data file on
/// open when the sidecar is missing or damaged.
#[derive(Debug, Clone)]
pub struct DeltaIndex {
    seq: u64,
    n_entries: u64,
    bloom: Bloom,
    parts: Vec<Vec<(Vec<u8>, u64)>>,
}

impl DeltaIndex {
    /// Assembles the index from per-partition builds (one per section,
    /// in section order).
    pub(crate) fn assemble(seq: u64, builds: Vec<PartBuild>) -> Self {
        let n_entries = builds.iter().map(|b| b.n_keys() as u64).sum();
        let mut bloom = Bloom::with_capacity(n_entries);
        for b in &builds {
            for &(h1, h2) in &b.hashes {
                bloom.insert_hashes(h1, h2);
            }
        }
        Self {
            seq,
            n_entries,
            bloom,
            parts: builds.into_iter().map(|b| b.samples).collect(),
        }
    }

    /// The commit sequence of the data file this index covers.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Number of partition sections the index covers.
    pub fn parts(&self) -> usize {
        self.parts.len()
    }

    /// `false` means the key is definitely absent from the data file;
    /// `true` means it *may* be present (≈1% false positives).
    pub fn may_contain(&self, key: &[u8]) -> bool {
        self.bloom.may_contain(key)
    }

    /// The partition section `key` would live in (sections are
    /// hash-partitioned with the writer's power-of-two shard mask).
    pub fn part_of(&self, key: &[u8]) -> usize {
        shard_of(key, self.parts.len() as u64 - 1)
    }

    /// Absolute file offset a region scan for `key` should start at:
    /// the greatest sample at or below it (`None` when the partition is
    /// empty or every sample sorts above `key` — scan from the section
    /// start, where the very first entry will already sort above it).
    pub fn region_start(&self, part: usize, key: &[u8]) -> Option<u64> {
        let samples = self.parts.get(part)?;
        match samples.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
            Ok(i) => Some(samples[i].1),
            Err(0) => None,
            Err(i) => Some(samples[i - 1].1),
        }
    }

    /// Serializes the sidecar: three CRC frames (header, bloom bitset,
    /// samples) — see `docs/DURABILITY.md`.
    pub fn encode(&self) -> Vec<u8> {
        let mut header = Vec::with_capacity(36);
        header.extend_from_slice(INDEX_MAGIC);
        header.extend_from_slice(&self.seq.to_le_bytes());
        header.extend_from_slice(&self.n_entries.to_le_bytes());
        header.extend_from_slice(&self.bloom.n_bits.to_le_bytes());
        header.extend_from_slice(&(self.parts.len() as u32).to_le_bytes());
        let mut samples = Vec::new();
        for part in &self.parts {
            samples.extend_from_slice(&(part.len() as u32).to_le_bytes());
            for (key, off) in part {
                samples.extend_from_slice(&(key.len() as u32).to_le_bytes());
                samples.extend_from_slice(key);
                samples.extend_from_slice(&off.to_le_bytes());
            }
        }
        let mut out = Vec::with_capacity(24 + header.len() + self.bloom.bits.len() + samples.len());
        push_frame(&mut out, &header);
        push_frame(&mut out, &self.bloom.bits);
        push_frame(&mut out, &samples);
        out
    }

    /// Parses and validates a sidecar. `None` on any damage — a missing
    /// byte, a CRC mismatch, an inconsistent count — in which case the
    /// caller rebuilds from the data file instead.
    pub fn decode(bytes: &[u8]) -> Option<DeltaIndex> {
        let (header, at) = parse_frame(bytes, 0).ok()??;
        // magic(8) ++ seq(8) ++ n_entries(8) ++ n_bits(8) ++ parts(4)
        if header.len() != 36 || &header[..8] != INDEX_MAGIC {
            return None;
        }
        let seq = u64::from_le_bytes(header[8..16].try_into().ok()?);
        let n_entries = u64::from_le_bytes(header[16..24].try_into().ok()?);
        let n_bits = u64::from_le_bytes(header[24..32].try_into().ok()?);
        let n_parts = u32::from_le_bytes(header[32..36].try_into().ok()?) as usize;
        if n_parts == 0 || !n_parts.is_power_of_two() {
            return None;
        }
        let (bits, at) = parse_frame(bytes, at).ok()??;
        let bloom = Bloom::from_bits(bits.to_vec(), n_bits)?;
        let (samples, at) = parse_frame(bytes, at).ok()??;
        if parse_frame(bytes, at).ok()? .is_some() || at != bytes.len() {
            return None;
        }
        let mut parts = Vec::with_capacity(n_parts);
        let mut cur = 0usize;
        let take = |cur: &mut usize, n: usize| -> Option<&[u8]> {
            if samples.len() - *cur < n {
                return None;
            }
            let s = &samples[*cur..*cur + n];
            *cur += n;
            Some(s)
        };
        for _ in 0..n_parts {
            let n_samples = u32::from_le_bytes(take(&mut cur, 4)?.try_into().ok()?) as usize;
            let mut part = Vec::with_capacity(n_samples);
            let mut last: Option<Vec<u8>> = None;
            for _ in 0..n_samples {
                let key_len = u32::from_le_bytes(take(&mut cur, 4)?.try_into().ok()?) as usize;
                let key = take(&mut cur, key_len)?.to_vec();
                let off = u64::from_le_bytes(take(&mut cur, 8)?.try_into().ok()?);
                if let Some(prev) = &last {
                    if *prev >= key {
                        return None;
                    }
                }
                last = Some(key.clone());
                part.push((key, off));
            }
            parts.push(part);
        }
        if cur != samples.len() {
            return None;
        }
        Some(DeltaIndex {
            seq,
            n_entries,
            bloom,
            parts,
        })
    }
}

// -- the cold reader --------------------------------------------------------

/// Knobs of a [`ColdReader`].
#[derive(Debug, Clone, Copy)]
pub struct ColdReaderOptions {
    /// Use the sidecar indexes (bloom skip + sparse region scans),
    /// rebuilding them in memory when missing or damaged. `false` is
    /// the O(chain) baseline: every read scans every file fully — the
    /// behaviour the `b2_cold_read` bench compares against.
    pub use_index: bool,
}

impl Default for ColdReaderOptions {
    fn default() -> Self {
        Self { use_index: true }
    }
}

/// Counters a [`ColdReader`] accumulates across reads (see
/// [`ColdReader::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColdReadStats {
    /// Chain files a point-`get` skipped entirely because the bloom
    /// filter rejected the key.
    pub files_skipped: u64,
    /// Chain files a read actually scanned (a region or the whole
    /// file).
    pub files_scanned: u64,
    /// Bytes read off disk by region/full scans.
    pub bytes_scanned: u64,
}

/// One chain file the reader serves from: an open handle, its parsed
/// header, and (when available) its sidecar index.
struct ChainFile {
    file: File,
    path: PathBuf,
    len: u64,
    header: SnapHeader,
    body_start: u64,
    index: Option<DeltaIndex>,
}

/// Read-only point/prefix access to a [`FileBackend`] directory
/// **without replaying it into memory**: headers, sidecar indexes and
/// the WAL tail are parsed up front; `get`/`scan_prefix` then touch
/// only the file regions the indexes select. Holds the store's
/// directory lock, so it never races a live writer.
///
/// [`FileBackend`]: crate::FileBackend
pub struct ColdReader {
    _lock: File,
    base: Option<ChainFile>,
    /// Ascending chain order; reads consult them newest-first.
    deltas: Vec<ChainFile>,
    /// Committed WAL batches past the chain, ascending, torn tail
    /// dropped — exactly what recovery would replay.
    wal: Vec<(u64, Vec<WriteOp>)>,
    files_skipped: AtomicU64,
    files_scanned: AtomicU64,
    bytes_scanned: AtomicU64,
}

impl ColdReader {
    /// Opens `dir` read-only with default options.
    pub fn open(dir: impl AsRef<Path>) -> OmResult<Self> {
        Self::open_with(dir, ColdReaderOptions::default())
    }

    /// Opens `dir` read-only. Fails if the directory does not exist, is
    /// locked by a live backend, or holds a damaged chain; a damaged
    /// *index* never fails the open (it is rebuilt from the data).
    pub fn open_with(dir: impl AsRef<Path>, options: ColdReaderOptions) -> OmResult<Self> {
        let dir = dir.as_ref();
        if !dir.join("snap").is_dir() || !dir.join("wal").is_dir() {
            return Err(OmError::NotFound(format!(
                "no durable store at {dir:?} (missing snap/ or wal/)"
            )));
        }
        let lock = om_common::dirlock::lock_dir(dir)?;
        let io = |e: std::io::Error| OmError::Internal(format!("cold reader {dir:?}: {e}"));
        let bases = sorted_files_in(&dir.join("snap"), "snap-", ".snap").map_err(io)?;
        let deltas = sorted_files_in(&dir.join("snap"), "delta-", ".delta").map_err(io)?;
        let base = match bases.last() {
            Some((seq, path)) => Some(Self::open_chain_file(dir, path, true, *seq, options)?),
            None => None,
        };
        let base_seq = base.as_ref().map(|b| b.header.seq).unwrap_or(0);
        let mut chain = Vec::new();
        let mut covered = base_seq;
        for (seq, path) in &deltas {
            if *seq <= base_seq {
                continue; // superseded by the base (read-only: left in place)
            }
            let cf = Self::open_chain_file(dir, path, false, *seq, options)?;
            covered = cf.header.seq;
            chain.push(cf);
        }
        let wal = Self::read_wal_tail(dir, covered)?;
        Ok(Self {
            _lock: lock,
            base,
            deltas: chain,
            wal,
            files_skipped: AtomicU64::new(0),
            files_scanned: AtomicU64::new(0),
            bytes_scanned: AtomicU64::new(0),
        })
    }

    fn open_chain_file(
        dir: &Path,
        path: &Path,
        is_base: bool,
        seq: u64,
        options: ColdReaderOptions,
    ) -> OmResult<ChainFile> {
        let io = |e: std::io::Error| OmError::Internal(format!("cold reader {path:?}: {e}"));
        let corrupt = || OmError::Internal(format!("cold reader: chain file {path:?} is corrupt"));
        let file = File::open(path).map_err(io)?;
        let len = file.metadata().map_err(io)?.len();
        // Header frame: length-prefixed, so two bounded reads suffice.
        let mut prefix = [0u8; 8];
        file.read_exact_at(&mut prefix, 0).map_err(|_| corrupt())?;
        let payload_len = u32::from_le_bytes(prefix[..4].try_into().unwrap()) as usize;
        let mut head = vec![0u8; (8 + payload_len).min(len as usize)];
        file.read_exact_at(&mut head, 0).map_err(|_| corrupt())?;
        let (header, body_start) = parse_snap_header(&head).ok_or_else(corrupt)?;
        if header.is_base != is_base || header.seq != seq {
            return Err(corrupt());
        }
        let index = if options.use_index && !header.legacy {
            let sidecar = path.with_extension("idx");
            let decoded = fs::read(&sidecar)
                .ok()
                .and_then(|bytes| DeltaIndex::decode(&bytes))
                .filter(|idx| {
                    idx.seq == header.seq
                        && idx.n_entries == header.n_entries
                        && idx.parts.len() == header.sections.len()
                });
            match decoded {
                Some(idx) => Some(idx),
                // Missing or damaged: rebuild from the data file (one
                // full scan now buys indexed reads afterwards). Never
                // an error — the data file is the source of truth.
                None => Some(rebuild_index(dir, &file, &header, is_base, path)?),
            }
        } else {
            None
        };
        Ok(ChainFile {
            file,
            path: path.to_path_buf(),
            len,
            header,
            body_start: body_start as u64,
            index,
        })
    }

    /// Reads the committed WAL batches past `covered`, in order,
    /// dropping a torn tail of the final segment (what recovery would
    /// truncate).
    fn read_wal_tail(dir: &Path, covered: u64) -> OmResult<Vec<(u64, Vec<WriteOp>)>> {
        let io = |e: std::io::Error| OmError::Internal(format!("cold reader {dir:?}: {e}"));
        let segments = sorted_files_in(&dir.join("wal"), "wal-", ".log").map_err(io)?;
        let mut out = Vec::new();
        let last_index = segments.len().wrapping_sub(1);
        for (i, (_, path)) in segments.iter().enumerate() {
            let bytes = fs::read(path).map_err(io)?;
            let mut at = 0usize;
            loop {
                match parse_frame(&bytes, at) {
                    Ok(Some((payload, next))) => {
                        let (seq, ops) = decode_batch(payload).ok_or_else(|| {
                            OmError::Internal(format!(
                                "cold reader: WAL segment {path:?} holds an undecodable batch"
                            ))
                        })?;
                        if seq > covered {
                            out.push((seq, ops));
                        }
                        at = next;
                    }
                    Ok(None) => break,
                    Err(torn_at) => {
                        if i != last_index {
                            return Err(OmError::Internal(format!(
                                "cold reader: WAL segment {path:?} is corrupt at byte \
                                 {torn_at} but is not the final segment"
                            )));
                        }
                        break; // torn tail: uncommitted, ignore
                    }
                }
            }
        }
        Ok(out)
    }

    /// Point lookup straight off the files: WAL tail first (newest
    /// wins), then deltas newest-first — each consulted file's bloom
    /// filter can reject the key without any further IO — then the
    /// base. A delta tombstone resolves to `None` immediately.
    pub fn get(&self, key: &[u8]) -> OmResult<Option<Vec<u8>>> {
        for (_, ops) in self.wal.iter().rev() {
            for op in ops.iter().rev() {
                if op.key == key {
                    return Ok(op.value.clone());
                }
            }
        }
        for cf in self.deltas.iter().rev() {
            if let Some(outcome) = self.file_get(cf, key, false)? {
                return Ok(outcome);
            }
        }
        if let Some(base) = &self.base {
            if let Some(outcome) = self.file_get(base, key, true)? {
                return Ok(outcome);
            }
        }
        Ok(None)
    }

    /// Looks `key` up in one chain file. `Ok(None)` = not present here,
    /// keep walking the chain; `Ok(Some(v))` = resolved (`v == None` is
    /// a tombstone).
    #[allow(clippy::type_complexity)]
    fn file_get(
        &self,
        cf: &ChainFile,
        key: &[u8],
        is_base: bool,
    ) -> OmResult<Option<Option<Vec<u8>>>> {
        if let Some(idx) = &cf.index {
            if !idx.may_contain(key) {
                self.files_skipped.fetch_add(1, Ordering::Relaxed);
                return Ok(None);
            }
            let part = idx.part_of(key);
            let Some(section) = cf.header.sections.get(part) else {
                return Ok(None);
            };
            if section.n == 0 {
                return Ok(None);
            }
            let start = idx.region_start(part, key).unwrap_or(section.off);
            let end = section.off + section.len;
            let bytes = self.read_range(cf, start, end)?;
            let mut at = 0usize;
            while let Some((payload, next)) = parse_frame(&bytes, at)
                .map_err(|_| self.corrupt(cf))?
            {
                at = next;
                let (k, v) = decode_entry(payload, is_base).ok_or_else(|| self.corrupt(cf))?;
                match k.as_slice().cmp(key) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => return Ok(Some(v)),
                    // Sections are key-sorted: passed the slot.
                    std::cmp::Ordering::Greater => return Ok(None),
                }
            }
            Ok(None)
        } else {
            // No index (disabled, or a legacy v1 file): scan the whole
            // body — the O(chain) baseline.
            let bytes = self.read_range(cf, cf.body_start, cf.len)?;
            let mut at = 0usize;
            let mut found = None;
            while let Some((payload, next)) = parse_frame(&bytes, at)
                .map_err(|_| self.corrupt(cf))?
            {
                at = next;
                let (k, v) = decode_entry(payload, is_base).ok_or_else(|| self.corrupt(cf))?;
                if k == key {
                    // Legacy files are unsorted; the last occurrence
                    // wins (v2 keys are unique per file anyway).
                    found = Some(v);
                }
            }
            Ok(found)
        }
    }

    /// All live `(key, value)` pairs under `prefix`, sorted — the cold
    /// analogue of `StateBackend::scan_prefix`. Sections being
    /// key-sorted, an indexed file contributes one bounded region scan
    /// per partition instead of a full read.
    pub fn scan_prefix(&self, prefix: &[u8]) -> OmResult<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut acc: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        if let Some(base) = &self.base {
            self.file_scan_prefix(base, prefix, true, &mut acc)?;
        }
        for cf in &self.deltas {
            self.file_scan_prefix(cf, prefix, false, &mut acc)?;
        }
        for (_, ops) in &self.wal {
            for op in ops {
                if op.key.starts_with(prefix) {
                    acc.insert(op.key.clone(), op.value.clone());
                }
            }
        }
        Ok(acc
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect())
    }

    fn file_scan_prefix(
        &self,
        cf: &ChainFile,
        prefix: &[u8],
        is_base: bool,
        acc: &mut BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    ) -> OmResult<()> {
        if let Some(idx) = &cf.index {
            for (part, section) in cf.header.sections.iter().enumerate() {
                if section.n == 0 {
                    continue;
                }
                let start = idx.region_start(part, prefix).unwrap_or(section.off);
                let end = section.off + section.len;
                let bytes = self.read_range(cf, start, end)?;
                let mut at = 0usize;
                while let Some((payload, next)) = parse_frame(&bytes, at)
                    .map_err(|_| self.corrupt(cf))?
                {
                    at = next;
                    let (k, v) = decode_entry(payload, is_base).ok_or_else(|| self.corrupt(cf))?;
                    if k.starts_with(prefix) {
                        acc.insert(k, v);
                    } else if k.as_slice() > prefix {
                        // Sorted: no later key in this section matches.
                        break;
                    }
                }
            }
        } else {
            let bytes = self.read_range(cf, cf.body_start, cf.len)?;
            let mut at = 0usize;
            while let Some((payload, next)) = parse_frame(&bytes, at)
                .map_err(|_| self.corrupt(cf))?
            {
                at = next;
                let (k, v) = decode_entry(payload, is_base).ok_or_else(|| self.corrupt(cf))?;
                if k.starts_with(prefix) {
                    acc.insert(k, v);
                }
            }
        }
        Ok(())
    }

    fn read_range(&self, cf: &ChainFile, start: u64, end: u64) -> OmResult<Vec<u8>> {
        let end = end.min(cf.len);
        if start >= end {
            return Ok(Vec::new());
        }
        let mut buf = vec![0u8; (end - start) as usize];
        cf.file
            .read_exact_at(&mut buf, start)
            .map_err(|_| self.corrupt(cf))?;
        self.files_scanned.fetch_add(1, Ordering::Relaxed);
        self.bytes_scanned.fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(buf)
    }

    fn corrupt(&self, cf: &ChainFile) -> OmError {
        OmError::Internal(format!("cold reader: chain file {:?} is corrupt", cf.path))
    }

    /// Number of chain files behind the newest base (the chain length
    /// reads would pay without the indexes).
    pub fn chain_len(&self) -> usize {
        self.deltas.len() + usize::from(self.base.is_some())
    }

    /// Counters accumulated across reads so far.
    pub fn stats(&self) -> ColdReadStats {
        ColdReadStats {
            files_skipped: self.files_skipped.load(Ordering::Relaxed),
            files_scanned: self.files_scanned.load(Ordering::Relaxed),
            bytes_scanned: self.bytes_scanned.load(Ordering::Relaxed),
        }
    }
}

/// Decodes one entry payload: base entries carry `key ++ value`, delta
/// entries the tagged op encoding (tombstones allowed).
fn decode_entry(payload: &[u8], is_base: bool) -> Option<(Vec<u8>, Option<Vec<u8>>)> {
    if is_base {
        decode_snapshot_entry(payload).map(|(k, v)| (k, Some(v)))
    } else {
        decode_op_payload(payload)
    }
}

/// Rebuilds the sidecar index by scanning the data file's sections
/// (exact same walk the snapshot writer indexed them with). Used when
/// the `.idx` is missing or fails validation.
fn rebuild_index(
    dir: &Path,
    file: &File,
    header: &SnapHeader,
    is_base: bool,
    path: &Path,
) -> OmResult<DeltaIndex> {
    let corrupt = || OmError::Internal(format!("cold reader {dir:?}: chain file {path:?} is corrupt"));
    let mut builds = Vec::with_capacity(header.sections.len());
    for section in &header.sections {
        let mut build = PartBuild::default();
        if section.n > 0 {
            let mut bytes = vec![0u8; section.len as usize];
            file.read_exact_at(&mut bytes, section.off).map_err(|_| corrupt())?;
            let mut at = 0usize;
            while let Some((payload, next)) = parse_frame(&bytes, at).map_err(|_| corrupt())? {
                let (k, _) = decode_entry(payload, is_base).ok_or_else(corrupt)?;
                build.add(&k, section.off + at as u64);
                at = next;
            }
        }
        builds.push(build);
    }
    Ok(DeltaIndex::assemble(header.seq, builds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FileBackend, FileBackendOptions, StateBackend};

    fn scratch_path(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "om-coldread-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    struct DirGuard(PathBuf);
    impl Drop for DirGuard {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    /// Builds a store with a base, several deltas and a WAL tail;
    /// returns the expected live state.
    fn seed_store(dir: &Path) -> BTreeMap<Vec<u8>, Vec<u8>> {
        let opts = FileBackendOptions {
            snapshot_every: 0,
            compact_max_deltas: 100,
            compact_ratio_pct: 100_000,
            ..FileBackendOptions::default()
        };
        let b = FileBackend::open(dir, opts).unwrap();
        for i in 0..200u32 {
            b.put(format!("base/{i:04}").as_bytes(), &i.to_le_bytes());
        }
        b.snapshot_now().unwrap();
        for round in 0..4u32 {
            for i in 0..10u32 {
                b.put(format!("hot/{round}/{i}").as_bytes(), &[round as u8, i as u8]);
            }
            b.delete(format!("base/{:04}", round * 7).as_bytes());
            b.snapshot_now().unwrap();
        }
        b.put(b"tail/a", b"1"); // WAL tail past the chain
        b.delete(b"base/0100");
        let expected = b.scan_prefix(b"").into_iter().collect();
        drop(b);
        expected
    }

    #[test]
    fn cold_reader_matches_live_state_with_and_without_index() {
        let dir = scratch_path("match");
        let _guard = DirGuard(dir.clone());
        let expected = seed_store(&dir);
        for use_index in [true, false] {
            let r = ColdReader::open_with(&dir, ColdReaderOptions { use_index }).unwrap();
            assert!(r.chain_len() >= 5, "base + 4 deltas on disk");
            for (k, v) in &expected {
                assert_eq!(
                    r.get(k).unwrap().as_ref(),
                    Some(v),
                    "use_index={use_index}, key {k:?}"
                );
            }
            // Deleted and never-written keys resolve to None.
            assert_eq!(r.get(b"base/0000").unwrap(), None, "tombstoned in a delta");
            assert_eq!(r.get(b"base/0100").unwrap(), None, "tombstoned in the WAL tail");
            assert_eq!(r.get(b"never/written").unwrap(), None);
            // Prefix scans equal the live backend's.
            let all: BTreeMap<Vec<u8>, Vec<u8>> = r.scan_prefix(b"").unwrap().into_iter().collect();
            assert_eq!(all, expected, "use_index={use_index}");
            let hot = r.scan_prefix(b"hot/2/").unwrap();
            assert_eq!(hot.len(), 10);
        }
    }

    #[test]
    fn indexed_point_gets_skip_chain_files() {
        let dir = scratch_path("skip");
        let _guard = DirGuard(dir.clone());
        seed_store(&dir);
        let r = ColdReader::open(&dir).unwrap();
        // A key living only in the base: every delta's bloom filter
        // should reject it (modulo ~1% false positives across 4 files).
        assert!(r.get(b"base/0150").unwrap().is_some());
        let stats = r.stats();
        assert!(
            stats.files_skipped >= 2,
            "bloom filters must skip most deltas for a base-only key: {stats:?}"
        );
        // A missing key is (almost always) answered without scanning
        // anything — and never by reading every file.
        let before = r.stats();
        for i in 0..50u32 {
            assert_eq!(r.get(format!("absent/{i}").as_bytes()).unwrap(), None);
        }
        let after = r.stats();
        let scanned = after.files_scanned - before.files_scanned;
        let skipped = after.files_skipped - before.files_skipped;
        assert!(
            skipped > scanned * 10,
            "absent keys should be bloom-rejected, not scanned: {after:?}"
        );
    }

    #[test]
    fn cold_reader_ignores_missing_index_and_never_serves_wrong_data() {
        let dir = scratch_path("noidx");
        let _guard = DirGuard(dir.clone());
        let expected = seed_store(&dir);
        // Delete one sidecar, truncate another: the reader rebuilds in
        // memory and answers identically.
        let mut idx_files: Vec<PathBuf> = fs::read_dir(dir.join("snap"))
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "idx"))
            .collect();
        idx_files.sort();
        assert!(idx_files.len() >= 3);
        fs::remove_file(&idx_files[0]).unwrap();
        let bytes = fs::read(&idx_files[1]).unwrap();
        fs::write(&idx_files[1], &bytes[..bytes.len() / 3]).unwrap();
        let r = ColdReader::open(&dir).unwrap();
        let all: BTreeMap<Vec<u8>, Vec<u8>> = r.scan_prefix(b"").unwrap().into_iter().collect();
        assert_eq!(all, expected, "damaged sidecars never change results");
    }

    #[test]
    fn cold_reader_holds_the_directory_lock() {
        let dir = scratch_path("lock");
        let _guard = DirGuard(dir.clone());
        seed_store(&dir);
        let r = ColdReader::open(&dir).unwrap();
        assert!(
            FileBackend::open(&dir, FileBackendOptions::default()).is_err(),
            "a live backend cannot open under a cold reader"
        );
        drop(r);
        assert!(FileBackend::open(&dir, FileBackendOptions::default()).is_ok());
    }

    #[test]
    fn bloom_never_false_negative() {
        let keys: Vec<Vec<u8>> = (0..500u32).map(|i| format!("key/{i}").into_bytes()).collect();
        let mut bloom = Bloom::with_capacity(keys.len() as u64);
        for k in &keys {
            let (h1, h2) = bloom_hashes(k);
            bloom.insert_hashes(h1, h2);
        }
        for k in &keys {
            assert!(bloom.may_contain(k), "inserted key rejected: {k:?}");
        }
        let false_positives = (0..500u32)
            .filter(|i| bloom.may_contain(format!("absent/{i}").as_bytes()))
            .count();
        assert!(
            false_positives < 50,
            "bloom at 10 bits/key should reject most absent keys, fp={false_positives}/500"
        );
    }

    #[test]
    fn index_roundtrip_and_region_lookup() {
        let mut builds = Vec::new();
        for part in 0..4 {
            let mut b = PartBuild::default();
            for i in 0..100u32 {
                b.add(format!("p{part}/k{i:04}").as_bytes(), u64::from(i) * 32);
            }
            builds.push(b);
        }
        let idx = DeltaIndex::assemble(7, builds);
        let bytes = idx.encode();
        let back = DeltaIndex::decode(&bytes).expect("roundtrip");
        assert_eq!(back.seq(), 7);
        assert_eq!(back.n_entries, 400);
        assert!(back.may_contain(b"p0/k0000"));
        // Sampled keys map to their exact offsets; in-between keys to
        // the sample below.
        assert_eq!(back.region_start(1, b"p1/k0000"), Some(0));
        assert_eq!(back.region_start(1, b"p1/k0016"), Some(16 * 32));
        assert_eq!(back.region_start(1, b"p1/k0017"), Some(16 * 32));
        // Keys below the first sample scan from the section start.
        assert_eq!(back.region_start(1, b"p1/a"), None);
    }

    #[test]
    fn truncated_or_damaged_index_fails_validation() {
        let mut b = PartBuild::default();
        b.add(b"k1", 0);
        b.add(b"k2", 40);
        let idx = DeltaIndex::assemble(3, vec![b]);
        let bytes = idx.encode();
        assert!(DeltaIndex::decode(&bytes).is_some());
        for cut in [1, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                DeltaIndex::decode(&bytes[..cut]).is_none(),
                "truncation at {cut} must fail validation"
            );
        }
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        assert!(DeltaIndex::decode(&flipped).is_none(), "bit flip must fail CRC");
    }
}
