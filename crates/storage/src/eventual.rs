//! The eventually consistent backend: per-key last-writer-wins over
//! `om-kv`'s sharded store, with an asynchronous secondary replica.
//!
//! Writes land on the **primary** synchronously (so [`StateBackend::get`]
//! is authoritative and grain reactivation never reads stale snapshots)
//! and stream to a **secondary** through a background applier that drains
//! a small reorder window — the multi-connection fan-in of a real
//! asynchronous deployment. Sessions read the secondary first and fall
//! back to the primary when read-your-writes would be violated, counting
//! every fallback. Multi-key commits are applied key by key: there is no
//! abort path, and a concurrent reader may observe a torn subset until
//! the per-key writes have all landed.

use crate::backend::{StateBackend, StateSession, WriteBatch, WriteOp};
use crate::shards_pow2;
use crossbeam::channel::{unbounded, Sender};
use om_common::config::{BackendKind, ReplicationMode};
use om_common::time::VersionVector;
use om_common::OmResult;
use om_kv::replication::{Applier, ReplicationRecord, ReplicationStats};
use om_kv::store::{Store, VersionedValue};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Records the applier buffers before draining a (shuffled) window.
const REORDER_WINDOW: usize = 8;

enum ApplierMsg {
    Record(ReplicationRecord<Vec<u8>, Vec<u8>>),
    /// Flush buffered records and acknowledge via the enclosed sender.
    Quiesce(Sender<()>),
    Shutdown,
}

/// The eventual (LWW + async replica) implementation of [`StateBackend`].
pub struct EventualBackend {
    primary: Arc<Store<Vec<u8>, Vec<u8>>>,
    secondary: Arc<Store<Vec<u8>, Vec<u8>>>,
    stats: Arc<ReplicationStats>,
    tx: Sender<ApplierMsg>,
    applier_handle: Mutex<Option<JoinHandle<()>>>,
    seq: AtomicU64,
    commits: AtomicU64,
    session_fallbacks: AtomicU64,
}

impl EventualBackend {
    /// Builds the replica pair with at least `shards` lock domains each
    /// (rounded up to a power of two) and spawns the applier thread.
    pub fn new(shards: usize) -> Self {
        let shards = shards_pow2(shards);
        let primary = Arc::new(Store::new(shards));
        let secondary = Arc::new(Store::new(shards));
        let stats = Arc::new(ReplicationStats::default());
        let (tx, rx) = unbounded::<ApplierMsg>();
        let applier_secondary = secondary.clone();
        let applier_stats = stats.clone();
        let handle = std::thread::Builder::new()
            .name("om-storage-applier".into())
            .spawn(move || {
                let mut applier = Applier::new(
                    ReplicationMode::Eventual,
                    applier_secondary,
                    applier_stats,
                    REORDER_WINDOW,
                    0xE7E7,
                );
                while let Ok(msg) = rx.recv() {
                    match msg {
                        ApplierMsg::Record(r) => applier.offer(r),
                        ApplierMsg::Quiesce(ack) => {
                            applier.flush();
                            let _ = ack.send(());
                        }
                        ApplierMsg::Shutdown => break,
                    }
                }
            })
            .expect("spawn backend applier");
        Self {
            primary,
            secondary,
            stats,
            tx,
            applier_handle: Mutex::new(Some(handle)),
            seq: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            session_fallbacks: AtomicU64::new(0),
        }
    }

    /// Installs one write on the primary (assigning its per-key sequence
    /// under the shard lock) and streams it to the secondary. Returns the
    /// assigned key sequence.
    fn write_one(&self, key: &[u8], value: Option<&[u8]>) -> u64 {
        let installed = self.primary.update(key.to_vec(), |cur| {
            let key_seq = cur.map(|c| c.key_seq + 1).unwrap_or(1);
            VersionedValue {
                value: value.map(<[u8]>::to_vec),
                clock: VersionVector::new(),
                key_seq,
            }
        });
        let record = ReplicationRecord {
            seq: self.seq.fetch_add(1, Ordering::Relaxed) + 1,
            key: key.to_vec(),
            value: value.map(<[u8]>::to_vec),
            key_seq: installed.key_seq,
            deps: VersionVector::new(),
            clock: VersionVector::new(),
        };
        let _ = self.tx.send(ApplierMsg::Record(record));
        installed.key_seq
    }

    /// The authoritative replica (tests/diagnostics).
    pub fn primary_store(&self) -> &Store<Vec<u8>, Vec<u8>> {
        &self.primary
    }

    /// The asynchronous replica (tests/diagnostics).
    pub fn secondary_store(&self) -> &Store<Vec<u8>, Vec<u8>> {
        &self.secondary
    }

    /// Whether both replicas expose the same live state (true after
    /// [`StateBackend::quiesce`] once writers have stopped).
    pub fn replicas_converged(&self) -> bool {
        let mut a = self.primary.dump();
        let mut b = self.secondary.dump();
        a.sort();
        b.sort();
        a == b
    }

    /// Replication statistics (applied, stale drops, inversions).
    pub fn replication_stats(&self) -> &ReplicationStats {
        &self.stats
    }
}

impl StateBackend for EventualBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Eventual
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.primary.get(key)
    }

    fn put(&self, key: &[u8], value: &[u8]) {
        self.write_one(key, Some(value));
    }

    fn delete(&self, key: &[u8]) {
        self.write_one(key, None);
    }

    fn get_many(&self, keys: &[&[u8]]) -> Vec<Option<Vec<u8>>> {
        // Independent per-key reads: a concurrent commit() interleaves.
        keys.iter().map(|k| self.primary.get(*k)).collect()
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out: Vec<(Vec<u8>, Vec<u8>)> = self
            .primary
            .dump()
            .into_iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .collect();
        out.sort();
        out
    }

    fn commit(&self, batch: WriteBatch) -> OmResult<usize> {
        self.commit_ops(batch.ops())
    }

    fn commit_ops(&self, ops: &[WriteOp]) -> OmResult<usize> {
        for WriteOp { key, value } in ops {
            self.write_one(key, value.as_deref());
        }
        self.commits.fetch_add(1, Ordering::Relaxed);
        Ok(ops.len())
    }

    fn session(&self) -> Box<dyn StateSession + '_> {
        Box::new(EventualSession {
            backend: self,
            known: HashMap::new(),
            fallbacks: 0,
        })
    }

    fn quiesce(&self) {
        let (ack_tx, ack_rx) = unbounded();
        if self.tx.send(ApplierMsg::Quiesce(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }

    fn len(&self) -> usize {
        self.primary.len()
    }

    fn counters(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        out.insert("backend.commits".into(), self.commits.load(Ordering::Relaxed));
        out.insert("backend.replica_applied".into(), self.stats.applied());
        out.insert("backend.replica_stale_drops".into(), self.stats.stale_drops());
        out.insert(
            "backend.session_fallbacks".into(),
            self.session_fallbacks.load(Ordering::Relaxed),
        );
        out.insert(
            "backend.shards".into(),
            self.primary.shard_count() as u64,
        );
        out
    }
}

impl Drop for EventualBackend {
    fn drop(&mut self) {
        let _ = self.tx.send(ApplierMsg::Shutdown);
        if let Some(h) = self.applier_handle.lock().take() {
            let _ = h.join();
        }
    }
}

/// Read-your-writes session over the replica pair: reads prefer the
/// secondary, falling back to the primary when the secondary has not yet
/// caught up with a write this session has observed.
struct EventualSession<'a> {
    backend: &'a EventualBackend,
    /// Newest per-key write sequence this session has observed.
    known: HashMap<Vec<u8>, u64>,
    fallbacks: u64,
}

impl EventualSession<'_> {
    fn observe(&mut self, key: &[u8], key_seq: u64) {
        let e = self.known.entry(key.to_vec()).or_insert(0);
        *e = (*e).max(key_seq);
    }
}

impl StateSession for EventualSession<'_> {
    fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let known = self.known.get(key).copied().unwrap_or(0);
        if let Some(v) = self.backend.secondary.get_versioned(key) {
            if v.key_seq >= known {
                self.observe(key, v.key_seq);
                return v.value;
            }
        } else if known == 0 {
            return None;
        }
        // The secondary lags behind this session: authoritative fallback.
        self.fallbacks += 1;
        self.backend
            .session_fallbacks
            .fetch_add(1, Ordering::Relaxed);
        let v = self.backend.primary.get_versioned(key)?;
        self.observe(key, v.key_seq);
        v.value
    }

    fn put(&mut self, key: &[u8], value: &[u8]) {
        let seq = self.backend.write_one(key, Some(value));
        self.observe(key, seq);
    }

    fn delete(&mut self, key: &[u8]) {
        let seq = self.backend.write_one(key, None);
        self.observe(key, seq);
    }

    fn fallbacks(&self) -> u64 {
        self.fallbacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete_roundtrip() {
        let b = EventualBackend::new(4);
        assert!(b.get(b"k").is_none());
        b.put(b"k", b"v1");
        b.put(b"k", b"v2");
        assert_eq!(b.get(b"k"), Some(b"v2".to_vec()));
        b.delete(b"k");
        assert_eq!(b.get(b"k"), None);
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn secondary_converges_after_quiesce() {
        let b = EventualBackend::new(8);
        for i in 0..100u64 {
            b.put(format!("key/{}", i % 10).as_bytes(), &i.to_le_bytes());
        }
        b.quiesce();
        assert!(b.replicas_converged());
        assert_eq!(b.replication_stats().applied(), 100);
    }

    #[test]
    fn session_reads_its_own_writes_despite_replica_lag() {
        let b = EventualBackend::new(4);
        let mut s = b.session();
        s.put(b"mine", b"1");
        // The applier may not have caught up; the session must still see
        // the write (falling back to the primary if needed).
        assert_eq!(s.get(b"mine"), Some(b"1".to_vec()));
    }

    #[test]
    fn scan_prefix_orders_and_filters() {
        let b = EventualBackend::new(4);
        b.put(b"a/2", b"x");
        b.put(b"a/1", b"y");
        b.put(b"b/1", b"z");
        let hits = b.scan_prefix(b"a/");
        assert_eq!(
            hits,
            vec![
                (b"a/1".to_vec(), b"y".to_vec()),
                (b"a/2".to_vec(), b"x".to_vec())
            ]
        );
    }

    #[test]
    fn commit_applies_every_op_without_abort() {
        let b = EventualBackend::new(4);
        b.put(b"gone", b"x");
        let n = b
            .commit(WriteBatch::new().put(b"a".to_vec(), b"1".to_vec()).delete(b"gone".to_vec()))
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(b.get(b"a"), Some(b"1".to_vec()));
        assert_eq!(b.get(b"gone"), None);
    }
}
