//! # om-storage
//!
//! The **unified state-backend layer**: one pluggable storage interface
//! behind every platform binding of the Online Marketplace benchmark.
//!
//! The source paper evaluates each data platform against the storage it
//! ships with — Orleans grain storage, Flink state, Redis, PostgreSQL.
//! Factoring the transactional surface those deployments actually use into
//! a single [`StateBackend`] trait lets the benchmark sweep the full
//! *platform × backend* matrix instead: any binding can run over any
//! storage discipline, selected from `RunConfig` without code changes.
//!
//! Three disciplines ship today:
//!
//! * [`EventualBackend`] — per-key last-writer-wins over `om-kv`'s sharded
//!   store, with an asynchronous secondary replica (Redis role). Multi-key
//!   commits are applied key by key: concurrent readers can observe torn
//!   subsets, and the secondary only converges after [`StateBackend::quiesce`].
//! * [`SnapshotBackend`] — snapshot isolation over `om-mvcc`'s versioned
//!   tables and timestamp oracle (PostgreSQL role). Multi-key commits are
//!   atomic: no reader snapshot ever observes a torn subset, and conflicting
//!   commits abort with a retryable error.
//! * [`FileBackend`] — file-backed durability (RocksDB role): every commit
//!   is one framed, checksummed write-ahead-log batch on disk, full-state
//!   snapshots bound replay, and a cold restart over the same directory
//!   recovers exactly the committed state (torn tails are truncated). The
//!   only backend whose state survives a process crash; see
//!   `docs/DURABILITY.md` for the file formats and recovery rules.
//!
//! Both implementations are **sharded** — a fixed power-of-two shard array
//! keyed by hash, with per-shard locks — so the backend never reintroduces
//! the single global `RwLock<HashMap>` hot spot the actor runtime's grain
//! storage started with.
//!
//! Everything stateful in the workspace persists through this layer:
//! actor grain snapshots (`om-actor`), the customized binding's dashboard
//! projection and replica cache (`om-marketplace`), and the dataflow
//! runtime's epoch checkpoints (`om-dataflow`'s `BackendCheckpointStore`).
//! See `docs/ARCHITECTURE.md` for the full picture.

#![deny(missing_docs)]

pub mod backend;
pub mod delta_index;
pub mod eventual;
pub mod file;
pub mod group_commit;
pub mod snapshot;
pub mod vfs;

pub use backend::{
    make_backend, make_backend_at, make_backend_with, StateBackend, StateSession, WriteBatch,
    WriteOp,
};
pub use delta_index::{ColdReadStats, ColdReader, ColdReaderOptions, DeltaIndex};
pub use eventual::EventualBackend;
pub use file::{FileBackend, FileBackendOptions};
pub use group_commit::{CommitGroup, CommitGroupStats};
pub use snapshot::SnapshotBackend;
pub use vfs::{real_vfs, CrashImage, FaultVfs, RealVfs, Vfs, VfsFile, VfsOp};

/// Rounds a requested shard count up to a power of two (minimum 1), the
/// invariant both backends rely on for hash-and-mask routing.
pub(crate) fn shards_pow2(shards: usize) -> usize {
    shards.max(1).next_power_of_two()
}
