//! The snapshot-isolation backend: sharded MVCC tables under one
//! transaction manager and timestamp oracle.
//!
//! Keys route to a fixed power-of-two array of `om-mvcc` tables (each with
//! its own row lock), while a single [`TxManager`] drives validation and
//! installation across every shard a commit touched — so a multi-key
//! commit is **atomic across shards**: any snapshot taken after its commit
//! timestamp observes all of its writes, never a torn subset. Conflicting
//! commits take the abort path (first-committer-wins) and surface as
//! retryable [`om_common::OmError::Conflict`] errors once retries are
//! exhausted.

use crate::backend::{shard_of, StateBackend, StateSession, WriteBatch, WriteOp};
use crate::shards_pow2;
use om_common::config::BackendKind;
use om_common::{OmError, OmResult};
use om_mvcc::{IsolationLevel, Table, TxManager};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Commit retries before a conflicting batch takes the abort path.
const COMMIT_RETRIES: usize = 16;

/// The snapshot-isolation implementation of [`StateBackend`].
pub struct SnapshotBackend {
    mgr: TxManager,
    /// Power-of-two shard array; each shard is an independent MVCC table.
    shards: Vec<Arc<Table<Vec<u8>, Vec<u8>>>>,
    mask: u64,
    commits: AtomicU64,
    aborts: AtomicU64,
}

impl SnapshotBackend {
    /// Builds the backend with at least `shards` tables (rounded up to a
    /// power of two), all registered under one transaction manager.
    pub fn new(shards: usize) -> Self {
        let shards = shards_pow2(shards);
        let mgr = TxManager::new();
        let tables = (0..shards)
            .map(|i| mgr.create_table::<Vec<u8>, Vec<u8>>(format!("shard_{i}")))
            .collect();
        Self {
            mgr,
            shards: tables,
            mask: shards as u64 - 1,
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
        }
    }

    fn table_for(&self, key: &[u8]) -> &Arc<Table<Vec<u8>, Vec<u8>>> {
        &self.shards[shard_of(key, self.mask)]
    }

    /// The underlying transaction manager (tests/diagnostics).
    pub fn tx_manager(&self) -> &TxManager {
        &self.mgr
    }

    /// Number of shard tables (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn run_batch(&self, ops: &[WriteOp]) -> OmResult<usize> {
        let result = self.mgr.run(IsolationLevel::Snapshot, COMMIT_RETRIES, |tx| {
            for WriteOp { key, value } in ops {
                match value {
                    Some(v) => self.table_for(key).put(tx, key.clone(), v.clone()),
                    None => self.table_for(key).delete(tx, key.clone()),
                }
            }
            Ok(ops.len())
        });
        match &result {
            Ok(_) => self.commits.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.aborts.fetch_add(1, Ordering::Relaxed),
        };
        result.map_err(|e| match e {
            OmError::Conflict(reason) => OmError::Conflict(format!("commit aborted: {reason}")),
            other => other,
        })
    }

    /// Runs a single-key blind write to completion. Every
    /// first-committer-wins loss means some other transaction committed
    /// (system-wide progress), so retrying until success cannot stall —
    /// and the trait's "immediately visible to `get`" contract requires
    /// the write to actually land.
    fn run_blind(&self, op: WriteOp) {
        let ops = [op];
        while self.run_batch(&ops).is_err() {
            std::hint::spin_loop();
        }
    }
}

impl StateBackend for SnapshotBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::SnapshotIsolation
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let tx = self.mgr.begin(IsolationLevel::Snapshot);
        self.table_for(key).get(&tx, &key.to_vec())
    }

    fn put(&self, key: &[u8], value: &[u8]) {
        self.run_blind(WriteOp {
            key: key.to_vec(),
            value: Some(value.to_vec()),
        });
    }

    fn delete(&self, key: &[u8]) {
        self.run_blind(WriteOp {
            key: key.to_vec(),
            value: None,
        });
    }

    fn get_many(&self, keys: &[&[u8]]) -> Vec<Option<Vec<u8>>> {
        // One snapshot serves every key: torn multi-key commits are
        // unobservable by construction.
        let tx = self.mgr.begin(IsolationLevel::Snapshot);
        keys.iter()
            .map(|k| self.table_for(k).get(&tx, &k.to_vec()))
            .collect()
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let tx = self.mgr.begin(IsolationLevel::Snapshot);
        let mut out = Vec::new();
        for table in &self.shards {
            out.extend(table.scan_filter(&tx, prefix.to_vec().., |k, _| k.starts_with(prefix)));
        }
        out.sort();
        out
    }

    fn commit(&self, batch: WriteBatch) -> OmResult<usize> {
        self.run_batch(batch.ops())
    }

    fn commit_ops(&self, ops: &[WriteOp]) -> OmResult<usize> {
        self.run_batch(ops)
    }

    fn session(&self) -> Box<dyn StateSession + '_> {
        Box::new(SnapshotSession {
            backend: self,
            fallbacks: 0,
        })
    }

    fn quiesce(&self) {
        // Nothing is asynchronous; reclaim superseded versions instead.
        self.mgr.gc();
    }

    fn len(&self) -> usize {
        let tx = self.mgr.begin(IsolationLevel::Snapshot);
        self.shards.iter().map(|t| t.count(&tx)).sum()
    }

    fn counters(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        out.insert("backend.commits".into(), self.commits.load(Ordering::Relaxed));
        out.insert(
            "backend.commit_aborts".into(),
            self.aborts.load(Ordering::Relaxed),
        );
        out.insert("backend.shards".into(), self.shards.len() as u64);
        out
    }
}

/// Sessions are trivial under snapshot isolation: every write is durably
/// committed before `put` returns, so a later read (fresh snapshot) always
/// observes it. No fallback path exists.
struct SnapshotSession<'a> {
    backend: &'a SnapshotBackend,
    fallbacks: u64,
}

impl StateSession for SnapshotSession<'_> {
    fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.backend.get(key)
    }

    fn put(&mut self, key: &[u8], value: &[u8]) {
        self.backend.put(key, value);
    }

    fn delete(&mut self, key: &[u8]) {
        self.backend.delete(key);
    }

    fn fallbacks(&self) -> u64 {
        self.fallbacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete_roundtrip() {
        let b = SnapshotBackend::new(4);
        assert!(b.get(b"k").is_none());
        b.put(b"k", b"v1");
        b.put(b"k", b"v2");
        assert_eq!(b.get(b"k"), Some(b"v2".to_vec()));
        b.delete(b"k");
        assert_eq!(b.get(b"k"), None);
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn commit_is_atomic_across_shards() {
        let b = Arc::new(SnapshotBackend::new(8));
        let keys: Vec<Vec<u8>> = (0..16u8).map(|i| vec![b'k', i]).collect();
        let writer = {
            let b = b.clone();
            let keys = keys.clone();
            std::thread::spawn(move || {
                for round in 0..200u64 {
                    let mut batch = WriteBatch::new();
                    for k in &keys {
                        batch = batch.put(k.clone(), round.to_le_bytes().to_vec());
                    }
                    b.commit(batch).expect("single writer never conflicts");
                }
            })
        };
        let key_refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        for _ in 0..500 {
            let values = b.get_many(&key_refs);
            let distinct: std::collections::HashSet<_> = values.iter().collect();
            assert!(
                distinct.len() <= 1,
                "snapshot read observed a torn commit: {distinct:?}"
            );
        }
        writer.join().unwrap();
    }

    #[test]
    fn conflicting_commits_take_the_abort_path() {
        let b = SnapshotBackend::new(2);
        let mgr = b.tx_manager().clone();
        let table = b.table_for(b"x").clone();
        let tx1 = mgr.begin(IsolationLevel::Snapshot);
        let tx2 = mgr.begin(IsolationLevel::Snapshot);
        table.put(&tx1, b"x".to_vec(), b"first".to_vec());
        table.put(&tx2, b"x".to_vec(), b"second".to_vec());
        mgr.commit(tx1).expect("first committer wins");
        let err = mgr.commit(tx2).unwrap_err();
        assert!(err.is_retryable(), "loser aborts with a retryable error");
        assert_eq!(b.get(b"x"), Some(b"first".to_vec()));
    }

    #[test]
    fn scan_prefix_spans_shards_in_order() {
        let b = SnapshotBackend::new(8);
        for i in 0..20u8 {
            b.put(&[b'p', b'/', i], &[i]);
        }
        b.put(b"q/1", b"other");
        let hits = b.scan_prefix(b"p/");
        assert_eq!(hits.len(), 20);
        assert!(hits.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn quiesce_garbage_collects_versions() {
        let b = SnapshotBackend::new(2);
        for _ in 0..10 {
            b.put(b"hot", b"v");
        }
        let before: usize = b.shards.iter().map(|t| t.total_versions()).sum();
        b.quiesce();
        let after: usize = b.shards.iter().map(|t| t.total_versions()).sum();
        assert!(after < before, "GC must drop superseded versions");
    }
}
