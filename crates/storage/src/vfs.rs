//! The virtual filesystem seam of the durable stores: every byte the
//! [`FileBackend`](crate::FileBackend) (and `om-log`'s persistent
//! topic) writes, syncs, renames or replays goes through a [`Vfs`], so
//! tests can drive the *whole* durable stack through a deterministic
//! fault injector instead of hoping a real disk misbehaves on cue.
//!
//! Three players:
//!
//! * [`RealVfs`] — the passthrough production implementation (plain
//!   `std::fs`). The default everywhere; zero behavioural change.
//! * [`FaultVfs`] — a seeded fault injector: fail-the-Nth-fsync, torn
//!   writes (K of N bytes reach the file, then an error), transient
//!   `EINTR`-style interruptions, disk-full after a byte budget, and
//!   read-side corruption (a bit flip on replay). It also **records**
//!   every mutating operation — the op log the crash-consistency
//!   torture harness replays.
//! * [`CrashImage`] — the power-loss simulator: given a recorded op log
//!   and a boundary index, it materializes the directory a machine that
//!   lost power *at that op* could plausibly reboot with, under an
//!   ordered-journal durability model:
//!
//!   - bytes covered by an `fsync` (`sync_data`/`sync_all`) are
//!     guaranteed on media;
//!   - unsynced bytes survive only as a seed-chosen **prefix** (write
//!     order is preserved, amount is arbitrary — this is what makes
//!     torn frames);
//!   - directory entries (creates, renames, unlinks) are guaranteed
//!     once a `dir_sync` of their parent follows, and otherwise survive
//!     or vanish on a seed-chosen coin;
//!   - directory *creation* is assumed ordered (journalled), so the
//!     store's `wal/`/`snap/` skeleton always exists.
//!
//! The model is documented in `docs/FAULTS.md`; the harness lives in
//! `crates/storage/tests/torture.rs`.

use om_common::rng::SplitMix64;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One open file of a [`Vfs`] — the write-side handle surface the
/// durable stores use (they never seek; segments are append-only and
/// snapshots are written whole).
pub trait VfsFile: Send {
    /// Writes the whole buffer (the stores' single write primitive —
    /// one cohort, snapshot or record per call).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flushes file *data* to the device (`fdatasync`).
    fn sync_data(&mut self) -> io::Result<()>;
    /// Flushes data and metadata to the device (`fsync`).
    fn sync_all(&mut self) -> io::Result<()>;
    /// Truncates (or extends) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
}

/// The filesystem operations of the durable stores. Implementations
/// must be cheap to share (`Arc<dyn Vfs>` is cloned per store).
pub trait Vfs: Send + Sync {
    /// Creates (truncating if present) `path` for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens `path` in append mode, creating it if absent.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens an existing `path` writable without truncating (the
    /// torn-tail truncation handle).
    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Reads the whole file — the replay/recovery read path (and the
    /// read-side corruption hook).
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Writes `bytes` as the whole content of `path` (create/truncate;
    /// **not** synced — advisory files only).
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Atomically renames `from` to `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Unlinks `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Fsyncs the directory itself, making entry changes (creates,
    /// renames, unlinks) inside it durable against power loss.
    fn dir_sync(&self, path: &Path) -> io::Result<()>;
}

/// Retries `write_all` through transient `Interrupted` errors (the
/// `EINTR` class a [`FaultVfs`] injects; a real `File::write_all`
/// already retries internally). Anything else — including torn writes,
/// which leave bytes behind — is returned to the caller.
pub fn write_all_retry(file: &mut dyn VfsFile, buf: &[u8]) -> io::Result<()> {
    const MAX_INTERRUPTS: usize = 8;
    let mut attempts = 0;
    loop {
        match file.write_all(buf) {
            Err(e) if e.kind() == io::ErrorKind::Interrupted && attempts < MAX_INTERRUPTS => {
                attempts += 1;
            }
            other => return other,
        }
    }
}

// -- RealVfs ----------------------------------------------------------------

/// The production [`Vfs`]: a direct passthrough to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

struct RealFile(File);

impl VfsFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
}

impl Vfs for RealVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(File::create(path)?)))
    }
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(
            OpenOptions::new().create(true).append(true).open(path)?,
        )))
    }
    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(OpenOptions::new().write(true).open(path)?)))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(path, bytes)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }
    fn dir_sync(&self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_all()
    }
}

/// The default VFS instance stores open with when none is injected.
pub fn real_vfs() -> Arc<dyn Vfs> {
    Arc::new(RealVfs)
}

// -- op log -----------------------------------------------------------------

/// One recorded filesystem mutation — the unit the torture harness
/// simulates power loss *between* (and, for writes, *inside of*).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsOp {
    /// `create(path)` — truncating create.
    Create(PathBuf),
    /// `open_append(path)` — creates the file if absent.
    OpenAppend(PathBuf),
    /// `write_all(buf)` on the handle of `path`.
    Write(PathBuf, Vec<u8>),
    /// `write_file(path, bytes)` — whole-file replace, unsynced.
    WriteFile(PathBuf, Vec<u8>),
    /// `set_len(len)` on the handle of `path`.
    SetLen(PathBuf, u64),
    /// `sync_data()` on the handle of `path`.
    SyncData(PathBuf),
    /// `sync_all()` on the handle of `path`.
    SyncAll(PathBuf),
    /// `rename(from, to)`.
    Rename(PathBuf, PathBuf),
    /// `remove_file(path)`.
    Remove(PathBuf),
    /// `dir_sync(path)`.
    DirSync(PathBuf),
}

// -- FaultVfs ---------------------------------------------------------------

/// One scheduled fault. Counters are 1-based over the *matching*
/// operation class and each fault fires exactly once.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Fault {
    /// Fail the `nth` fsync (`sync_data` or `sync_all`) with an IO
    /// error; the data may or may not have reached the device.
    FailSync { nth: u64 },
    /// On the `nth` `write_all`, persist only a seed-chosen strict
    /// prefix of the buffer and return an error — a torn write.
    TornWrite { nth: u64 },
    /// On the `nth` `write_all`, write nothing and return a transient
    /// `Interrupted` error (the `EINTR` class; retryable).
    Interrupt { nth: u64 },
    /// Once cumulative written bytes reach `after_bytes`, every write
    /// fails with a disk-full error (bytes up to the budget land).
    DiskFull { after_bytes: u64 },
    /// Flip one seed-chosen bit in the result of the `nth` `read`.
    CorruptRead { nth: u64 },
}

struct FaultState {
    faults: Vec<Fault>,
    fired: Vec<String>,
    log: Vec<VfsOp>,
    recording: bool,
    writes_seen: u64,
    syncs_seen: u64,
    reads_seen: u64,
    bytes_written: u64,
    rng: SplitMix64,
}

impl FaultState {
    fn record(&mut self, op: VfsOp) {
        if self.recording {
            self.log.push(op);
        }
    }

    fn take_fault(&mut self, pick: impl Fn(&Fault) -> bool) -> Option<Fault> {
        let i = self.faults.iter().position(pick)?;
        Some(self.faults.remove(i))
    }
}

/// A seeded, scheduled fault injector that is also the torture
/// harness's operation recorder. Clones share one schedule and one log.
///
/// With no faults scheduled it is a pure recorder — byte-for-byte the
/// behaviour of [`RealVfs`] plus the op log.
#[derive(Clone)]
pub struct FaultVfs {
    state: Arc<Mutex<FaultState>>,
}

impl std::fmt::Debug for FaultVfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("FaultVfs")
            .field("pending_faults", &st.faults.len())
            .field("fired", &st.fired)
            .field("ops_recorded", &st.log.len())
            .finish()
    }
}

impl FaultVfs {
    /// A fault injector whose torn-write lengths, bit positions and
    /// crash coins derive from `seed` (print it on failure; replaying
    /// the same seed replays the same faults).
    pub fn new(seed: u64) -> Self {
        FaultVfs {
            state: Arc::new(Mutex::new(FaultState {
                faults: Vec::new(),
                fired: Vec::new(),
                log: Vec::new(),
                recording: false,
                writes_seen: 0,
                syncs_seen: 0,
                reads_seen: 0,
                bytes_written: 0,
                rng: SplitMix64::new(seed),
            })),
        }
    }

    /// Records every mutating operation into the op log (see
    /// [`FaultVfs::take_log`]).
    pub fn recording(self) -> Self {
        self.state.lock().recording = true;
        self
    }

    /// Schedules the `nth` fsync (1-based, `sync_data` + `sync_all`
    /// combined) to fail.
    pub fn fail_nth_sync(self, nth: u64) -> Self {
        self.state.lock().faults.push(Fault::FailSync { nth });
        self
    }

    /// Schedules the `nth` `write_all` to tear: a seed-chosen strict
    /// prefix lands, then an error.
    pub fn torn_write(self, nth: u64) -> Self {
        self.state.lock().faults.push(Fault::TornWrite { nth });
        self
    }

    /// Schedules the `nth` `write_all` to fail once with a transient
    /// `Interrupted` error.
    pub fn interrupt_write(self, nth: u64) -> Self {
        self.state.lock().faults.push(Fault::Interrupt { nth });
        self
    }

    /// Schedules disk-full behaviour once `after_bytes` total bytes
    /// have been written through this VFS.
    pub fn disk_full_after(self, after_bytes: u64) -> Self {
        self.state.lock().faults.push(Fault::DiskFull { after_bytes });
        self
    }

    /// Schedules one bit flip in the result of the `nth` `read`.
    pub fn corrupt_read(self, nth: u64) -> Self {
        self.state.lock().faults.push(Fault::CorruptRead { nth });
        self
    }

    /// Labels of the faults that have fired so far (assertion hook).
    pub fn fired(&self) -> Vec<String> {
        self.state.lock().fired.clone()
    }

    /// The recorded op log so far (a clone; recording continues).
    pub fn take_log(&self) -> Vec<VfsOp> {
        self.state.lock().log.clone()
    }

    /// Number of operations recorded so far — the ack-time marker the
    /// torture harness snapshots after each acknowledged commit.
    pub fn log_len(&self) -> usize {
        self.state.lock().log.len()
    }

    /// Total fsyncs observed (both flavours).
    pub fn syncs_seen(&self) -> u64 {
        self.state.lock().syncs_seen
    }

    fn err(kind: io::ErrorKind, label: &str, st: &mut FaultState) -> io::Error {
        st.fired.push(label.to_string());
        io::Error::new(kind, format!("injected fault: {label}"))
    }
}

/// A [`FaultVfs`] file handle: forwards to the real file underneath,
/// consulting the shared fault schedule on every write/sync.
struct FaultFile {
    path: PathBuf,
    file: File,
    state: Arc<Mutex<FaultState>>,
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut st = self.state.lock();
        st.writes_seen += 1;
        st.record(VfsOp::Write(self.path.clone(), buf.to_vec()));
        let n = st.writes_seen;
        if st.take_fault(|f| matches!(f, Fault::Interrupt { nth } if *nth == n)).is_some() {
            return Err(FaultVfs::err(io::ErrorKind::Interrupted, "interrupted write", &mut st));
        }
        if st.take_fault(|f| matches!(f, Fault::TornWrite { nth } if *nth == n)).is_some() {
            // Strict prefix: at least 0, at most len-1 bytes land.
            let k = st.rng.next_bounded(buf.len().max(1) as u64) as usize;
            st.bytes_written += k as u64;
            let torn = self.file.write_all(&buf[..k]);
            let e = FaultVfs::err(io::ErrorKind::Other, "torn write", &mut st);
            drop(st);
            torn?;
            return Err(e);
        }
        if let Some(Fault::DiskFull { after_bytes }) =
            st.faults.iter().find(|f| matches!(f, Fault::DiskFull { .. })).cloned()
        {
            if st.bytes_written + buf.len() as u64 > after_bytes {
                // Fill to the budget, then refuse. The fault stays
                // scheduled: a full disk stays full.
                let k = (after_bytes.saturating_sub(st.bytes_written)) as usize;
                st.bytes_written = after_bytes;
                let partial = self.file.write_all(&buf[..k.min(buf.len())]);
                let e = FaultVfs::err(io::ErrorKind::Other, "disk full", &mut st);
                drop(st);
                partial?;
                return Err(e);
            }
        }
        st.bytes_written += buf.len() as u64;
        drop(st);
        self.file.write_all(buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        let mut st = self.state.lock();
        st.syncs_seen += 1;
        st.record(VfsOp::SyncData(self.path.clone()));
        let n = st.syncs_seen;
        if st.take_fault(|f| matches!(f, Fault::FailSync { nth } if *nth == n)).is_some() {
            return Err(FaultVfs::err(io::ErrorKind::Other, "fsync failure", &mut st));
        }
        drop(st);
        self.file.sync_data()
    }

    fn sync_all(&mut self) -> io::Result<()> {
        let mut st = self.state.lock();
        st.syncs_seen += 1;
        st.record(VfsOp::SyncAll(self.path.clone()));
        let n = st.syncs_seen;
        if st.take_fault(|f| matches!(f, Fault::FailSync { nth } if *nth == n)).is_some() {
            return Err(FaultVfs::err(io::ErrorKind::Other, "fsync failure", &mut st));
        }
        drop(st);
        self.file.sync_all()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.state.lock().record(VfsOp::SetLen(self.path.clone(), len));
        self.file.set_len(len)
    }
}

impl Vfs for FaultVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.state.lock().record(VfsOp::Create(path.to_path_buf()));
        Ok(Box::new(FaultFile {
            path: path.to_path_buf(),
            file: File::create(path)?,
            state: self.state.clone(),
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.state.lock().record(VfsOp::OpenAppend(path.to_path_buf()));
        Ok(Box::new(FaultFile {
            path: path.to_path_buf(),
            file: OpenOptions::new().create(true).append(true).open(path)?,
            state: self.state.clone(),
        }))
    }

    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(FaultFile {
            path: path.to_path_buf(),
            file: OpenOptions::new().write(true).open(path)?,
            state: self.state.clone(),
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = fs::read(path)?;
        let mut st = self.state.lock();
        st.reads_seen += 1;
        let n = st.reads_seen;
        if st.take_fault(|f| matches!(f, Fault::CorruptRead { nth } if *nth == n)).is_some() {
            if !bytes.is_empty() {
                let bit = st.rng.next_bounded(bytes.len() as u64 * 8);
                bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            }
            st.fired.push("read corruption".into());
        }
        Ok(bytes)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.state
            .lock()
            .record(VfsOp::WriteFile(path.to_path_buf(), bytes.to_vec()));
        fs::write(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.state
            .lock()
            .record(VfsOp::Rename(from.to_path_buf(), to.to_path_buf()));
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.state.lock().record(VfsOp::Remove(path.to_path_buf()));
        fs::remove_file(path)
    }

    fn dir_sync(&self, path: &Path) -> io::Result<()> {
        self.state.lock().record(VfsOp::DirSync(path.to_path_buf()));
        File::open(path)?.sync_all()
    }
}

// -- crash-image materializer ------------------------------------------------

/// Simulated inode: logical content plus the fsync floor.
#[derive(Default, Clone)]
struct SimInode {
    content: Vec<u8>,
    /// Bytes guaranteed on media (monotone except truncation).
    synced: usize,
}

/// One pending namespace mutation, durable once a `dir_sync` of its
/// parent directory follows it in the log, otherwise decided by a
/// seeded coin at crash time.
#[derive(Debug)]
struct NameEvent {
    index: usize,
    dir: PathBuf,
    durable: bool,
    kind: NameEventKind,
}

#[derive(Debug)]
enum NameEventKind {
    Link(PathBuf, usize),
    Rename(PathBuf, PathBuf),
    Unlink(PathBuf),
}

/// Materializes power-loss crash images from a recorded op log — see
/// the module docs for the durability model.
pub struct CrashImage;

impl CrashImage {
    /// Builds, under `out`, the directory tree a machine that lost
    /// power after `boundary` ops (a prefix of `log`) could reboot
    /// with. Paths in the log are rebased from `root` onto `out`.
    /// `seed` decides every non-guaranteed outcome (unsynced-tail
    /// length per file, uncovered entry-op coins) — the same
    /// `(log, boundary, seed)` always yields the same image.
    pub fn materialize(
        log: &[VfsOp],
        boundary: usize,
        seed: u64,
        root: &Path,
        out: &Path,
    ) -> io::Result<()> {
        let boundary = boundary.min(log.len());
        let mut inodes: Vec<SimInode> = Vec::new();
        // Live (volatile) namespace: name -> inode index.
        let mut names: HashMap<PathBuf, usize> = HashMap::new();
        let mut events: Vec<NameEvent> = Vec::new();

        let parent = |p: &Path| p.parent().map(Path::to_path_buf).unwrap_or_default();
        for (i, op) in log[..boundary].iter().enumerate() {
            match op {
                VfsOp::Create(p) | VfsOp::WriteFile(p, _) => {
                    let ino = inodes.len();
                    inodes.push(SimInode::default());
                    if let VfsOp::WriteFile(_, bytes) = op {
                        inodes[ino].content = bytes.clone();
                    }
                    let fresh = names.insert(p.clone(), ino).is_none();
                    // An overwrite replaces the inode behind an existing
                    // entry; only a fresh name is an entry mutation.
                    if fresh {
                        events.push(NameEvent {
                            index: i,
                            dir: parent(p),
                            durable: false,
                            kind: NameEventKind::Link(p.clone(), ino),
                        });
                    } else if let Some(ino) = names.get(p) {
                        // Keep the namespace pointing at the new inode.
                        let ino = *ino;
                        for e in events.iter_mut() {
                            if let NameEventKind::Link(name, target) = &mut e.kind {
                                if name == p {
                                    *target = ino;
                                }
                            }
                        }
                    }
                }
                VfsOp::OpenAppend(p) => {
                    if !names.contains_key(p) {
                        let ino = inodes.len();
                        inodes.push(SimInode::default());
                        names.insert(p.clone(), ino);
                        events.push(NameEvent {
                            index: i,
                            dir: parent(p),
                            durable: false,
                            kind: NameEventKind::Link(p.clone(), ino),
                        });
                    }
                }
                VfsOp::Write(p, bytes) => {
                    if let Some(&ino) = names.get(p) {
                        inodes[ino].content.extend_from_slice(bytes);
                    }
                }
                VfsOp::SetLen(p, len) => {
                    if let Some(&ino) = names.get(p) {
                        let inode = &mut inodes[ino];
                        inode.content.truncate(*len as usize);
                        inode.synced = inode.synced.min(*len as usize);
                    }
                }
                VfsOp::SyncData(p) | VfsOp::SyncAll(p) => {
                    if let Some(&ino) = names.get(p) {
                        inodes[ino].synced = inodes[ino].content.len();
                    }
                }
                VfsOp::Rename(from, to) => {
                    if let Some(ino) = names.remove(from) {
                        names.insert(to.clone(), ino);
                        events.push(NameEvent {
                            index: i,
                            dir: parent(to),
                            durable: false,
                            kind: NameEventKind::Rename(from.clone(), to.clone()),
                        });
                    }
                }
                VfsOp::Remove(p) => {
                    names.remove(p);
                    events.push(NameEvent {
                        index: i,
                        dir: parent(p),
                        durable: false,
                        kind: NameEventKind::Unlink(p.clone()),
                    });
                }
                VfsOp::DirSync(d) => {
                    // Guarantees every earlier entry mutation in `d`.
                    for e in events.iter_mut() {
                        if e.index < i && e.dir == *d {
                            e.durable = true;
                        }
                    }
                }
            }
        }

        // Replay the entry mutations into the durable namespace:
        // guaranteed ones always apply, uncovered ones flip a
        // deterministic coin.
        let mut rng = SplitMix64::new(seed ^ (boundary as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut durable_names: HashMap<PathBuf, usize> = HashMap::new();
        for e in &events {
            let applies = e.durable || rng.chance(0.5);
            if !applies {
                continue;
            }
            match &e.kind {
                NameEventKind::Link(p, ino) => {
                    durable_names.insert(p.clone(), *ino);
                }
                NameEventKind::Rename(from, to) => {
                    if let Some(ino) = durable_names.remove(from) {
                        durable_names.insert(to.clone(), ino);
                    }
                }
                NameEventKind::Unlink(p) => {
                    durable_names.remove(p);
                }
            }
        }

        // Write the image: synced floor always; an arbitrary seeded
        // prefix of the unsynced tail on top.
        fs::create_dir_all(out)?;
        for (name, ino) in &durable_names {
            let inode = &inodes[*ino];
            let unsynced = inode.content.len() - inode.synced;
            let survive = inode.synced + rng.next_bounded(unsynced as u64 + 1) as usize;
            let rel = name.strip_prefix(root).map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("recorded path {name:?} outside root {root:?}"),
                )
            })?;
            let target = out.join(rel);
            if let Some(dir) = target.parent() {
                fs::create_dir_all(dir)?;
            }
            fs::write(&target, &inode.content[..survive])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "om-vfs-test-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    struct DirGuard(PathBuf);
    impl Drop for DirGuard {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn real_vfs_round_trips_and_renames() {
        let dir = scratch("real");
        let _g = DirGuard(dir.clone());
        let vfs = RealVfs;
        let mut f = vfs.create(&dir.join("a.tmp")).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_data().unwrap();
        drop(f);
        vfs.rename(&dir.join("a.tmp"), &dir.join("a")).unwrap();
        vfs.dir_sync(&dir).unwrap();
        assert_eq!(vfs.read(&dir.join("a")).unwrap(), b"hello");
        let mut f = vfs.open_write(&dir.join("a")).unwrap();
        f.set_len(2).unwrap();
        drop(f);
        assert_eq!(vfs.read(&dir.join("a")).unwrap(), b"he");
        vfs.remove_file(&dir.join("a")).unwrap();
        assert!(vfs.read(&dir.join("a")).is_err());
    }

    #[test]
    fn fault_vfs_fires_each_fault_once_and_records() {
        let dir = scratch("fault");
        let _g = DirGuard(dir.clone());
        let vfs = FaultVfs::new(7)
            .recording()
            .fail_nth_sync(2)
            .interrupt_write(2)
            .torn_write(4);
        let mut f = vfs.open_append(&dir.join("seg")).unwrap();
        f.write_all(b"one").unwrap();
        f.sync_data().unwrap();
        // Second write interrupts once, then succeeds via the retry
        // helper (zero bytes land on the interrupted attempt).
        write_all_retry(f.as_mut(), b"two").unwrap();
        // Second sync fails.
        assert!(f.sync_data().is_err());
        // Third sync works again (transient device hiccup).
        f.sync_data().unwrap();
        // The 4th write tears: a strict prefix lands, the call errors.
        assert!(f.write_all(b"0123456789").is_err());
        drop(f);
        let on_disk = fs::read(dir.join("seg")).unwrap();
        assert!(on_disk.starts_with(b"onetwo"));
        assert!(on_disk.len() < "onetwo0123456789".len(), "torn write stored a strict prefix");
        assert_eq!(
            vfs.fired(),
            vec!["interrupted write", "fsync failure", "torn write"]
        );
        // The log recorded every attempt, including the interrupted and
        // torn ones, in order.
        let writes: Vec<_> = vfs
            .take_log()
            .into_iter()
            .filter(|op| matches!(op, VfsOp::Write(..)))
            .collect();
        assert_eq!(writes.len(), 4);
    }

    #[test]
    fn fault_vfs_disk_full_sticks() {
        let dir = scratch("full");
        let _g = DirGuard(dir.clone());
        let vfs = FaultVfs::new(1).disk_full_after(4);
        let mut f = vfs.open_append(&dir.join("seg")).unwrap();
        f.write_all(b"abc").unwrap();
        assert!(f.write_all(b"def").is_err(), "crossing the budget fails");
        assert!(f.write_all(b"g").is_err(), "a full disk stays full");
        assert_eq!(fs::read(dir.join("seg")).unwrap(), b"abcd", "filled to the budget");
    }

    #[test]
    fn fault_vfs_read_corruption_flips_one_bit() {
        let dir = scratch("flip");
        let _g = DirGuard(dir.clone());
        fs::write(dir.join("f"), vec![0u8; 64]).unwrap();
        let vfs = FaultVfs::new(3).corrupt_read(2);
        let clean = vfs.read(&dir.join("f")).unwrap();
        assert_eq!(clean, vec![0u8; 64], "first read untouched");
        let corrupt = vfs.read(&dir.join("f")).unwrap();
        let flipped: u32 = corrupt.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flipped");
        assert_eq!(vfs.read(&dir.join("f")).unwrap(), vec![0u8; 64], "fault fired once");
    }

    #[test]
    fn crash_image_keeps_synced_bytes_and_bounds_unsynced_tails() {
        let root = PathBuf::from("/store");
        let seg = root.join("wal").join("seg");
        let log = vec![
            VfsOp::OpenAppend(seg.clone()),
            VfsOp::DirSync(root.join("wal")),
            VfsOp::Write(seg.clone(), b"synced".to_vec()),
            VfsOp::SyncData(seg.clone()),
            VfsOp::Write(seg.clone(), b"-unsynced-tail".to_vec()),
        ];
        for boundary in 1..=log.len() {
            for seed in [1u64, 2, 3, 99] {
                let out = scratch("img");
                let _g = DirGuard(out.clone());
                CrashImage::materialize(&log, boundary, seed, &root, &out).unwrap();
                let img = out.join("wal").join("seg");
                if boundary < 2 {
                    // Entry not dir-synced yet: existence is coin-decided,
                    // content empty either way.
                    if img.exists() {
                        assert_eq!(fs::read(&img).unwrap(), b"");
                    }
                    continue;
                }
                let bytes = fs::read(&img).expect("dir-synced entry always survives");
                if boundary >= 4 {
                    assert!(bytes.starts_with(b"synced"), "fsynced bytes are guaranteed");
                }
                assert!(
                    b"synced-unsynced-tail".starts_with(&bytes[..]),
                    "crash content is a prefix of what was written"
                );
            }
        }
    }

    #[test]
    fn crash_image_rename_is_guaranteed_only_after_dir_sync() {
        let root = PathBuf::from("/s");
        let tmp = root.join("snap").join("x.tmp");
        let fin = root.join("snap").join("x.snap");
        let mut log = vec![
            VfsOp::Create(tmp.clone()),
            VfsOp::Write(tmp.clone(), b"data".to_vec()),
            VfsOp::SyncData(tmp.clone()),
            VfsOp::Rename(tmp.clone(), fin.clone()),
        ];
        // Before the dir sync: either name may appear, never both.
        let mut saw_tmp = false;
        let mut saw_fin = false;
        for seed in 0..16u64 {
            let out = scratch("ren");
            let _g = DirGuard(out.clone());
            CrashImage::materialize(&log, log.len(), seed, &root, &out).unwrap();
            let t = out.join("snap").join("x.tmp").exists();
            let f = out.join("snap").join("x.snap").exists();
            assert!(!(t && f), "a rename never leaves both names");
            saw_tmp |= t;
            saw_fin |= f;
        }
        assert!(saw_tmp && saw_fin, "coins explore both rename outcomes");
        // After the dir sync the final name is guaranteed with full
        // content (it was fsynced before the rename).
        log.push(VfsOp::DirSync(root.join("snap")));
        for seed in 0..8u64 {
            let out = scratch("ren2");
            let _g = DirGuard(out.clone());
            CrashImage::materialize(&log, log.len(), seed, &root, &out).unwrap();
            assert!(!out.join("snap").join("x.tmp").exists());
            assert_eq!(fs::read(out.join("snap").join("x.snap")).unwrap(), b"data");
        }
    }

    #[test]
    fn crash_image_truncation_caps_the_synced_floor() {
        let root = PathBuf::from("/t");
        let f = root.join("f");
        let log = vec![
            VfsOp::OpenAppend(f.clone()),
            VfsOp::DirSync(root.clone()),
            VfsOp::Write(f.clone(), b"0123456789".to_vec()),
            VfsOp::SyncData(f.clone()),
            VfsOp::SetLen(f.clone(), 4),
            VfsOp::SyncData(f.clone()),
        ];
        let out = scratch("trunc");
        let _g = DirGuard(out.clone());
        CrashImage::materialize(&log, log.len(), 5, &root, &out).unwrap();
        assert_eq!(fs::read(out.join("f")).unwrap(), b"0123");
    }
}
