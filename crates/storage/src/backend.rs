//! The `StateBackend` trait: the transactional surface the platform
//! bindings actually use, captured once so storage is pluggable.

use om_common::config::BackendKind;
use om_common::OmResult;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One write of a multi-key commit. `value == None` deletes the key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOp {
    /// Key the write targets.
    pub key: Vec<u8>,
    /// New value, or `None` for a deletion.
    pub value: Option<Vec<u8>>,
}

/// An ordered batch of writes submitted through [`StateBackend::commit`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteBatch {
    ops: Vec<WriteOp>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// A batch over pre-built ops (applied in order).
    pub fn from_ops(ops: Vec<WriteOp>) -> Self {
        Self { ops }
    }

    /// Stages an insert/update of `key`.
    pub fn put(mut self, key: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>) -> Self {
        self.ops.push(WriteOp {
            key: key.into(),
            value: Some(value.into()),
        });
        self
    }

    /// Stages a deletion of `key`.
    pub fn delete(mut self, key: impl Into<Vec<u8>>) -> Self {
        self.ops.push(WriteOp {
            key: key.into(),
            value: None,
        });
        self
    }

    /// Number of staged writes.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch stages no writes.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The staged writes, in submission order.
    pub fn ops(&self) -> &[WriteOp] {
        &self.ops
    }

    /// Consumes the batch into its writes.
    pub fn into_ops(self) -> Vec<WriteOp> {
        self.ops
    }
}

/// A client-scoped handle providing **read-your-writes** over a backend.
///
/// Sessions are cheap, single-threaded cursors: the eventual backend uses
/// them to serve reads from its (possibly lagging) secondary replica while
/// guaranteeing a session never unsees its own writes; the snapshot
/// backend satisfies the guarantee trivially because its commits are
/// synchronous.
pub trait StateSession: Send {
    /// Reads `key`, honouring read-your-writes for this session.
    fn get(&mut self, key: &[u8]) -> Option<Vec<u8>>;

    /// Writes through the backend, recording the write in the session's
    /// causal context.
    fn put(&mut self, key: &[u8], value: &[u8]);

    /// Deletes through the backend, recording the delete in the session's
    /// causal context.
    fn delete(&mut self, key: &[u8]);

    /// How many reads could not be served locally and had to fall back to
    /// the authoritative copy (the cost the weaker discipline charges).
    fn fallbacks(&self) -> u64;
}

/// The uniform storage surface behind the platform bindings.
///
/// The contract distils what the bindings need from their concrete stores:
/// point reads and writes, prefix scans, read-your-writes sessions, and an
/// **atomic multi-key commit with an abort path**. How much of that
/// contract is honoured — and at what cost — is exactly the axis the
/// benchmark measures:
///
/// | | [`commit`](StateBackend::commit) | [`get_many`](StateBackend::get_many) |
/// |---|---|---|
/// | eventual | applied per key (torn states observable) | independent reads |
/// | snapshot isolation | atomic, aborts on conflict | one consistent snapshot |
///
/// ```
/// use om_common::config::BackendKind;
/// use om_storage::{make_backend, WriteBatch};
///
/// let backend = make_backend(BackendKind::SnapshotIsolation, 4);
/// backend.put(b"stock/1", b"5");
/// assert_eq!(backend.get(b"stock/1"), Some(b"5".to_vec()));
///
/// // Atomic multi-key commit: place the order and consume the stock
/// // together (under snapshot isolation, no reader sees one without
/// // the other).
/// let batch = WriteBatch::new()
///     .put(b"order/7".to_vec(), b"placed".to_vec())
///     .delete(b"stock/1".to_vec());
/// backend.commit(batch).unwrap();
/// assert_eq!(backend.get(b"stock/1"), None);
///
/// // Read-your-writes session: a session never unsees its own write,
/// // even when the backend serves reads from a lagging replica.
/// let mut session = backend.session();
/// session.put(b"cart/9", b"item");
/// assert_eq!(session.get(b"cart/9"), Some(b"item".to_vec()));
/// ```
pub trait StateBackend: Send + Sync {
    /// Which discipline this backend implements.
    fn kind(&self) -> BackendKind;

    /// Authoritative point read (latest committed value).
    fn get(&self, key: &[u8]) -> Option<Vec<u8>>;

    /// Single-key write, immediately visible to [`StateBackend::get`].
    /// Panics if the store cannot honour it (a wedged durable store) —
    /// production write paths that must survive storage faults use
    /// [`StateBackend::try_put`] instead.
    fn put(&self, key: &[u8], value: &[u8]);

    /// Single-key delete. Panics like [`StateBackend::put`] on a store
    /// that cannot honour it.
    fn delete(&self, key: &[u8]);

    /// Fallible single-key write: identical visibility semantics to
    /// [`StateBackend::put`], but a store that cannot accept writes (a
    /// wedged [`FileDurable`](BackendKind::FileDurable) store) returns
    /// the typed error instead of panicking, so callers can shed or
    /// retry. The memory backends never fail.
    fn try_put(&self, key: &[u8], value: &[u8]) -> OmResult<()> {
        self.put(key, value);
        Ok(())
    }

    /// Fallible single-key delete — see [`StateBackend::try_put`].
    fn try_delete(&self, key: &[u8]) -> OmResult<()> {
        self.delete(key);
        Ok(())
    }

    /// Whether the store is **wedged**: a durable-write failure left it
    /// unable to accept commits, and every write fails fast with
    /// [`om_common::OmError::Wedged`] until [`StateBackend::unwedge`]
    /// repairs it. Memory backends are never wedged.
    fn is_wedged(&self) -> bool {
        false
    }

    /// Repairs a wedged store in place (close, truncate the torn tail,
    /// re-open, verify), returning the torn bytes dropped. `None` means
    /// the backend has no wedge concept (the memory disciplines);
    /// `Some(Err(_))` means the repair itself failed and the store is
    /// still wedged.
    fn unwedge(&self) -> Option<OmResult<u64>> {
        None
    }

    /// Multi-key read. The snapshot backend serves all keys from one
    /// snapshot; the eventual backend reads each key independently, so a
    /// concurrent commit may be observed half-applied.
    fn get_many(&self, keys: &[&[u8]]) -> Vec<Option<Vec<u8>>>;

    /// All live `(key, value)` pairs whose key starts with `prefix`,
    /// ordered by key.
    fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)>;

    /// Applies a multi-key batch. The snapshot backend commits atomically
    /// and returns `Err` (the abort path — buffered writes discarded) when
    /// first-committer-wins validation keeps failing; the eventual backend
    /// applies last-writer-wins per key and cannot abort. Returns the
    /// number of writes applied.
    fn commit(&self, batch: WriteBatch) -> OmResult<usize>;

    /// [`commit`](StateBackend::commit) **by reference**: identical
    /// semantics without consuming the ops, so retry loops (and per-epoch
    /// checkpoint commits) pay no copy on the common first-attempt
    /// success path. The default clones into a batch; both shipped
    /// backends override it copy-free.
    fn commit_ops(&self, ops: &[WriteOp]) -> OmResult<usize> {
        self.commit(WriteBatch::from_ops(ops.to_vec()))
    }

    /// Opens a read-your-writes session.
    fn session(&self) -> Box<dyn StateSession + '_>;

    /// Blocks until asynchronous work (replication) has drained; after
    /// quiesce an eventual backend's replicas agree.
    fn quiesce(&self);

    /// Number of live keys.
    fn len(&self) -> usize;

    /// Whether the backend holds no live keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Backend diagnostic counters (replication lag, commit conflicts, …).
    fn counters(&self) -> BTreeMap<String, u64>;
}

/// Constructs the backend for `kind` with at least `shards` lock domains
/// (rounded up to a power of two). This is the single seam `RunConfig`
/// drives: everything above it holds an `Arc<dyn StateBackend>`.
///
/// A [`BackendKind::FileDurable`] backend built here lives in a scratch
/// directory that is removed when the backend drops; pass a concrete
/// directory through [`make_backend_at`] to get restartable state.
pub fn make_backend(kind: BackendKind, shards: usize) -> Arc<dyn StateBackend> {
    make_backend_at(kind, shards, None).expect("backend construction")
}

/// [`make_backend`] with an explicit durable-state directory.
///
/// Only [`BackendKind::FileDurable`] consults `data_dir` — it opens (or
/// initialises) the store there, recovering whatever a previous process
/// left behind, and keeps the directory on drop. The memory-only
/// backends ignore it. `None` falls back to a self-cleaning scratch
/// directory for the file backend.
pub fn make_backend_at(
    kind: BackendKind,
    shards: usize,
    data_dir: Option<&std::path::Path>,
) -> OmResult<Arc<dyn StateBackend>> {
    make_backend_with(
        kind,
        shards,
        data_dir,
        &om_common::config::DurableOptions::default(),
    )
}

/// [`make_backend_at`] with explicit
/// [`DurableOptions`](om_common::config::DurableOptions) — the full
/// config-driven seam: `RunConfig::durable` / `PlatformSpec::durable`
/// select the file backend's fsync policy, group-commit window and
/// snapshot mode here. The memory-only backends ignore `durable`.
pub fn make_backend_with(
    kind: BackendKind,
    shards: usize,
    data_dir: Option<&std::path::Path>,
    durable: &om_common::config::DurableOptions,
) -> OmResult<Arc<dyn StateBackend>> {
    Ok(match kind {
        BackendKind::Eventual => Arc::new(crate::eventual::EventualBackend::new(shards)),
        BackendKind::SnapshotIsolation => Arc::new(crate::snapshot::SnapshotBackend::new(shards)),
        BackendKind::FileDurable => {
            let options = crate::file::FileBackendOptions::from_durable(shards, durable);
            match data_dir {
                Some(dir) => Arc::new(crate::file::FileBackend::open(dir, options)?),
                None => Arc::new(crate::file::FileBackend::scratch_with(options)?),
            }
        }
    })
}

/// Routes `key` to one of `1 << bits`-style power-of-two shard arrays.
/// Shared by both backends so a key lands on the same shard index in
/// either discipline (useful when comparing shard balance).
pub(crate) fn shard_of(key: &[u8], mask: u64) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() & mask) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_builder_collects_ops_in_order() {
        let batch = WriteBatch::new()
            .put(b"a".to_vec(), b"1".to_vec())
            .delete(b"b".to_vec())
            .put(b"c".to_vec(), b"3".to_vec());
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        assert_eq!(batch.ops()[0].key, b"a");
        assert_eq!(batch.ops()[1].value, None);
        assert_eq!(batch.ops()[2].value.as_deref(), Some(&b"3"[..]));
    }

    #[test]
    fn factory_builds_both_disciplines() {
        for kind in BackendKind::ALL {
            let b = make_backend(kind, 4);
            assert_eq!(b.kind(), kind);
            b.put(b"k", b"v");
            assert_eq!(b.get(b"k"), Some(b"v".to_vec()));
            assert_eq!(b.len(), 1);
        }
    }

    #[test]
    fn shard_routing_is_stable_and_masked() {
        for mask in [0u64, 1, 3, 7, 63] {
            let s = shard_of(b"some-key", mask);
            assert_eq!(s, shard_of(b"some-key", mask));
            assert!(s as u64 <= mask);
        }
    }
}
