//! The file-backed durable backend: a sharded write-ahead-log +
//! snapshot store whose state survives a full process crash.
//!
//! This is the only [`StateBackend`] whose contents outlive the process:
//! every commit — single-key writes included — is appended to an
//! append-only WAL segment as **one framed, checksummed batch** before it
//! becomes visible, so recovery can never observe half of a multi-key
//! commit. The write path is built around **group commit**
//! ([`crate::group_commit`]): committers stage their frame under the
//! appender lock and park on a commit barrier; a single cohort leader
//! performs ONE flush (+`fsync` under
//! [`FileBackendOptions::sync_commits`]) for everyone staged, so N
//! concurrent committers share one sync instead of paying N.
//!
//! Snapshots bound WAL replay. In [`SnapshotMode::Full`] each snapshot
//! rewrites the whole state; in [`SnapshotMode::Incremental`] (the
//! default) only the keys dirtied since the previous snapshot are
//! written as a `delta-<seq>` file chained from the last full base, and
//! compaction folds a long or heavy chain back into a base — snapshot
//! cost scales with churn, not state size.
//!
//! On-disk layout under the store's directory (formats are specified
//! byte-for-byte in `docs/DURABILITY.md`):
//!
//! ```text
//! <dir>/wal/wal-<first_seq>.log     append-only framed commit batches
//! <dir>/snap/snap-<seq>.snap       full state as of commit <seq>
//! <dir>/snap/delta-<seq>.delta     keys dirtied since the previous
//!                                  snapshot file, chained on the base
//! <dir>/snap/<stem>-<seq>.idx      advisory sidecar index (bloom +
//!                                  sparse key samples) of the base or
//!                                  delta next to it
//! ```
//!
//! Since PR 7 bases and deltas are written in the **v2 partitioned
//! format** (`OMSNAP02`/`OMDELT02`): a section table in the header maps
//! each in-memory shard to a key-sorted region of the file, so recovery
//! loads sections in parallel ([`FileBackendOptions::recovery_threads`])
//! and the sidecar indexes give [`crate::delta_index::ColdReader`]
//! point access without replay. v1 monolithic files from older stores
//! still load (the header magic selects the parser).
//!
//! Recovery ([`FileBackend::open`] over an existing directory) loads the
//! newest base snapshot, applies the deltas chained above it in order,
//! replays every WAL frame with a higher commit sequence, and
//! **truncates a torn tail**: the first frame of the last segment that
//! fails its length or CRC check marks the point where the previous
//! process died mid-append — everything from there on is discarded,
//! landing the store exactly on the last fully-committed batch. A torn
//! frame in any non-final segment is real corruption and refuses to
//! open.
//!
//! ```
//! use om_storage::{FileBackend, FileBackendOptions, StateBackend, WriteBatch};
//!
//! let dir = std::env::temp_dir().join(format!("om-doc-file-{}", std::process::id()));
//! let backend = FileBackend::open(&dir, FileBackendOptions::default()).unwrap();
//! let batch = WriteBatch::new().put(b"order/1".to_vec(), b"placed".to_vec());
//! backend.commit(batch).unwrap();
//! drop(backend);
//!
//! // A cold restart recovers the committed state from the files alone.
//! let reborn = FileBackend::open(&dir, FileBackendOptions::default()).unwrap();
//! assert_eq!(reborn.get(b"order/1"), Some(b"placed".to_vec()));
//! # drop(reborn);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

use crate::backend::{shard_of, StateBackend, StateSession, WriteBatch, WriteOp};
use crate::delta_index::{DeltaIndex, PartBuild};
use crate::group_commit::{ChainState, CommitGroup, SegmentFile, StagedBatch, StagedWal};
use crate::shards_pow2;
use crate::vfs::{real_vfs, write_all_retry, Vfs};
use om_common::checksum::{parse_frame, push_frame};
use om_common::config::{BackendKind, DurableOptions, GroupCommitPolicy, SnapshotMode};
use om_common::{OmError, OmResult};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fs::{self, File};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Tuning knobs of a [`FileBackend`].
#[derive(Debug, Clone, Copy)]
pub struct FileBackendOptions {
    /// In-memory shard (lock-domain) count, rounded up to a power of two.
    pub shards: usize,
    /// Commits between snapshots (`0` = never snapshot; the WAL then
    /// grows unboundedly — useful only for tests that inspect the raw
    /// log).
    pub snapshot_every: u64,
    /// WAL segment roll threshold in bytes: an append that leaves the
    /// current segment beyond this size starts a new one.
    pub segment_bytes: u64,
    /// `fsync` every commit cohort before acknowledging it. Off by
    /// default: a commit is pushed to the operating system before it is
    /// acknowledged, which survives a **process** crash (the durability
    /// this store claims); syncing additionally survives kernel/power
    /// failure at a latency cost that group commit amortizes.
    pub sync_commits: bool,
    /// Group-commit policy: [`GroupCommitPolicy::Off`] disables the
    /// barrier entirely — every commit pays its own flush+fsync,
    /// serialized (the PR 4 write path, kept as the bench baseline).
    /// `Fixed(w)` routes commits through the cohort barrier with a
    /// fixed leader window of `w` µs (`0` flushes as soon as leadership
    /// is acquired). `Adaptive{..}` lets the leader watch the cohort
    /// grow and flush at the target size, on arrival stall, or at the
    /// window cap — whichever is first.
    pub group_commit: GroupCommitPolicy,
    /// Full vs incremental snapshots.
    pub snapshot_mode: SnapshotMode,
    /// Incremental mode: fold the delta chain into a fresh base once it
    /// holds this many deltas.
    pub compact_max_deltas: u64,
    /// Incremental mode: fold the chain once cumulative delta bytes
    /// exceed this percentage of the base size.
    pub compact_ratio_pct: u64,
    /// Worker threads used to load snapshot/delta partitions on cold
    /// recovery (`0` = auto: one per core, capped at 8; `1` forces the
    /// serial path). WAL replay stays sequential regardless.
    pub recovery_threads: usize,
}

impl Default for FileBackendOptions {
    fn default() -> Self {
        Self {
            shards: 8,
            snapshot_every: 1_024,
            segment_bytes: 1 << 20,
            sync_commits: false,
            group_commit: GroupCommitPolicy::Fixed(0),
            snapshot_mode: SnapshotMode::Incremental,
            compact_max_deltas: 16,
            compact_ratio_pct: 100,
            recovery_threads: 0,
        }
    }
}

impl FileBackendOptions {
    /// Maps the run-config level [`DurableOptions`] onto backend
    /// options — the seam `RunConfig`/`PlatformSpec` select the write
    /// path through.
    pub fn from_durable(shards: usize, durable: &DurableOptions) -> Self {
        Self {
            shards,
            sync_commits: durable.sync_commits,
            group_commit: durable.group_commit,
            snapshot_mode: durable.snapshot_mode,
            compact_max_deltas: durable.compact_max_deltas,
            compact_ratio_pct: durable.compact_ratio_pct,
            recovery_threads: durable.recovery_threads,
            ..Self::default()
        }
    }
}

// -- batch payload codec ----------------------------------------------------
// (frames come from `om_common::checksum` — the encoding shared with
// om-log's persistent topic)

/// `tag ++ key_len ++ key [++ val_len ++ value]` — the op encoding
/// shared by WAL batches and delta-snapshot entries.
fn encode_op(out: &mut Vec<u8>, key: &[u8], value: Option<&[u8]>) {
    match value {
        Some(v) => {
            out.push(1);
            out.extend_from_slice(&(key.len() as u32).to_le_bytes());
            out.extend_from_slice(key);
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(v);
        }
        None => {
            out.push(0);
            out.extend_from_slice(&(key.len() as u32).to_le_bytes());
            out.extend_from_slice(key);
        }
    }
}

/// Decodes one op starting at `*at`, advancing the cursor.
pub(crate) fn decode_op(payload: &[u8], at: &mut usize) -> Option<(Vec<u8>, Option<Vec<u8>>)> {
    let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
        if payload.len() - *at < n {
            return None;
        }
        let s = &payload[*at..*at + n];
        *at += n;
        Some(s)
    };
    let tag = take(at, 1)?[0];
    let key_len = u32::from_le_bytes(take(at, 4)?.try_into().ok()?) as usize;
    let key = take(at, key_len)?.to_vec();
    let value = match tag {
        1 => {
            let val_len = u32::from_le_bytes(take(at, 4)?.try_into().ok()?) as usize;
            Some(take(at, val_len)?.to_vec())
        }
        0 => None,
        _ => return None,
    };
    Some((key, value))
}

fn encode_batch(seq: u64, ops: &[WriteOp]) -> Vec<u8> {
    let mut cap = 12;
    for op in ops {
        cap += 5 + op.key.len() + op.value.as_ref().map(|v| 4 + v.len()).unwrap_or(0);
    }
    let mut out = Vec::with_capacity(cap);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        encode_op(&mut out, &op.key, op.value.as_deref());
    }
    out
}

pub(crate) fn decode_batch(payload: &[u8]) -> Option<(u64, Vec<WriteOp>)> {
    if payload.len() < 12 {
        return None;
    }
    let seq = u64::from_le_bytes(payload[..8].try_into().ok()?);
    let n = u32::from_le_bytes(payload[8..12].try_into().ok()?) as usize;
    let mut at = 12usize;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let (key, value) = decode_op(payload, &mut at)?;
        ops.push(WriteOp { key, value });
    }
    if at != payload.len() {
        return None;
    }
    Some((seq, ops))
}

/// Decodes a payload that holds exactly one op (a delta-snapshot
/// entry).
pub(crate) fn decode_op_payload(payload: &[u8]) -> Option<(Vec<u8>, Option<Vec<u8>>)> {
    let mut at = 0usize;
    let op = decode_op(payload, &mut at)?;
    (at == payload.len()).then_some(op)
}

// -- snapshot-family headers -------------------------------------------------

/// Magic payload prefix of a v1 (monolithic) base snapshot header.
const SNAP_MAGIC: &[u8; 8] = b"OMSNAP01";
/// Magic payload prefix of a v1 (monolithic) delta snapshot header.
const DELTA_MAGIC: &[u8; 8] = b"OMDELT01";
/// Magic payload prefix of a v2 (partitioned) base snapshot header.
const SNAP_MAGIC_V2: &[u8; 8] = b"OMSNAP02";
/// Magic payload prefix of a v2 (partitioned) delta snapshot header.
const DELTA_MAGIC_V2: &[u8; 8] = b"OMDELT02";

/// One partition section of a v2 snapshot-family file: `n` key-sorted
/// entry frames occupying the absolute byte range `[off, off+len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Section {
    pub off: u64,
    pub len: u64,
    pub n: u64,
}

/// The parsed header frame of a base or delta file (v1 or v2).
#[derive(Debug, Clone)]
pub(crate) struct SnapHeader {
    /// Base snapshot (`OMSNAP*`) vs delta (`OMDELT*`).
    pub is_base: bool,
    /// v1 monolithic file: no section table, entries unsorted.
    pub legacy: bool,
    /// Commit sequence the file covers up to.
    pub seq: u64,
    /// Total entry frames in the body.
    pub n_entries: u64,
    /// v2 section table (empty for v1).
    pub sections: Vec<Section>,
}

/// Byte length of a v2 header frame with `parts` sections — the body
/// therefore starts at this absolute offset.
fn v2_header_len(parts: usize) -> usize {
    // frame(8) ++ magic(8) ++ seq(8) ++ n_entries(8) ++ parts(4) ++
    // parts × (off(8) ++ len(8) ++ n(8))
    8 + 28 + parts * 24
}

/// Parses the header frame at the start of a snapshot-family file
/// (either version), returning it plus the body's start offset. `None`
/// on any structural damage.
pub(crate) fn parse_snap_header(bytes: &[u8]) -> Option<(SnapHeader, usize)> {
    let (payload, body_start) = parse_frame(bytes, 0).ok()??;
    if payload.len() < 24 {
        return None;
    }
    let magic: &[u8; 8] = payload[..8].try_into().ok()?;
    let (is_base, legacy) = match magic {
        m if m == SNAP_MAGIC => (true, true),
        m if m == DELTA_MAGIC => (false, true),
        m if m == SNAP_MAGIC_V2 => (true, false),
        m if m == DELTA_MAGIC_V2 => (false, false),
        _ => return None,
    };
    let seq = u64::from_le_bytes(payload[8..16].try_into().ok()?);
    let n_entries = u64::from_le_bytes(payload[16..24].try_into().ok()?);
    let sections = if legacy {
        if payload.len() != 24 {
            return None;
        }
        Vec::new()
    } else {
        if payload.len() < 28 {
            return None;
        }
        let parts = u32::from_le_bytes(payload[24..28].try_into().ok()?) as usize;
        if parts == 0 || !parts.is_power_of_two() || payload.len() != 28 + parts * 24 {
            return None;
        }
        let mut sections = Vec::with_capacity(parts);
        for p in 0..parts {
            let at = 28 + p * 24;
            sections.push(Section {
                off: u64::from_le_bytes(payload[at..at + 8].try_into().ok()?),
                len: u64::from_le_bytes(payload[at + 8..at + 16].try_into().ok()?),
                n: u64::from_le_bytes(payload[at + 16..at + 24].try_into().ok()?),
            });
        }
        if sections.iter().map(|s| s.n).sum::<u64>() != n_entries {
            return None;
        }
        sections
    };
    Some((
        SnapHeader {
            is_base,
            legacy,
            seq,
            n_entries,
            sections,
        },
        body_start,
    ))
}

/// One v2 partition's entries in key order (`None` value = tombstone;
/// bases hold only puts).
type PartEntries = Vec<(Vec<u8>, Option<Vec<u8>>)>;

/// Builds a complete v2 snapshot-family file — header frame with a
/// section table, then one key-sorted entry section per partition —
/// together with its sidecar index (built from the exact offsets being
/// written). `parts[i]` must already be key-sorted; base files encode
/// `key ++ value` entries (values must be `Some`), deltas the tagged op
/// encoding (tombstones allowed).
fn build_v2_file(is_base: bool, seq: u64, parts: &[PartEntries]) -> (Vec<u8>, DeltaIndex) {
    let body_start = v2_header_len(parts.len()) as u64;
    let mut body = Vec::new();
    let mut sections = Vec::with_capacity(parts.len());
    let mut builds = Vec::with_capacity(parts.len());
    let mut n_entries = 0u64;
    let mut abs = body_start;
    for part in parts {
        let off = abs;
        let mut build = PartBuild::default();
        for (key, value) in part {
            let mut payload = Vec::with_capacity(9 + key.len());
            if is_base {
                let v = value.as_ref().expect("base snapshot entries are puts");
                payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
                payload.extend_from_slice(key);
                payload.extend_from_slice(&(v.len() as u32).to_le_bytes());
                payload.extend_from_slice(v);
            } else {
                encode_op(&mut payload, key, value.as_deref());
            }
            build.add(key, abs);
            let before = body.len();
            push_frame(&mut body, &payload);
            abs += (body.len() - before) as u64;
        }
        n_entries += part.len() as u64;
        sections.push(Section {
            off,
            len: abs - off,
            n: part.len() as u64,
        });
        builds.push(build);
    }
    let mut header = Vec::with_capacity(28 + parts.len() * 24);
    header.extend_from_slice(if is_base { SNAP_MAGIC_V2 } else { DELTA_MAGIC_V2 });
    header.extend_from_slice(&seq.to_le_bytes());
    header.extend_from_slice(&n_entries.to_le_bytes());
    header.extend_from_slice(&(parts.len() as u32).to_le_bytes());
    for s in &sections {
        header.extend_from_slice(&s.off.to_le_bytes());
        header.extend_from_slice(&s.len.to_le_bytes());
        header.extend_from_slice(&s.n.to_le_bytes());
    }
    let mut out = Vec::with_capacity(body_start as usize + body.len());
    push_frame(&mut out, &header);
    debug_assert_eq!(out.len() as u64, body_start);
    out.extend_from_slice(&body);
    (out, DeltaIndex::assemble(seq, builds))
}

/// Lists `prefix<seq>ext` files in `dir`, ascending by sequence (the
/// raw listing shared by recovery and the cold reader; tmp-file cleanup
/// is the live backend's job).
pub(crate) fn sorted_files_in(
    dir: &Path,
    prefix: &str,
    ext: &str,
) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = name
            .strip_prefix(prefix)
            .and_then(|n| n.strip_suffix(ext))
            .and_then(|n| n.parse().ok())
        {
            out.push((seq, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// Worker threads a recovery with `configured` resolves to: `0` = one
/// per available core, capped at 8.
fn resolved_recovery_threads(configured: usize) -> usize {
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    }
}

// -- the backend ------------------------------------------------------------

/// One in-memory shard: the live map plus the keys dirtied since the
/// last snapshot file (base or delta) — what the next incremental
/// snapshot writes.
#[derive(Default)]
struct Shard {
    map: HashMap<Vec<u8>, Vec<u8>>,
    dirty: HashSet<Vec<u8>>,
}

/// The file-backed durable implementation of [`StateBackend`] — see the
/// module docs for formats and the recovery rules.
pub struct FileBackend {
    dir: PathBuf,
    options: FileBackendOptions,
    /// The filesystem seam every byte of this store flows through:
    /// [`crate::vfs::RealVfs`] in production, a fault injector in the
    /// torture harness.
    vfs: Arc<dyn Vfs>,
    /// Power-of-two in-memory mirror of the on-disk state (the read
    /// path); rebuilt from snapshots + WAL on open.
    shards: Vec<RwLock<Shard>>,
    mask: u64,
    /// The cheap staging half of the write path (see
    /// [`crate::group_commit`]). Held for microseconds per commit.
    appender: Mutex<StagedWal>,
    /// The expensive durable half: open segment + snapshot chain. Held
    /// by cohort leaders (or by every commit when group commit is off).
    /// Lock order: flusher before appender, never the reverse.
    flusher: Mutex<SegmentFile>,
    /// The commit barrier cohort leaders are elected through.
    group: CommitGroup,
    /// Set when a WAL write/sync failed after staging was drained: the
    /// store can no longer tell what is durable, so every further
    /// commit fails fast instead of silently acknowledging lost data.
    wedged: AtomicBool,
    /// Multi-key visibility gate: batches apply to the shard array under
    /// the write side, multi-key reads take the read side — so live
    /// readers never observe a torn batch either (the on-disk guarantee,
    /// mirrored in memory).
    multi: RwLock<()>,
    /// Exclusive OS lock on `<dir>/LOCK`, held for the store's lifetime
    /// so two live processes can never interleave WAL appends. The OS
    /// releases it when the process dies (kill -9 included), so a stale
    /// lock can never brick recovery.
    _lock: File,
    /// Remove the directory on drop (scratch stores only).
    owns_dir: bool,
    commits: AtomicU64,
    wal_bytes: AtomicU64,
    snapshots: AtomicU64,
    deltas_written: AtomicU64,
    snapshot_delta_bytes: AtomicU64,
    compactions: AtomicU64,
    segments_rolled: AtomicU64,
    recovered_commits: AtomicU64,
    torn_tail_bytes: AtomicU64,
    unwedges: AtomicU64,
    maintenance_errors: AtomicU64,
    indexes_written: AtomicU64,
    index_rebuilds: AtomicU64,
}

impl FileBackend {
    /// Opens (or initialises) a durable store in `dir`, recovering any
    /// state a previous process left there: newest base snapshot +
    /// delta chain + WAL replay + torn-tail truncation. The directory
    /// is created if absent and is **kept** on drop.
    pub fn open(dir: impl AsRef<Path>, options: FileBackendOptions) -> OmResult<Self> {
        Self::build(dir.as_ref().to_path_buf(), options, false, real_vfs())
    }

    /// [`open`](Self::open) with an explicit [`Vfs`] — the fault
    /// injection seam: the torture harness passes a
    /// [`crate::vfs::FaultVfs`] here and every byte the store writes,
    /// syncs, renames or replays flows through it.
    pub fn open_with_vfs(
        dir: impl AsRef<Path>,
        options: FileBackendOptions,
        vfs: Arc<dyn Vfs>,
    ) -> OmResult<Self> {
        Self::build(dir.as_ref().to_path_buf(), options, false, vfs)
    }

    /// A store in a fresh scratch directory under the system temp dir,
    /// **removed when the backend drops** — what
    /// [`make_backend`](crate::make_backend) uses when no `data_dir` is
    /// configured, so matrix sweeps never leak files.
    pub fn scratch(shards: usize) -> OmResult<Self> {
        Self::scratch_with(FileBackendOptions {
            shards,
            ..FileBackendOptions::default()
        })
    }

    /// [`scratch`](Self::scratch) with explicit options (bench sweeps
    /// select sync/window/snapshot-mode per cell).
    pub fn scratch_with(options: FileBackendOptions) -> OmResult<Self> {
        static SCRATCH: AtomicU64 = AtomicU64::new(0);
        let nonce = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let dir = std::env::temp_dir().join(format!(
            "om-file-backend-{}-{}-{}",
            std::process::id(),
            nonce,
            SCRATCH.fetch_add(1, Ordering::Relaxed),
        ));
        Self::build(dir, options, true, real_vfs())
    }

    fn build(
        dir: PathBuf,
        options: FileBackendOptions,
        owns_dir: bool,
        vfs: Arc<dyn Vfs>,
    ) -> OmResult<Self> {
        fn io(dir: &Path, e: std::io::Error) -> OmError {
            OmError::Internal(format!("file backend {dir:?}: {e}"))
        }
        fs::create_dir_all(dir.join("wal")).map_err(|e| io(&dir, e))?;
        fs::create_dir_all(dir.join("snap")).map_err(|e| io(&dir, e))?;
        let lock = om_common::dirlock::lock_dir(&dir)?;
        // Bootstrap segment handle (replaced by `recover` once it has
        // decided which segment to continue appending to; the scratch
        // file is removed there).
        let bootstrap = dir.join("wal").join(".bootstrap");
        let file = vfs.open_append(&bootstrap).map_err(|e| io(&dir, e))?;
        let shard_count = shards_pow2(options.shards);
        let mut backend = Self {
            shards: (0..shard_count).map(|_| RwLock::new(Shard::default())).collect(),
            mask: shard_count as u64 - 1,
            appender: Mutex::new(StagedWal {
                buf: Vec::new(),
                pending: Vec::new(),
                next_seq: 1,
                seg_len: 0,
                commits_since_snapshot: 0,
            }),
            flusher: Mutex::new(SegmentFile {
                file,
                path: bootstrap,
                durable_len: 0,
                chain: ChainState::default(),
            }),
            group: CommitGroup::with_policy(options.group_commit),
            wedged: AtomicBool::new(false),
            multi: RwLock::new(()),
            _lock: lock,
            owns_dir,
            dir,
            options,
            vfs,
            commits: AtomicU64::new(0),
            wal_bytes: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            deltas_written: AtomicU64::new(0),
            snapshot_delta_bytes: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            segments_rolled: AtomicU64::new(0),
            recovered_commits: AtomicU64::new(0),
            torn_tail_bytes: AtomicU64::new(0),
            unwedges: AtomicU64::new(0),
            maintenance_errors: AtomicU64::new(0),
            indexes_written: AtomicU64::new(0),
            index_rebuilds: AtomicU64::new(0),
        };
        backend.recover()?;
        Ok(backend)
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn shard(&self, key: &[u8]) -> &RwLock<Shard> {
        &self.shards[shard_of(key, self.mask)]
    }

    fn io_err(&self, e: std::io::Error) -> OmError {
        OmError::Internal(format!("file backend {:?}: {e}", self.dir))
    }

    // -- recovery ----------------------------------------------------------

    fn sorted_files(&self, sub: &str, prefix: &str, ext: &str) -> OmResult<Vec<(u64, PathBuf)>> {
        let dir = self.dir.join(sub);
        // A `.tmp` is a snapshot/index the dying process never finished
        // writing: the atomic rename never happened, so it is garbage.
        for entry in fs::read_dir(&dir).map_err(|e| self.io_err(e))? {
            let entry = entry.map_err(|e| self.io_err(e))?;
            if entry.file_name().to_string_lossy().ends_with(".tmp") {
                let _ = fs::remove_file(entry.path());
            }
        }
        sorted_files_in(&dir, prefix, ext).map_err(|e| self.io_err(e))
    }

    /// Loads the newest base snapshot plus the deltas chained above it
    /// into the shard array; returns the last covered commit sequence
    /// and records the chain state on the flusher. v2 files load their
    /// partition sections on a bounded worker pool
    /// ([`FileBackendOptions::recovery_threads`]).
    fn load_snapshot_chain(&mut self) -> OmResult<u64> {
        let bases = self.sorted_files("snap", "snap-", ".snap")?;
        let deltas = self.sorted_files("snap", "delta-", ".delta")?;
        let threads = resolved_recovery_threads(self.options.recovery_threads);
        let (base_seq, base_bytes) = match bases.last() {
            Some((seq, path)) => (*seq, self.load_chain_file(path, true, *seq, threads)?),
            None => (0, 0),
        };
        let mut covered = base_seq;
        let mut chain = ChainState {
            base_seq,
            base_bytes,
            deltas: 0,
            delta_bytes: 0,
        };
        for (seq, path) in &deltas {
            if *seq <= base_seq {
                // Superseded by the base; leftover of a crash between
                // rename and prune.
                remove_with_index(self.vfs.as_ref(), path);
                continue;
            }
            let size = self.load_chain_file(path, false, *seq, threads)?;
            chain.chain_delta(*seq, size);
            covered = *seq;
        }
        self.flusher.get_mut().chain = chain;
        Ok(covered)
    }

    /// Loads one base or delta file into the shard array, dispatching on
    /// the header version, and returns its byte size. A v2 file missing
    /// its sidecar index gets one rebuilt (the recovery walk sees every
    /// entry anyway) and persisted best-effort.
    fn load_chain_file(
        &mut self,
        path: &Path,
        expect_base: bool,
        expect_seq: u64,
        threads: usize,
    ) -> OmResult<u64> {
        let corrupt =
            || OmError::Internal(format!("file backend {:?}: snapshot {path:?} is corrupt", self.dir));
        let bytes = self.vfs.read(path).map_err(|e| self.io_err(e))?;
        let (header, body_start) = parse_snap_header(&bytes).ok_or_else(corrupt)?;
        if header.is_base != expect_base || header.seq != expect_seq {
            return Err(corrupt());
        }
        if header.legacy {
            // v1 monolithic file: one sequential pass.
            let mut at = body_start;
            let mut loaded = 0u64;
            while let Some((payload, next)) = parse_frame(&bytes, at).map_err(|_| corrupt())? {
                at = next;
                let (key, value) = if header.is_base {
                    decode_snapshot_entry(payload).map(|(k, v)| (k, Some(v)))
                } else {
                    decode_op_payload(payload)
                }
                .ok_or_else(corrupt)?;
                let shard = self.shards[shard_of(&key, self.mask)].get_mut();
                match value {
                    Some(v) => {
                        shard.map.insert(key, v);
                    }
                    None => {
                        shard.map.remove(&key);
                    }
                }
                loaded += 1;
            }
            if loaded != header.n_entries {
                return Err(corrupt());
            }
        } else {
            self.load_v2_sections(&bytes, &header, path, threads)?;
        }
        Ok(bytes.len() as u64)
    }

    /// Loads a v2 file's partition sections across `threads` workers
    /// (each claims whole sections off a shared counter). When the file
    /// was written with the current shard count — the common case — a
    /// section maps 1:1 onto one in-memory shard, so each worker takes
    /// one uncontended write lock per section; otherwise entries are
    /// re-routed per key. Rebuilds the sidecar index if it is missing or
    /// fails validation.
    fn load_v2_sections(
        &self,
        bytes: &[u8],
        header: &SnapHeader,
        path: &Path,
        threads: usize,
    ) -> OmResult<()> {
        let corrupt =
            || OmError::Internal(format!("file backend {:?}: snapshot {path:?} is corrupt", self.dir));
        for s in &header.sections {
            if s.off < v2_header_len(header.sections.len()) as u64
                || s.off + s.len > bytes.len() as u64
            {
                return Err(corrupt());
            }
        }
        let idx_path = path.with_extension("idx");
        let need_rebuild = !self
            .vfs
            .read(&idx_path)
            .ok()
            .and_then(|b| DeltaIndex::decode(&b))
            .is_some_and(|idx| {
                idx.seq() == header.seq && idx.parts() == header.sections.len()
            });
        let builds: Mutex<Vec<Option<PartBuild>>> =
            Mutex::new((0..header.sections.len()).map(|_| None).collect());
        let next = AtomicUsize::new(0);
        let workers = threads.clamp(1, header.sections.len().max(1));
        let worker = |_: usize| -> OmResult<()> {
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(section) = header.sections.get(i) else {
                    return Ok(());
                };
                let slice = &bytes[section.off as usize..(section.off + section.len) as usize];
                let mut build = need_rebuild.then(PartBuild::default);
                let mut at = 0usize;
                let mut loaded = 0u64;
                let mut last_key: Option<Vec<u8>> = None;
                // One write guard per run of same-shard keys: with the
                // writer's layout that is one guard for the whole
                // section.
                let mut guard: Option<(usize, parking_lot::RwLockWriteGuard<'_, Shard>)> = None;
                while let Some((payload, next_at)) = parse_frame(slice, at).map_err(|_| corrupt())?
                {
                    let (key, value) = if header.is_base {
                        decode_snapshot_entry(payload).map(|(k, v)| (k, Some(v)))
                    } else {
                        decode_op_payload(payload)
                    }
                    .ok_or_else(corrupt)?;
                    if let Some(prev) = &last_key {
                        if *prev >= key {
                            // Sections must be strictly key-sorted; the
                            // cold reader's region scans rely on it.
                            return Err(corrupt());
                        }
                    }
                    if let Some(b) = &mut build {
                        b.add(&key, section.off + at as u64);
                    }
                    last_key = Some(key.clone());
                    let slot = shard_of(&key, self.mask);
                    if guard.as_ref().map(|(s, _)| *s) != Some(slot) {
                        guard = Some((slot, self.shards[slot].write()));
                    }
                    let shard = &mut guard.as_mut().expect("guard just set").1;
                    match value {
                        Some(v) => {
                            shard.map.insert(key, v);
                        }
                        None => {
                            shard.map.remove(&key);
                        }
                    }
                    loaded += 1;
                    at = next_at;
                }
                if loaded != section.n {
                    return Err(corrupt());
                }
                if let Some(b) = build {
                    builds.lock()[i] = Some(b);
                }
            }
        };
        if workers <= 1 {
            worker(0)?;
        } else {
            std::thread::scope(|scope| {
                let worker = &worker;
                let handles: Vec<_> = (0..workers).map(|w| scope.spawn(move || worker(w))).collect();
                let mut first_err = None;
                for h in handles {
                    if let Err(e) = h.join().expect("recovery worker panicked") {
                        first_err.get_or_insert(e);
                    }
                }
                match first_err {
                    Some(e) => Err(e),
                    None => Ok(()),
                }
            })?;
        }
        if need_rebuild {
            let builds = builds
                .into_inner()
                .into_iter()
                .map(|b| b.expect("every section built"))
                .collect();
            let index = DeltaIndex::assemble(header.seq, builds);
            self.persist_index(path, &index);
            self.index_rebuilds.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Replays WAL segments past the snapshot chain, truncating a torn
    /// tail of the final segment, and leaves the appender positioned
    /// after the last valid frame. Replayed keys are marked dirty (they
    /// changed since the last snapshot file).
    fn recover(&mut self) -> OmResult<()> {
        let snap_seq = self.load_snapshot_chain()?;
        let mut last_seq = snap_seq;
        let segments = self.sorted_files("wal", "wal-", ".log")?;
        let mut recovered = 0u64;
        let last_index = segments.len().wrapping_sub(1);
        let mut tail: Option<(PathBuf, u64)> = None;
        for (i, (_, path)) in segments.iter().enumerate() {
            let bytes = self.vfs.read(path).map_err(|e| self.io_err(e))?;
            let mut at = 0usize;
            loop {
                match parse_frame(&bytes, at) {
                    Ok(Some((payload, next))) => {
                        let Some((seq, ops)) = decode_batch(payload) else {
                            // Framed correctly but undecodable: corrupt.
                            return Err(OmError::Internal(format!(
                                "file backend {:?}: WAL segment {path:?} holds an \
                                 undecodable batch at byte {at}",
                                self.dir
                            )));
                        };
                        if seq > last_seq {
                            for op in ops {
                                let slot = shard_of(&op.key, self.mask);
                                let shard = self.shards[slot].get_mut();
                                match op.value {
                                    Some(v) => {
                                        shard.dirty.insert(op.key.clone());
                                        shard.map.insert(op.key, v);
                                    }
                                    None => {
                                        shard.map.remove(&op.key);
                                        shard.dirty.insert(op.key);
                                    }
                                }
                            }
                            last_seq = seq;
                            recovered += 1;
                        }
                        at = next;
                    }
                    Ok(None) => break,
                    Err(torn_at) => {
                        if i != last_index {
                            return Err(OmError::Internal(format!(
                                "file backend {:?}: WAL segment {path:?} is corrupt at \
                                 byte {torn_at} but is not the final segment",
                                self.dir
                            )));
                        }
                        // Torn tail: the previous process died mid-append.
                        // Everything before `torn_at` is fully committed;
                        // drop the rest.
                        self.torn_tail_bytes
                            .fetch_add((bytes.len() - torn_at) as u64, Ordering::Relaxed);
                        let mut f = self.vfs.open_write(path).map_err(|e| self.io_err(e))?;
                        f.set_len(torn_at as u64).map_err(|e| self.io_err(e))?;
                        f.sync_data().map_err(|e| self.io_err(e))?;
                        at = torn_at;
                        break;
                    }
                }
            }
            if i == last_index {
                tail = Some((path.clone(), at as u64));
            }
        }
        self.recovered_commits.store(recovered, Ordering::Relaxed);
        // Continue appending to the last segment, or start the first one.
        let (seg_path, seg_len) = match tail {
            Some(t) => t,
            None => (self.dir.join("wal").join(format!("wal-{}.log", last_seq + 1)), 0),
        };
        let file = self.vfs.open_append(&seg_path).map_err(|e| self.io_err(e))?;
        {
            let fl = self.flusher.get_mut();
            fl.file = file;
            fl.path = seg_path;
            // Everything up to the validated tail position survived the
            // parse — the truncate point a later unwedge rolls back to.
            fl.durable_len = seg_len;
        }
        if self.options.sync_commits {
            // The tail segment may have just been created; its directory
            // entry must be durable before fsynced commits land in it.
            self.sync_dir("wal")?;
        }
        *self.appender.get_mut() = StagedWal {
            buf: Vec::new(),
            pending: Vec::new(),
            next_seq: last_seq + 1,
            seg_len,
            commits_since_snapshot: 0,
        };
        // Tickets resume above the recovered sequence numbers; without
        // the floor the first flush would count the whole recovered
        // history as one cohort and wreck commits_per_sync.
        self.group.reset_floor(last_seq);
        let _ = self.vfs.remove_file(&self.dir.join("wal").join(".bootstrap"));
        Ok(())
    }

    // -- commit path -------------------------------------------------------

    /// The typed fail-fast error of a wedged store. `Acquire` pairs
    /// with the `Release` in [`write_staged`](Self::write_staged): a
    /// committer that observes the flag also observes the failed write
    /// that set it, so it can never ack past a concurrent failure.
    fn wedged_err(&self) -> OmError {
        OmError::Wedged(format!(
            "file backend {:?}: a WAL write failed; commits fail fast until an \
             unwedge repairs the torn tail",
            self.dir
        ))
    }

    fn commit_durable(&self, ops: &[WriteOp]) -> OmResult<usize> {
        if self.wedged.load(Ordering::Acquire) {
            return Err(self.wedged_err());
        }
        if self.options.group_commit.is_grouped() {
            self.commit_grouped(ops)
        } else {
            self.commit_inline(ops)
        }
    }

    /// The group-commit path: stage under the appender lock (cheap),
    /// then park on the barrier until a cohort leader has made the
    /// staged frame durable and applied it.
    fn commit_grouped(&self, ops: &[WriteOp]) -> OmResult<usize> {
        let ticket = {
            let mut ap = self.appender.lock();
            let seq = ap.next_seq;
            let before = ap.buf.len();
            let batch = encode_batch(seq, ops);
            push_frame(&mut ap.buf, &batch);
            let frame_len = (ap.buf.len() - before) as u64;
            ap.next_seq = seq + 1;
            ap.seg_len += frame_len;
            ap.commits_since_snapshot += 1;
            ap.pending.push((seq, ops.to_vec()));
            self.wal_bytes.fetch_add(frame_len, Ordering::Relaxed);
            seq
        };
        self.group.wait_durable(ticket, || self.flush_cohort())?;
        self.commits.fetch_add(1, Ordering::Relaxed);
        Ok(ops.len())
    }

    /// Leader duty: swap the staged cohort out (appenders keep staging
    /// into the next one), write+sync it as one unit, apply it in
    /// sequence order, then run any due maintenance. Returns the
    /// highest durable sequence.
    fn flush_cohort(&self) -> OmResult<u64> {
        // A prior leader's write failed: its cohort's staged batches are
        // gone, so a fresh leader seeing an empty stage must not release
        // those waiters as successful. Fail every re-elected leader.
        if self.wedged.load(Ordering::Acquire) {
            return Err(self.wedged_err());
        }
        let mut fl = self.flusher.lock();
        let (bytes, pending, mut upto) = self.appender.lock().take();
        self.write_staged(&mut fl, &bytes, pending)?;
        if let Some(drained) = self.run_maintenance(&mut fl) {
            upto = upto.max(drained);
        }
        Ok(upto)
    }

    /// Writes `bytes` to the open segment (one `write_all`), fsyncs the
    /// cohort when configured, and applies the staged batches in
    /// sequence order under the visibility gate — durability strictly
    /// before visibility. A write/sync failure wedges the store: the
    /// staged batches are gone and acknowledging anything later would
    /// reorder the WAL.
    fn write_staged(
        &self,
        fl: &mut SegmentFile,
        bytes: &[u8],
        pending: Vec<StagedBatch>,
    ) -> OmResult<()> {
        if !bytes.is_empty() {
            let written = write_all_retry(fl.file.as_mut(), bytes).and_then(|()| {
                if self.options.sync_commits {
                    fl.file.sync_data()
                } else {
                    Ok(())
                }
            });
            if let Err(e) = written {
                // `Release` pairs with the `Acquire` loads on the
                // commit path: any committer that observes the flag
                // also observes this failed write, so a racing
                // committer can never acknowledge past it.
                self.wedged.store(true, Ordering::Release);
                return Err(OmError::Wedged(format!(
                    "file backend {:?}: WAL write failed ({e}); the store is wedged \
                     until an unwedge repairs the torn tail",
                    self.dir
                )));
            }
            fl.durable_len += bytes.len() as u64;
        }
        if !pending.is_empty() {
            let _gate = self.multi.write();
            for (_, ops) in pending {
                self.apply_owned(ops);
            }
        }
        Ok(())
    }

    /// Applies one durable batch to the shard array, marking the keys
    /// dirty for the next incremental snapshot. Callers hold the
    /// visibility gate.
    fn apply_owned(&self, ops: Vec<WriteOp>) {
        for op in ops {
            let slot = shard_of(&op.key, self.mask);
            let mut shard = self.shards[slot].write();
            match op.value {
                Some(v) => {
                    shard.dirty.insert(op.key.clone());
                    shard.map.insert(op.key, v);
                }
                None => {
                    shard.map.remove(&op.key);
                    shard.dirty.insert(op.key);
                }
            }
        }
    }

    /// The barrier-free path ([`GroupCommitPolicy::Off`]): the PR 4
    /// behaviour — every commit writes, flushes and fsyncs its own
    /// frame under the flusher lock, serialized.
    fn commit_inline(&self, ops: &[WriteOp]) -> OmResult<usize> {
        let mut fl = self.flusher.lock();
        let frame = {
            let mut ap = self.appender.lock();
            let seq = ap.next_seq;
            let mut frame = Vec::new();
            push_frame(&mut frame, &encode_batch(seq, ops));
            ap.next_seq = seq + 1;
            ap.seg_len += frame.len() as u64;
            ap.commits_since_snapshot += 1;
            frame
        };
        self.wal_bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.write_staged(&mut fl, &frame, Vec::new())?;
        {
            let _gate = self.multi.write();
            self.apply_owned(ops.to_vec());
        }
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.run_maintenance(&mut fl);
        Ok(ops.len())
    }

    /// Post-commit maintenance (snapshot / segment roll), run by
    /// whoever holds the flusher. The commit it follows is already
    /// durable and visible, so a failure here must NOT be reported as a
    /// failed commit — it is counted and retried on a later commit.
    /// Returns the highest sequence drained by the maintenance pass, if
    /// one ran.
    fn run_maintenance(&self, fl: &mut SegmentFile) -> Option<u64> {
        let due = {
            let ap = self.appender.lock();
            (self.options.snapshot_every > 0
                && ap.commits_since_snapshot >= self.options.snapshot_every)
                || ap.seg_len >= self.options.segment_bytes
        };
        if !due {
            return None;
        }
        match self.maintain(fl) {
            Ok(upto) => Some(upto),
            Err(_) => {
                self.maintenance_errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Holding the flusher: re-drains the stage **under the appender
    /// lock** (so the segment and shard state sit exactly on a commit
    /// boundary and no append can interleave), then snapshots or rolls.
    fn maintain(&self, fl: &mut SegmentFile) -> OmResult<u64> {
        let mut ap = self.appender.lock();
        let (bytes, pending, upto) = ap.take();
        self.write_staged(fl, &bytes, pending)?;
        let snapshot_due = self.options.snapshot_every > 0
            && ap.commits_since_snapshot >= self.options.snapshot_every;
        if snapshot_due {
            self.write_snapshot_locked(fl, &mut ap)?;
        } else if ap.seg_len >= self.options.segment_bytes {
            self.roll_segment_locked(fl, &mut ap)?;
        }
        Ok(upto)
    }

    /// Starts a new WAL segment named after the next commit sequence.
    /// Callers hold both locks (or are in recovery), so every staged
    /// byte has been written to the old segment and the name is exact.
    fn roll_segment_locked(&self, fl: &mut SegmentFile, ap: &mut StagedWal) -> OmResult<()> {
        debug_assert!(ap.buf.is_empty(), "roll with staged bytes would split a segment");
        let path = self
            .dir
            .join("wal")
            .join(format!("wal-{}.log", ap.next_seq));
        let file = self.vfs.open_append(&path).map_err(|e| self.io_err(e))?;
        fl.file = file;
        fl.path = path;
        fl.durable_len = 0;
        ap.seg_len = 0;
        if self.options.sync_commits {
            // Make the new segment's directory entry durable: fsyncing
            // record data into a file whose entry power loss could
            // erase would sync nothing.
            self.sync_dir("wal")?;
        }
        self.segments_rolled.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Writes a snapshot-family file via tmp + fsync + atomic rename +
    /// directory fsync. The directory fsync is what orders the rename
    /// against the WAL prune that follows it: without it, power loss
    /// could undo the (metadata-only) rename while the unlinks survive,
    /// leaving the pruned commits in neither the chain nor the WAL.
    fn persist_snapshot_file(&self, tmp: &Path, fin: &Path, out: &[u8]) -> OmResult<u64> {
        let mut f = self.vfs.create(tmp).map_err(|e| self.io_err(e))?;
        write_all_retry(f.as_mut(), out).map_err(|e| self.io_err(e))?;
        f.sync_data().map_err(|e| self.io_err(e))?;
        drop(f);
        self.vfs.rename(tmp, fin).map_err(|e| self.io_err(e))?;
        self.sync_dir("snap")?;
        Ok(out.len() as u64)
    }

    /// Fsyncs one of the store's subdirectories, making renames,
    /// creations and unlinks inside it durable against power loss.
    fn sync_dir(&self, sub: &str) -> OmResult<()> {
        self.vfs
            .dir_sync(&self.dir.join(sub))
            .map_err(|e| self.io_err(e))
    }

    /// Prunes WAL segments fully covered by a snapshot at `seq` (a
    /// segment named `wal-<first>` with a successor whose first
    /// sequence is <= seq+1 holds only covered records).
    fn prune_wal(&self, seq: u64) -> OmResult<()> {
        let segments = self.sorted_files("wal", "wal-", ".log")?;
        let mut pruned = false;
        for window in segments.windows(2) {
            let (_, ref path) = window[0];
            let (next_first, _) = window[1];
            if next_first <= seq + 1 {
                let _ = self.vfs.remove_file(path);
                pruned = true;
            }
        }
        if pruned {
            self.sync_dir("wal")?;
        }
        Ok(())
    }

    /// Writes the due snapshot — a full base, or (incremental mode with
    /// a live base and a young chain) a delta of the keys dirtied since
    /// the last snapshot file — then prunes covered WAL segments and
    /// rolls to a fresh one. Runs under both locks at a commit
    /// boundary: every staged batch has been written and applied.
    fn write_snapshot_locked(&self, fl: &mut SegmentFile, ap: &mut StagedWal) -> OmResult<()> {
        let seq = ap.next_seq - 1;
        // Keys drained out of the dirty sets for this snapshot attempt.
        // They must go BACK on any failure path: losing them would make
        // a later delta omit their changes while the WAL prune deletes
        // the only durable copy — silent loss of acknowledged commits.
        let mut drained: Vec<Vec<u8>> = Vec::new();
        if self.options.snapshot_mode == SnapshotMode::Incremental && fl.chain.base_seq > 0 {
            if seq == fl.chain.base_seq {
                // Nothing committed since the base: nothing to write.
                ap.commits_since_snapshot = 0;
                return Ok(());
            }
            // Delta sections: per shard, the dirtied keys in key order —
            // a put of the live value, or a tombstone if the key no
            // longer exists.
            let mut parts: Vec<PartEntries> = Vec::with_capacity(self.shards.len());
            let mut n_entries = 0u64;
            for shard in &self.shards {
                let mut shard = shard.write();
                let mut dirty: Vec<Vec<u8>> = shard.dirty.drain().collect();
                dirty.sort_unstable();
                let mut part = Vec::with_capacity(dirty.len());
                for key in dirty {
                    part.push((key.clone(), shard.map.get(&key).cloned()));
                    drained.push(key);
                }
                n_entries += part.len() as u64;
                parts.push(part);
            }
            if n_entries == 0 {
                // Commits happened but every key settled back... cannot
                // actually occur (commits always dirty keys), kept for
                // robustness: just reset the trigger.
                ap.commits_since_snapshot = 0;
                return Ok(());
            }
            let (out, index) = build_v2_file(false, seq, &parts);
            if fl.chain.compaction_due(
                out.len() as u64,
                self.options.compact_max_deltas,
                self.options.compact_ratio_pct,
            ) {
                // Chain too long/heavy: fold into a fresh base instead
                // (fall through to the full-base write below, which
                // restores `drained` if it fails).
                self.compactions.fetch_add(1, Ordering::Relaxed);
            } else {
                let tmp = self.dir.join("snap").join(format!("delta-{seq}.tmp"));
                let fin = self.dir.join("snap").join(format!("delta-{seq}.delta"));
                let written = match self.persist_snapshot_file(&tmp, &fin, &out) {
                    Ok(n) => n,
                    Err(e) => {
                        self.remark_dirty(drained);
                        return Err(e);
                    }
                };
                self.persist_index(&fin, &index);
                fl.chain.chain_delta(seq, written);
                self.deltas_written.fetch_add(1, Ordering::Relaxed);
                self.snapshot_delta_bytes.fetch_add(written, Ordering::Relaxed);
                ap.commits_since_snapshot = 0;
                self.roll_segment_locked(fl, ap)?;
                return self.prune_wal(seq);
            }
        }

        // Full base: the whole live state, one key-sorted section per
        // shard. Dirty sets are cleared only once the base is durably on
        // disk.
        let mut parts: Vec<PartEntries> = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let shard = shard.read();
            let mut part: PartEntries = shard
                .map
                .iter()
                .map(|(k, v)| (k.clone(), Some(v.clone())))
                .collect();
            part.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            parts.push(part);
        }
        let (out, index) = build_v2_file(true, seq, &parts);
        let tmp = self.dir.join("snap").join(format!("snap-{seq}.tmp"));
        let fin = self.dir.join("snap").join(format!("snap-{seq}.snap"));
        let written = match self.persist_snapshot_file(&tmp, &fin, &out) {
            Ok(n) => n,
            Err(e) => {
                // A failed compaction attempt must put the chain back
                // where it was: the drained keys stay pending for the
                // next delta.
                self.remark_dirty(drained);
                return Err(e);
            }
        };
        self.persist_index(&fin, &index);
        // The base covers everything; dirty tracking restarts.
        for shard in &self.shards {
            shard.write().dirty.clear();
        }
        self.snapshots.fetch_add(1, Ordering::Relaxed);
        fl.chain.rebase(seq, written);
        ap.commits_since_snapshot = 0;

        // Everything at or below `seq` is covered by the base: prune
        // older bases, every delta (the base subsumes the chain), their
        // index sidecars, and covered WAL segments.
        for (s, path) in self.sorted_files("snap", "snap-", ".snap")? {
            if s < seq {
                remove_with_index(self.vfs.as_ref(), &path);
            }
        }
        for (s, path) in self.sorted_files("snap", "delta-", ".delta")? {
            if s <= seq {
                remove_with_index(self.vfs.as_ref(), &path);
            }
        }
        self.roll_segment_locked(fl, ap)?;
        self.prune_wal(seq)
    }

    /// Persists the sidecar index next to the data file `fin` with the
    /// same tmp + fsync + rename + directory-fsync discipline.
    /// Best-effort: a failure costs an index rebuild on the next open,
    /// never durability — the data file is already on disk.
    fn persist_index(&self, fin: &Path, index: &DeltaIndex) {
        let tmp = fin.with_extension("idx.tmp");
        let idx = fin.with_extension("idx");
        match self.persist_snapshot_file(&tmp, &idx, &index.encode()) {
            Ok(_) => {
                self.indexes_written.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.maintenance_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Puts keys back on their shards' dirty sets — the rollback for a
    /// snapshot attempt whose file never made it to disk.
    fn remark_dirty(&self, drained: Vec<Vec<u8>>) {
        for key in drained {
            self.shards[shard_of(&key, self.mask)].write().dirty.insert(key);
        }
    }

    /// Forces a snapshot (base or delta, per the configured mode) + WAL
    /// prune right now (maintenance hook; the commit path does this
    /// automatically every [`FileBackendOptions::snapshot_every`]
    /// commits).
    pub fn snapshot_now(&self) -> OmResult<()> {
        let mut fl = self.flusher.lock();
        let mut ap = self.appender.lock();
        let (bytes, pending, _) = ap.take();
        self.write_staged(&mut fl, &bytes, pending)?;
        self.write_snapshot_locked(&mut fl, &mut ap)
    }

    /// Group-commit statistics of this store's barrier (all zero when
    /// the barrier is disabled).
    pub fn group_stats(&self) -> crate::group_commit::CommitGroupStats {
        self.group.stats()
    }

    /// Whether a WAL write failure has wedged this store (every commit
    /// fails fast with [`OmError::Wedged`] until
    /// [`unwedge`](Self::unwedge) repairs it).
    pub fn is_wedged(&self) -> bool {
        self.wedged.load(Ordering::Acquire)
    }

    /// Repairs a wedged store in place: close the segment handle,
    /// truncate the torn tail back to the last successfully-written
    /// byte, re-open, verify the tail parses cleanly, and clear the
    /// wedge so commits flow again. Returns the torn bytes dropped
    /// (`0` if the store was not wedged — the call is an idempotent
    /// no-op then).
    ///
    /// The staged frames of the failed cohort (and anything staged
    /// behind it) are discarded: their committers were never
    /// acknowledged — the barrier fails any still-parked waiter via
    /// [`CommitGroup::abort_below`] — and the in-memory mirror never
    /// applied them, so disk and memory land on exactly the last acked
    /// commit. Commit sequences keep counting from where they were;
    /// recovery tolerates the gap (it applies only frames above the
    /// last covered sequence).
    ///
    /// If the repair itself fails (the device is still refusing IO)
    /// the store stays wedged and the error is returned; the call can
    /// be retried.
    pub fn unwedge(&self) -> OmResult<u64> {
        let mut fl = self.flusher.lock();
        let mut ap = self.appender.lock();
        if !self.wedged.load(Ordering::Acquire) {
            return Ok(0);
        }
        // Drop every staged frame: none of them was acknowledged, and
        // replaying them without their committers waiting would apply
        // writes nobody owns. The barrier must fail their waiters —
        // both locks are held, so no new ticket at or below the bound
        // can appear.
        ap.buf.clear();
        ap.pending.clear();
        self.group.abort_below(ap.next_seq - 1);
        // Close, truncate the torn tail, re-open, verify.
        let on_disk = self.vfs.read(&fl.path).map_err(|e| self.io_err(e))?;
        let torn = (on_disk.len() as u64).saturating_sub(fl.durable_len);
        {
            let mut h = self.vfs.open_write(&fl.path).map_err(|e| self.io_err(e))?;
            h.set_len(fl.durable_len).map_err(|e| self.io_err(e))?;
            h.sync_data().map_err(|e| self.io_err(e))?;
        }
        // Verify: every frame of the kept prefix must parse — if the
        // failure also mangled acknowledged bytes, refuse to serve and
        // stay wedged (recovery from the snapshot chain is the only
        // honest path then).
        let kept = &on_disk[..fl.durable_len.min(on_disk.len() as u64) as usize];
        let mut at = 0usize;
        loop {
            match parse_frame(kept, at) {
                Ok(Some((payload, next))) => {
                    if decode_batch(payload).is_none() {
                        return Err(OmError::Internal(format!(
                            "file backend {:?}: unwedge verification failed — segment \
                             {:?} holds an undecodable batch at byte {at}",
                            self.dir, fl.path
                        )));
                    }
                    at = next;
                }
                Ok(None) => break,
                Err(torn_at) => {
                    return Err(OmError::Internal(format!(
                        "file backend {:?}: unwedge verification failed — segment {:?} \
                         is damaged at byte {torn_at} inside the acknowledged prefix",
                        self.dir, fl.path
                    )));
                }
            }
        }
        fl.file = self.vfs.open_append(&fl.path).map_err(|e| self.io_err(e))?;
        ap.seg_len = fl.durable_len;
        self.unwedges.fetch_add(1, Ordering::Relaxed);
        self.wedged.store(false, Ordering::Release);
        Ok(torn)
    }
}

/// Removes a snapshot-family file together with its `.idx` sidecar (an
/// orphaned sidecar would otherwise shadow a later rebuild).
fn remove_with_index(vfs: &dyn Vfs, path: &Path) {
    let _ = vfs.remove_file(&path.with_extension("idx"));
    let _ = vfs.remove_file(path);
}

pub(crate) fn decode_snapshot_entry(payload: &[u8]) -> Option<(Vec<u8>, Vec<u8>)> {
    if payload.len() < 4 {
        return None;
    }
    let key_len = u32::from_le_bytes(payload[..4].try_into().ok()?) as usize;
    if payload.len() < 4 + key_len + 4 {
        return None;
    }
    let key = payload[4..4 + key_len].to_vec();
    let val_len =
        u32::from_le_bytes(payload[4 + key_len..8 + key_len].try_into().ok()?) as usize;
    if payload.len() != 8 + key_len + val_len {
        return None;
    }
    Some((key, payload[8 + key_len..].to_vec()))
}

impl Drop for FileBackend {
    fn drop(&mut self) {
        if self.owns_dir {
            let _ = fs::remove_dir_all(&self.dir);
        }
    }
}

impl StateBackend for FileBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::FileDurable
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.shard(key).read().map.get(key).cloned()
    }

    fn put(&self, key: &[u8], value: &[u8]) {
        self.commit_ops(&[WriteOp {
            key: key.to_vec(),
            value: Some(value.to_vec()),
        }])
        .expect("file backend write");
    }

    fn delete(&self, key: &[u8]) {
        self.commit_ops(&[WriteOp {
            key: key.to_vec(),
            value: None,
        }])
        .expect("file backend delete");
    }

    fn try_put(&self, key: &[u8], value: &[u8]) -> OmResult<()> {
        self.commit_ops(&[WriteOp {
            key: key.to_vec(),
            value: Some(value.to_vec()),
        }])
        .map(|_| ())
    }

    fn try_delete(&self, key: &[u8]) -> OmResult<()> {
        self.commit_ops(&[WriteOp {
            key: key.to_vec(),
            value: None,
        }])
        .map(|_| ())
    }

    fn is_wedged(&self) -> bool {
        FileBackend::is_wedged(self)
    }

    fn unwedge(&self) -> Option<OmResult<u64>> {
        Some(FileBackend::unwedge(self))
    }

    fn get_many(&self, keys: &[&[u8]]) -> Vec<Option<Vec<u8>>> {
        // Under the visibility gate no commit can apply halfway through
        // this read: multi-key reads are never torn, matching what
        // recovery guarantees for the on-disk state.
        let _gate = self.multi.read();
        keys.iter()
            .map(|k| self.shard(k).read().map.get(*k).cloned())
            .collect()
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let _gate = self.multi.read();
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(
                shard
                    .read()
                    .map
                    .iter()
                    .filter(|(k, _)| k.starts_with(prefix))
                    .map(|(k, v)| (k.clone(), v.clone())),
            );
        }
        out.sort();
        out
    }

    fn commit(&self, batch: WriteBatch) -> OmResult<usize> {
        self.commit_durable(batch.ops())
    }

    fn commit_ops(&self, ops: &[WriteOp]) -> OmResult<usize> {
        self.commit_durable(ops)
    }

    fn session(&self) -> Box<dyn StateSession + '_> {
        Box::new(FileSession { backend: self })
    }

    fn quiesce(&self) {
        // Commits are durable and applied before acknowledging; nothing
        // is asynchronous.
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().map.len()).sum()
    }

    fn counters(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        let commits = self.commits.load(Ordering::Relaxed);
        out.insert("backend.commits".into(), commits);
        out.insert("backend.wal_bytes".into(), self.wal_bytes.load(Ordering::Relaxed));
        out.insert("backend.snapshots".into(), self.snapshots.load(Ordering::Relaxed));
        out.insert("backend.deltas".into(), self.deltas_written.load(Ordering::Relaxed));
        out.insert(
            "backend.snapshot_delta_bytes".into(),
            self.snapshot_delta_bytes.load(Ordering::Relaxed),
        );
        out.insert("backend.compactions".into(), self.compactions.load(Ordering::Relaxed));
        let group = self.group.stats();
        out.insert("backend.group_flushes".into(), group.flushes);
        out.insert("backend.max_commit_cohort".into(), group.max_cohort);
        // Mean commits amortized per sync: the headline group-commit
        // number. 1 when the barrier is off (each commit pays its own
        // sync), 0 before any commit.
        out.insert(
            "backend.commits_per_sync".into(),
            if group.flushes > 0 {
                group.commits_per_flush()
            } else {
                u64::from(commits > 0)
            },
        );
        out.insert(
            "backend.segments_rolled".into(),
            self.segments_rolled.load(Ordering::Relaxed),
        );
        out.insert(
            "backend.recovered_commits".into(),
            self.recovered_commits.load(Ordering::Relaxed),
        );
        out.insert(
            "backend.torn_tail_bytes".into(),
            self.torn_tail_bytes.load(Ordering::Relaxed),
        );
        out.insert("backend.wedged".into(), u64::from(self.is_wedged()));
        out.insert("backend.unwedges".into(), self.unwedges.load(Ordering::Relaxed));
        out.insert(
            "backend.maintenance_errors".into(),
            self.maintenance_errors.load(Ordering::Relaxed),
        );
        out.insert(
            "backend.indexes_written".into(),
            self.indexes_written.load(Ordering::Relaxed),
        );
        out.insert(
            "backend.index_rebuilds".into(),
            self.index_rebuilds.load(Ordering::Relaxed),
        );
        out.insert("backend.shards".into(), self.shards.len() as u64);
        out
    }
}

/// Sessions are trivial here: every write is durable and visible before
/// `put` returns, so a later authoritative read always observes it.
struct FileSession<'a> {
    backend: &'a FileBackend,
}

impl StateSession for FileSession<'_> {
    fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.backend.get(key)
    }

    fn put(&mut self, key: &[u8], value: &[u8]) {
        self.backend.put(key, value);
    }

    fn delete(&mut self, key: &[u8]) {
        self.backend.delete(key);
    }

    fn fallbacks(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_path(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "om-file-test-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    struct DirGuard(PathBuf);
    impl Drop for DirGuard {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn reopen_recovers_committed_state() {
        let dir = scratch_path("reopen");
        let _guard = DirGuard(dir.clone());
        {
            let b = FileBackend::open(&dir, FileBackendOptions::default()).unwrap();
            b.put(b"a", b"1");
            let batch = WriteBatch::new()
                .put(b"b".to_vec(), b"2".to_vec())
                .put(b"c".to_vec(), b"3".to_vec());
            b.commit(batch).unwrap();
            b.delete(b"a");
        }
        let b = FileBackend::open(&dir, FileBackendOptions::default()).unwrap();
        assert_eq!(b.get(b"a"), None);
        assert_eq!(b.get(b"b"), Some(b"2".to_vec()));
        assert_eq!(b.get(b"c"), Some(b"3".to_vec()));
        assert_eq!(b.len(), 2);
        assert_eq!(b.counters()["backend.recovered_commits"], 3);
    }

    #[test]
    fn torn_tail_is_truncated_to_last_full_commit() {
        let dir = scratch_path("torn");
        let _guard = DirGuard(dir.clone());
        let opts = FileBackendOptions {
            snapshot_every: 0,
            ..FileBackendOptions::default()
        };
        {
            let b = FileBackend::open(&dir, opts).unwrap();
            b.put(b"k1", b"v1");
            b.put(b"k2", b"v2");
        }
        // Chop bytes off the single WAL segment: a torn final append.
        let seg = fs::read_dir(dir.join("wal"))
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "log"))
            .unwrap();
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();

        let b = FileBackend::open(&dir, opts).unwrap();
        assert_eq!(b.get(b"k1"), Some(b"v1".to_vec()), "first commit intact");
        assert_eq!(b.get(b"k2"), None, "torn commit discarded");
        assert!(b.counters()["backend.torn_tail_bytes"] > 0);
        // The truncated tail was physically removed: a further reopen is
        // clean and the next commit lands after the valid prefix.
        b.put(b"k3", b"v3");
        drop(b);
        let b = FileBackend::open(&dir, opts).unwrap();
        assert_eq!(b.get(b"k1"), Some(b"v1".to_vec()));
        assert_eq!(b.get(b"k3"), Some(b"v3".to_vec()));
        assert_eq!(b.counters()["backend.torn_tail_bytes"], 0);
    }

    #[test]
    fn full_mode_snapshot_compacts_wal_and_survives_reopen() {
        let dir = scratch_path("snap");
        let _guard = DirGuard(dir.clone());
        let opts = FileBackendOptions {
            snapshot_every: 4,
            snapshot_mode: SnapshotMode::Full,
            ..FileBackendOptions::default()
        };
        {
            let b = FileBackend::open(&dir, opts).unwrap();
            for i in 0..10u8 {
                b.put(&[b'k', i], &[i]);
            }
            assert!(b.counters()["backend.snapshots"] >= 2);
        }
        // Only the newest snapshot (plus its index sidecar) and the
        // short post-snapshot WAL tail remain on disk.
        let snaps = fs::read_dir(dir.join("snap"))
            .unwrap()
            .filter(|e| {
                e.as_ref().unwrap().file_name().to_string_lossy().ends_with(".snap")
            })
            .count();
        assert_eq!(snaps, 1);
        let b = FileBackend::open(&dir, opts).unwrap();
        for i in 0..10u8 {
            assert_eq!(b.get(&[b'k', i]), Some(vec![i]));
        }
    }

    #[test]
    fn incremental_snapshots_write_deltas_proportional_to_churn() {
        let dir = scratch_path("incr");
        let _guard = DirGuard(dir.clone());
        let opts = FileBackendOptions {
            snapshot_every: 0,
            compact_max_deltas: 100,
            compact_ratio_pct: 10_000,
            ..FileBackendOptions::default()
        };
        let b = FileBackend::open(&dir, opts).unwrap();
        // Large base: 256 keys.
        for i in 0..256u16 {
            b.put(format!("key/{i:04}").as_bytes(), &[0u8; 64]);
        }
        b.snapshot_now().unwrap();
        assert_eq!(b.counters()["backend.snapshots"], 1, "first snapshot is a base");
        // Touch only 3 keys; the next snapshot must be a small delta.
        b.put(b"key/0001", b"new");
        b.delete(b"key/0002");
        b.put(b"hot", b"x");
        b.snapshot_now().unwrap();
        let counters = b.counters();
        assert_eq!(counters["backend.deltas"], 1);
        let delta_bytes = counters["backend.snapshot_delta_bytes"];
        assert!(
            delta_bytes < 512,
            "3-key delta must not rewrite the 256-key base (got {delta_bytes} bytes)"
        );
        drop(b);
        // Recovery = base + delta (+ empty WAL tail).
        let b = FileBackend::open(&dir, opts).unwrap();
        assert_eq!(b.get(b"key/0001"), Some(b"new".to_vec()));
        assert_eq!(b.get(b"key/0002"), None, "tombstone recovered");
        assert_eq!(b.get(b"hot"), Some(b"x".to_vec()));
        assert_eq!(b.len(), 256, "255 base survivors + hot");
    }

    #[test]
    fn delta_chain_compacts_back_into_a_base() {
        let dir = scratch_path("compact");
        let _guard = DirGuard(dir.clone());
        let opts = FileBackendOptions {
            snapshot_every: 0,
            compact_max_deltas: 3,
            compact_ratio_pct: 100_000,
            ..FileBackendOptions::default()
        };
        let b = FileBackend::open(&dir, opts).unwrap();
        b.put(b"seed", b"v");
        b.snapshot_now().unwrap(); // base
        for round in 0..5u8 {
            b.put(b"churn", &[round]);
            b.snapshot_now().unwrap();
        }
        let counters = b.counters();
        assert!(counters["backend.compactions"] >= 1, "chain length 3 trips compaction");
        assert!(counters["backend.snapshots"] >= 2, "compaction writes a fresh base");
        // After compaction, old deltas are pruned: at most
        // compact_max_deltas delta files remain.
        let deltas_on_disk = fs::read_dir(dir.join("snap"))
            .unwrap()
            .filter(|e| {
                e.as_ref().unwrap().file_name().to_string_lossy().ends_with(".delta")
            })
            .count();
        assert!(deltas_on_disk <= 3, "stale deltas pruned (got {deltas_on_disk})");
        drop(b);
        let b = FileBackend::open(&dir, opts).unwrap();
        assert_eq!(b.get(b"churn"), Some(vec![4]));
        assert_eq!(b.get(b"seed"), Some(b"v".to_vec()));
    }

    #[test]
    fn deletes_survive_snapshot_and_replay() {
        for mode in [SnapshotMode::Full, SnapshotMode::Incremental] {
            let dir = scratch_path("del");
            let _guard = DirGuard(dir.clone());
            let opts = FileBackendOptions {
                snapshot_mode: mode,
                ..FileBackendOptions::default()
            };
            {
                let b = FileBackend::open(&dir, opts).unwrap();
                b.put(b"gone", b"x");
                b.put(b"kept", b"y");
                b.delete(b"gone");
                b.snapshot_now().unwrap();
                b.put(b"late", b"z");
            }
            let b = FileBackend::open(&dir, opts).unwrap();
            assert_eq!(b.get(b"gone"), None, "{:?}", mode);
            assert_eq!(b.get(b"kept"), Some(b"y".to_vec()));
            assert_eq!(b.get(b"late"), Some(b"z".to_vec()));
        }
    }

    #[test]
    fn scratch_backend_cleans_up_its_directory() {
        let b = FileBackend::scratch(4).unwrap();
        let dir = b.dir().to_path_buf();
        b.put(b"k", b"v");
        assert!(dir.exists());
        drop(b);
        assert!(!dir.exists(), "scratch dir must be removed on drop");
    }

    #[test]
    fn concurrent_multi_reads_never_observe_torn_batches() {
        let b = std::sync::Arc::new(FileBackend::scratch(8).unwrap());
        let keys: Vec<Vec<u8>> = (0..8u8).map(|i| vec![b'k', i]).collect();
        {
            let mut batch = WriteBatch::new();
            for k in &keys {
                batch = batch.put(k.clone(), 0u16.to_le_bytes().to_vec());
            }
            b.commit(batch).unwrap();
        }
        let writer = {
            let b = b.clone();
            let keys = keys.clone();
            std::thread::spawn(move || {
                for round in 1..=100u16 {
                    let mut batch = WriteBatch::new();
                    for k in &keys {
                        batch = batch.put(k.clone(), round.to_le_bytes().to_vec());
                    }
                    b.commit(batch).unwrap();
                }
            })
        };
        let key_refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        for _ in 0..300 {
            let values = b.get_many(&key_refs);
            let distinct: std::collections::HashSet<_> = values.iter().collect();
            assert_eq!(distinct.len(), 1, "torn batch observed: {values:?}");
        }
        writer.join().unwrap();
    }

    #[test]
    fn grouped_commits_share_syncs_under_contention() {
        let opts = FileBackendOptions {
            shards: 8,
            sync_commits: true,
            group_commit: GroupCommitPolicy::Fixed(0),
            ..FileBackendOptions::default()
        };
        let b = std::sync::Arc::new(FileBackend::scratch_with(opts).unwrap());
        const WRITERS: u64 = 8;
        const COMMITS: u64 = 40;
        let mut handles = Vec::new();
        for w in 0..WRITERS {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..COMMITS {
                    b.put(format!("w{w}/k{i}").as_bytes(), &i.to_le_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let counters = b.counters();
        assert_eq!(counters["backend.commits"], WRITERS * COMMITS);
        assert_eq!(b.len() as u64, WRITERS * COMMITS);
        let stats = b.group_stats();
        assert_eq!(stats.released, WRITERS * COMMITS, "every commit released");
        assert!(
            stats.flushes <= stats.released,
            "never more syncs than commits"
        );
        assert!(counters["backend.commits_per_sync"] >= 1);
    }

    #[test]
    fn inline_mode_reports_one_commit_per_sync() {
        let opts = FileBackendOptions {
            group_commit: GroupCommitPolicy::Off,
            ..FileBackendOptions::default()
        };
        let b = FileBackend::scratch_with(opts).unwrap();
        b.put(b"k", b"v");
        let counters = b.counters();
        assert_eq!(counters["backend.commits_per_sync"], 1);
        assert_eq!(counters["backend.group_flushes"], 0);
    }

    #[test]
    fn segments_roll_at_the_size_threshold() {
        let dir = scratch_path("roll");
        let _guard = DirGuard(dir.clone());
        let opts = FileBackendOptions {
            snapshot_every: 0,
            segment_bytes: 256,
            ..FileBackendOptions::default()
        };
        let b = FileBackend::open(&dir, opts).unwrap();
        for i in 0..32u32 {
            b.put(&i.to_be_bytes(), &[0u8; 64]);
        }
        assert!(b.counters()["backend.segments_rolled"] >= 2);
        drop(b);
        let b = FileBackend::open(&dir, opts).unwrap();
        assert_eq!(b.len(), 32, "multi-segment replay restores everything");
    }

    /// Writes a v1 (monolithic, unsorted) snapshot-family file the way
    /// PR 5's writer did.
    fn write_v1_file(path: &Path, magic: &[u8; 8], seq: u64, payloads: &[Vec<u8>]) {
        let mut header = Vec::with_capacity(24);
        header.extend_from_slice(magic);
        header.extend_from_slice(&seq.to_le_bytes());
        header.extend_from_slice(&(payloads.len() as u64).to_le_bytes());
        let mut out = Vec::new();
        push_frame(&mut out, &header);
        for p in payloads {
            push_frame(&mut out, p);
        }
        fs::write(path, out).unwrap();
    }

    #[test]
    fn legacy_v1_snapshot_files_still_recover() {
        let dir = scratch_path("v1compat");
        let _guard = DirGuard(dir.clone());
        fs::create_dir_all(dir.join("snap")).unwrap();
        fs::create_dir_all(dir.join("wal")).unwrap();
        // v1 base at seq 2: {a: 1, b: 2} — entries deliberately unsorted.
        let base: Vec<Vec<u8>> = [(b"b", 2u8), (b"a", 1u8)]
            .iter()
            .map(|(k, v)| {
                let mut p = Vec::new();
                p.extend_from_slice(&(k.len() as u32).to_le_bytes());
                p.extend_from_slice(*k);
                p.extend_from_slice(&1u32.to_le_bytes());
                p.push(*v);
                p
            })
            .collect();
        write_v1_file(&dir.join("snap").join("snap-2.snap"), SNAP_MAGIC, 2, &base);
        // v1 delta at seq 4: put c=3, tombstone a.
        let mut put = Vec::new();
        encode_op(&mut put, b"c", Some(&[3u8]));
        let mut del = Vec::new();
        encode_op(&mut del, b"a", None);
        write_v1_file(&dir.join("snap").join("delta-4.delta"), DELTA_MAGIC, 4, &[put, del]);
        let b = FileBackend::open(&dir, FileBackendOptions::default()).unwrap();
        assert_eq!(b.get(b"a"), None, "v1 delta tombstone applied");
        assert_eq!(b.get(b"b"), Some(vec![2]));
        assert_eq!(b.get(b"c"), Some(vec![3]));
        // Legacy files carry no sections, so no index is rebuilt for
        // them; the next snapshot upgrades the store to v2 + index.
        assert_eq!(b.counters()["backend.index_rebuilds"], 0);
        b.put(b"d", b"4");
        b.snapshot_now().unwrap();
        assert!(b.counters()["backend.indexes_written"] >= 1, "v2 upgrade writes an index");
    }

    #[test]
    fn parallel_and_serial_recovery_agree() {
        let dir = scratch_path("parrec");
        let _guard = DirGuard(dir.clone());
        let opts = FileBackendOptions {
            shards: 8,
            snapshot_every: 0,
            compact_max_deltas: 100,
            compact_ratio_pct: 100_000,
            ..FileBackendOptions::default()
        };
        {
            let b = FileBackend::open(&dir, opts).unwrap();
            for i in 0..300u32 {
                b.put(format!("key/{i:04}").as_bytes(), &i.to_le_bytes());
            }
            b.snapshot_now().unwrap(); // v2 base
            for i in 0..50u32 {
                b.put(format!("key/{:04}", i * 3).as_bytes(), b"churn");
            }
            b.delete(b"key/0001");
            b.snapshot_now().unwrap(); // v2 delta
            b.put(b"tail", b"wal"); // WAL tail past the chain
        }
        let serial = FileBackend::open(
            &dir,
            FileBackendOptions {
                recovery_threads: 1,
                ..opts
            },
        )
        .unwrap();
        let expected: Vec<(Vec<u8>, Vec<u8>)> = serial.scan_prefix(b"");
        drop(serial);
        let parallel = FileBackend::open(
            &dir,
            FileBackendOptions {
                recovery_threads: 4,
                ..opts
            },
        )
        .unwrap();
        assert_eq!(parallel.scan_prefix(b""), expected, "parallel load = serial load");
        assert_eq!(parallel.get(b"key/0001"), None);
        assert_eq!(parallel.get(b"tail"), Some(b"wal".to_vec()));
        drop(parallel);
        // A different shard count than the writer's still recovers (the
        // per-key re-routing path).
        let resharded = FileBackend::open(
            &dir,
            FileBackendOptions {
                shards: 2,
                recovery_threads: 4,
                ..opts
            },
        )
        .unwrap();
        assert_eq!(resharded.scan_prefix(b""), expected, "re-sharded load = serial load");
    }

    #[test]
    fn recovery_rebuilds_missing_or_damaged_indexes() {
        let dir = scratch_path("idxrebuild");
        let _guard = DirGuard(dir.clone());
        let opts = FileBackendOptions {
            snapshot_every: 0,
            ..FileBackendOptions::default()
        };
        {
            let b = FileBackend::open(&dir, opts).unwrap();
            for i in 0..64u32 {
                b.put(format!("k/{i}").as_bytes(), &i.to_le_bytes());
            }
            b.snapshot_now().unwrap();
            assert_eq!(b.counters()["backend.indexes_written"], 1);
        }
        let idx_files: Vec<PathBuf> = fs::read_dir(dir.join("snap"))
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "idx"))
            .collect();
        assert_eq!(idx_files.len(), 1, "one sidecar per chain file");
        fs::remove_file(&idx_files[0]).unwrap();
        let b = FileBackend::open(&dir, opts).unwrap();
        assert_eq!(b.counters()["backend.index_rebuilds"], 1, "missing sidecar rebuilt");
        assert!(idx_files[0].exists(), "rebuilt sidecar persisted");
        assert_eq!(b.len(), 64);
        drop(b);
        // Damage (truncate) the sidecar: validation fails, rebuild again.
        let bytes = fs::read(&idx_files[0]).unwrap();
        fs::write(&idx_files[0], &bytes[..bytes.len() / 2]).unwrap();
        let b = FileBackend::open(&dir, opts).unwrap();
        assert_eq!(b.counters()["backend.index_rebuilds"], 1, "damaged sidecar rebuilt");
        assert_eq!(b.len(), 64);
    }

    #[test]
    fn fsync_failure_wedges_and_unwedge_repairs_in_place() {
        use crate::vfs::FaultVfs;
        let dir = scratch_path("wedge");
        let _guard = DirGuard(dir.clone());
        let opts = FileBackendOptions {
            sync_commits: true,
            snapshot_every: 0,
            ..FileBackendOptions::default()
        };
        let vfs = FaultVfs::new(42).fail_nth_sync(2);
        let b = FileBackend::open_with_vfs(&dir, opts, Arc::new(vfs.clone())).unwrap();
        b.commit(WriteBatch::new().put(b"k1".to_vec(), b"v1".to_vec())).unwrap();
        // The second cohort's fsync fails: the commit errors with the
        // typed wedge, and the store fails fast from then on.
        let err = b.commit(WriteBatch::new().put(b"k2".to_vec(), b"v2".to_vec()));
        assert!(matches!(err, Err(OmError::Wedged(_))), "{err:?}");
        assert!(b.is_wedged());
        assert_eq!(b.get(b"k2"), None, "a failed commit must never become visible");
        let fast = b.commit(WriteBatch::new().put(b"k3".to_vec(), b"v3".to_vec()));
        assert!(matches!(fast, Err(OmError::Wedged(_))), "{fast:?}");
        assert_eq!(b.counters()["backend.wedged"], 1);

        // Unwedge: truncate the torn tail (k2's frame reached the file
        // before the sync failed), verify, resume.
        let torn = b.unwedge().unwrap();
        assert!(torn > 0, "k2's unsynced frame is the torn tail");
        assert!(!b.is_wedged());
        assert_eq!(b.unwedge().unwrap(), 0, "unwedge is idempotent");
        b.commit(WriteBatch::new().put(b"k4".to_vec(), b"v4".to_vec())).unwrap();
        assert_eq!(b.get(b"k4"), Some(b"v4".to_vec()));
        assert_eq!(b.counters()["backend.unwedges"], 1);
        drop(b);

        // A cold reopen over the repaired directory agrees: exactly the
        // acknowledged commits, nothing torn, the sequence gap of the
        // dropped commit tolerated.
        let b = FileBackend::open(&dir, opts).unwrap();
        assert_eq!(b.get(b"k1"), Some(b"v1".to_vec()));
        assert_eq!(b.get(b"k2"), None);
        assert_eq!(b.get(b"k4"), Some(b"v4".to_vec()));
        assert_eq!(b.counters()["backend.torn_tail_bytes"], 0, "no torn tail left behind");
    }

    #[test]
    fn options_map_from_durable_config() {
        let durable = DurableOptions {
            sync_commits: true,
            group_commit: GroupCommitPolicy::Fixed(150),
            snapshot_mode: SnapshotMode::Full,
            compact_max_deltas: 5,
            compact_ratio_pct: 50,
            recovery_threads: 2,
        };
        let opts = FileBackendOptions::from_durable(4, &durable);
        assert!(opts.sync_commits);
        assert_eq!(opts.group_commit, GroupCommitPolicy::Fixed(150));
        assert_eq!(opts.snapshot_mode, SnapshotMode::Full);
        assert_eq!(opts.compact_max_deltas, 5);
        assert_eq!(opts.compact_ratio_pct, 50);
        assert_eq!(opts.recovery_threads, 2);
        let legacy = FileBackendOptions::from_durable(4, &DurableOptions::legacy());
        assert_eq!(legacy.group_commit, GroupCommitPolicy::Off);
    }
}
