//! The file-backed durable backend: a sharded write-ahead-log +
//! periodic-snapshot store whose state survives a full process crash.
//!
//! This is the only [`StateBackend`] whose contents outlive the process:
//! every commit — single-key writes included — is appended to an
//! append-only WAL segment as **one framed, checksummed batch** before it
//! becomes visible, so recovery can never observe half of a multi-key
//! commit. Periodically the full live state is written as a snapshot file
//! (via atomic rename) and fully-covered WAL segments are pruned.
//!
//! On-disk layout under the store's directory (formats are specified
//! byte-for-byte in `docs/DURABILITY.md`):
//!
//! ```text
//! <dir>/wal/wal-<first_seq>.log   append-only framed commit batches
//! <dir>/snap/snap-<seq>.snap      full state as of commit <seq>
//! ```
//!
//! Recovery ([`FileBackend::open`] over an existing directory) loads the
//! newest snapshot, replays every WAL frame with a higher commit
//! sequence, and **truncates a torn tail**: the first frame of the last
//! segment that fails its length or CRC check marks the point where the
//! previous process died mid-append — everything from there on is
//! discarded, landing the store exactly on the last fully-committed
//! batch. A torn frame in any non-final segment is real corruption and
//! refuses to open.
//!
//! ```
//! use om_storage::{FileBackend, FileBackendOptions, StateBackend, WriteBatch};
//!
//! let dir = std::env::temp_dir().join(format!("om-doc-file-{}", std::process::id()));
//! let backend = FileBackend::open(&dir, FileBackendOptions::default()).unwrap();
//! let batch = WriteBatch::new().put(b"order/1".to_vec(), b"placed".to_vec());
//! backend.commit(batch).unwrap();
//! drop(backend);
//!
//! // A cold restart recovers the committed state from the files alone.
//! let reborn = FileBackend::open(&dir, FileBackendOptions::default()).unwrap();
//! assert_eq!(reborn.get(b"order/1"), Some(b"placed".to_vec()));
//! # drop(reborn);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

use crate::backend::{shard_of, StateBackend, StateSession, WriteBatch, WriteOp};
use crate::shards_pow2;
use om_common::checksum::{parse_frame, push_frame};
use om_common::config::BackendKind;
use om_common::{OmError, OmResult};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Tuning knobs of a [`FileBackend`].
#[derive(Debug, Clone, Copy)]
pub struct FileBackendOptions {
    /// In-memory shard (lock-domain) count, rounded up to a power of two.
    pub shards: usize,
    /// Commits between full-state snapshots (`0` = never snapshot; the
    /// WAL then grows unboundedly — useful only for tests that inspect
    /// the raw log).
    pub snapshot_every: u64,
    /// WAL segment roll threshold in bytes: an append that leaves the
    /// current segment beyond this size starts a new one.
    pub segment_bytes: u64,
    /// `fsync` every commit. Off by default: a commit is pushed to the
    /// operating system before it is acknowledged, which survives a
    /// **process** crash (the durability this store claims); syncing
    /// additionally survives kernel/power failure at a large latency
    /// cost.
    pub sync_commits: bool,
}

impl Default for FileBackendOptions {
    fn default() -> Self {
        Self {
            shards: 8,
            snapshot_every: 1_024,
            segment_bytes: 1 << 20,
            sync_commits: false,
        }
    }
}

// -- batch payload codec ----------------------------------------------------
// (frames come from `om_common::checksum` — the encoding shared with
// om-log's persistent topic)

fn encode_batch(seq: u64, ops: &[WriteOp]) -> Vec<u8> {
    let mut cap = 12;
    for op in ops {
        cap += 5 + op.key.len() + op.value.as_ref().map(|v| 4 + v.len()).unwrap_or(0);
    }
    let mut out = Vec::with_capacity(cap);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        match &op.value {
            Some(v) => {
                out.push(1);
                out.extend_from_slice(&(op.key.len() as u32).to_le_bytes());
                out.extend_from_slice(&op.key);
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                out.extend_from_slice(v);
            }
            None => {
                out.push(0);
                out.extend_from_slice(&(op.key.len() as u32).to_le_bytes());
                out.extend_from_slice(&op.key);
            }
        }
    }
    out
}

fn decode_batch(payload: &[u8]) -> Option<(u64, Vec<WriteOp>)> {
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
        if payload.len() - *at < n {
            return None;
        }
        let s = &payload[*at..*at + n];
        *at += n;
        Some(s)
    };
    let seq = u64::from_le_bytes(take(&mut at, 8)?.try_into().ok()?);
    let n = u32::from_le_bytes(take(&mut at, 4)?.try_into().ok()?) as usize;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = take(&mut at, 1)?[0];
        let key_len = u32::from_le_bytes(take(&mut at, 4)?.try_into().ok()?) as usize;
        let key = take(&mut at, key_len)?.to_vec();
        let value = match tag {
            1 => {
                let val_len = u32::from_le_bytes(take(&mut at, 4)?.try_into().ok()?) as usize;
                Some(take(&mut at, val_len)?.to_vec())
            }
            0 => None,
            _ => return None,
        };
        ops.push(WriteOp { key, value });
    }
    if at != payload.len() {
        return None;
    }
    Some((seq, ops))
}

// -- the backend ------------------------------------------------------------

/// Magic payload of a snapshot file's header frame.
const SNAP_MAGIC: &[u8; 8] = b"OMSNAP01";

/// State behind the appender mutex: the open WAL segment and the commit
/// sequencing/snapshot bookkeeping. Holding this lock is what serializes
/// commits (and therefore WAL append order == commit order).
struct Appender {
    writer: BufWriter<File>,
    seg_path: PathBuf,
    seg_len: u64,
    /// Next commit sequence number to assign.
    next_seq: u64,
    commits_since_snapshot: u64,
}

/// The file-backed durable implementation of [`StateBackend`] — see the
/// module docs for formats and the recovery rules.
pub struct FileBackend {
    dir: PathBuf,
    options: FileBackendOptions,
    /// Power-of-two in-memory mirror of the on-disk state (the read
    /// path); rebuilt from snapshot + WAL on open.
    shards: Vec<RwLock<HashMap<Vec<u8>, Vec<u8>>>>,
    mask: u64,
    /// Serializes WAL appends and snapshot writes.
    appender: Mutex<Appender>,
    /// Multi-key visibility gate: commits apply to the shard array under
    /// the write side, multi-key reads take the read side — so live
    /// readers never observe a torn batch either (the on-disk guarantee,
    /// mirrored in memory).
    multi: RwLock<()>,
    /// Exclusive OS lock on `<dir>/LOCK`, held for the store's lifetime
    /// so two live processes can never interleave WAL appends. The OS
    /// releases it when the process dies (kill -9 included), so a stale
    /// lock can never brick recovery.
    _lock: File,
    /// Remove the directory on drop (scratch stores only).
    owns_dir: bool,
    commits: AtomicU64,
    wal_bytes: AtomicU64,
    snapshots: AtomicU64,
    segments_rolled: AtomicU64,
    recovered_commits: AtomicU64,
    torn_tail_bytes: AtomicU64,
    maintenance_errors: AtomicU64,
}

impl FileBackend {
    /// Opens (or initialises) a durable store in `dir`, recovering any
    /// state a previous process left there: newest snapshot + WAL
    /// replay + torn-tail truncation. The directory is created if absent
    /// and is **kept** on drop.
    pub fn open(dir: impl AsRef<Path>, options: FileBackendOptions) -> OmResult<Self> {
        Self::build(dir.as_ref().to_path_buf(), options, false)
    }

    /// A store in a fresh scratch directory under the system temp dir,
    /// **removed when the backend drops** — what
    /// [`make_backend`](crate::make_backend) uses when no `data_dir` is
    /// configured, so matrix sweeps never leak files.
    pub fn scratch(shards: usize) -> OmResult<Self> {
        static SCRATCH: AtomicU64 = AtomicU64::new(0);
        let nonce = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let dir = std::env::temp_dir().join(format!(
            "om-file-backend-{}-{}-{}",
            std::process::id(),
            nonce,
            SCRATCH.fetch_add(1, Ordering::Relaxed),
        ));
        let options = FileBackendOptions {
            shards,
            ..FileBackendOptions::default()
        };
        Self::build(dir, options, true)
    }

    fn build(dir: PathBuf, options: FileBackendOptions, owns_dir: bool) -> OmResult<Self> {
        fn io(dir: &Path, e: std::io::Error) -> OmError {
            OmError::Internal(format!("file backend {dir:?}: {e}"))
        }
        fs::create_dir_all(dir.join("wal")).map_err(|e| io(&dir, e))?;
        fs::create_dir_all(dir.join("snap")).map_err(|e| io(&dir, e))?;
        let lock = om_common::dirlock::lock_dir(&dir)?;
        // Bootstrap appender (replaced by `recover` once it has decided
        // which segment to continue appending to; the scratch file is
        // removed there).
        let bootstrap = dir.join("wal").join(".bootstrap");
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&bootstrap)
            .map_err(|e| io(&dir, e))?;
        let shard_count = shards_pow2(options.shards);
        let mut backend = Self {
            shards: (0..shard_count).map(|_| RwLock::new(HashMap::new())).collect(),
            mask: shard_count as u64 - 1,
            appender: Mutex::new(Appender {
                writer: BufWriter::new(file),
                seg_path: bootstrap,
                seg_len: 0,
                next_seq: 1,
                commits_since_snapshot: 0,
            }),
            multi: RwLock::new(()),
            _lock: lock,
            owns_dir,
            dir,
            options,
            commits: AtomicU64::new(0),
            wal_bytes: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            segments_rolled: AtomicU64::new(0),
            recovered_commits: AtomicU64::new(0),
            torn_tail_bytes: AtomicU64::new(0),
            maintenance_errors: AtomicU64::new(0),
        };
        backend.recover()?;
        Ok(backend)
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn shard(&self, key: &[u8]) -> &RwLock<HashMap<Vec<u8>, Vec<u8>>> {
        &self.shards[shard_of(key, self.mask)]
    }

    fn io_err(&self, e: std::io::Error) -> OmError {
        OmError::Internal(format!("file backend {:?}: {e}", self.dir))
    }

    // -- recovery ----------------------------------------------------------

    /// Numeric suffix of `name` under `prefix` + `.` + `ext`.
    fn file_seq(name: &str, prefix: &str, ext: &str) -> Option<u64> {
        name.strip_prefix(prefix)?.strip_suffix(ext)?.parse().ok()
    }

    fn sorted_files(&self, sub: &str, prefix: &str, ext: &str) -> OmResult<Vec<(u64, PathBuf)>> {
        let mut out = Vec::new();
        let dir = self.dir.join(sub);
        for entry in fs::read_dir(&dir).map_err(|e| self.io_err(e))? {
            let entry = entry.map_err(|e| self.io_err(e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(seq) = Self::file_seq(&name, prefix, ext) {
                out.push((seq, entry.path()));
            } else if name.ends_with(".tmp") {
                // A snapshot the dying process never finished writing:
                // the atomic rename never happened, so it is garbage.
                let _ = fs::remove_file(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    /// Loads the newest snapshot (if any) into the shard array and
    /// returns its commit sequence.
    fn load_snapshot(&mut self) -> OmResult<u64> {
        let snaps = self.sorted_files("snap", "snap-", ".snap")?;
        let Some((seq, path)) = snaps.last() else {
            return Ok(0);
        };
        let bytes = fs::read(path).map_err(|e| self.io_err(e))?;
        let corrupt = || {
            OmError::Internal(format!(
                "file backend {:?}: snapshot {path:?} is corrupt",
                self.dir
            ))
        };
        let mut at = 0usize;
        let (header, next) = parse_frame(&bytes, at).map_err(|_| corrupt())?.ok_or_else(corrupt)?;
        at = next;
        if header.len() != 8 + 8 + 8 || &header[..8] != SNAP_MAGIC {
            return Err(corrupt());
        }
        let snap_seq = u64::from_le_bytes(header[8..16].try_into().unwrap());
        let n_entries = u64::from_le_bytes(header[16..24].try_into().unwrap());
        if snap_seq != *seq {
            return Err(corrupt());
        }
        let mut loaded = 0u64;
        while let Some((payload, next)) = parse_frame(&bytes, at).map_err(|_| corrupt())? {
            at = next;
            let (key, value) = decode_snapshot_entry(payload).ok_or_else(corrupt)?;
            let slot = shard_of(&key, self.mask);
            self.shards[slot].get_mut().insert(key, value);
            loaded += 1;
        }
        if loaded != n_entries {
            return Err(corrupt());
        }
        Ok(snap_seq)
    }

    /// Replays WAL segments past `snap_seq`, truncating a torn tail of
    /// the final segment, and leaves the appender positioned after the
    /// last valid frame.
    fn recover(&mut self) -> OmResult<()> {
        let snap_seq = self.load_snapshot()?;
        let mut last_seq = snap_seq;
        let segments = self.sorted_files("wal", "wal-", ".log")?;
        let mut recovered = 0u64;
        let last_index = segments.len().wrapping_sub(1);
        let mut tail: Option<(PathBuf, u64)> = None;
        for (i, (_, path)) in segments.iter().enumerate() {
            let bytes = fs::read(path).map_err(|e| self.io_err(e))?;
            let mut at = 0usize;
            loop {
                match parse_frame(&bytes, at) {
                    Ok(Some((payload, next))) => {
                        let Some((seq, ops)) = decode_batch(payload) else {
                            // Framed correctly but undecodable: corrupt.
                            return Err(OmError::Internal(format!(
                                "file backend {:?}: WAL segment {path:?} holds an \
                                 undecodable batch at byte {at}",
                                self.dir
                            )));
                        };
                        if seq > last_seq {
                            for op in &ops {
                                let mut shard = self.shard(&op.key).write();
                                match &op.value {
                                    Some(v) => {
                                        shard.insert(op.key.clone(), v.clone());
                                    }
                                    None => {
                                        shard.remove(&op.key);
                                    }
                                }
                            }
                            last_seq = seq;
                            recovered += 1;
                        }
                        at = next;
                    }
                    Ok(None) => break,
                    Err(torn_at) => {
                        if i != last_index {
                            return Err(OmError::Internal(format!(
                                "file backend {:?}: WAL segment {path:?} is corrupt at \
                                 byte {torn_at} but is not the final segment",
                                self.dir
                            )));
                        }
                        // Torn tail: the previous process died mid-append.
                        // Everything before `torn_at` is fully committed;
                        // drop the rest.
                        self.torn_tail_bytes
                            .fetch_add((bytes.len() - torn_at) as u64, Ordering::Relaxed);
                        let f = OpenOptions::new()
                            .write(true)
                            .open(path)
                            .map_err(|e| self.io_err(e))?;
                        f.set_len(torn_at as u64).map_err(|e| self.io_err(e))?;
                        f.sync_data().map_err(|e| self.io_err(e))?;
                        at = torn_at;
                        break;
                    }
                }
            }
            if i == last_index {
                tail = Some((path.clone(), at as u64));
            }
        }
        self.recovered_commits.store(recovered, Ordering::Relaxed);
        // Continue appending to the last segment, or start the first one.
        let (seg_path, seg_len) = match tail {
            Some(t) => t,
            None => (self.dir.join("wal").join(format!("wal-{}.log", last_seq + 1)), 0),
        };
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&seg_path)
            .map_err(|e| self.io_err(e))?;
        *self.appender.get_mut() = Appender {
            writer: BufWriter::new(file),
            seg_path,
            seg_len,
            next_seq: last_seq + 1,
            commits_since_snapshot: 0,
        };
        let _ = fs::remove_file(self.dir.join("wal").join(".bootstrap"));
        Ok(())
    }

    // -- commit path -------------------------------------------------------

    /// Appends the batch as one WAL frame (flushing to the OS), then
    /// applies it to the in-memory shards under the visibility gate.
    fn commit_durable(&self, ops: &[WriteOp]) -> OmResult<usize> {
        let mut appender = self.appender.lock();
        let seq = appender.next_seq;
        let mut frame = Vec::new();
        push_frame(&mut frame, &encode_batch(seq, ops));
        appender
            .writer
            .write_all(&frame)
            .and_then(|()| appender.writer.flush())
            .map_err(|e| self.io_err(e))?;
        if self.options.sync_commits {
            appender
                .writer
                .get_ref()
                .sync_data()
                .map_err(|e| self.io_err(e))?;
        }
        appender.next_seq = seq + 1;
        appender.seg_len += frame.len() as u64;
        appender.commits_since_snapshot += 1;
        self.wal_bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);

        {
            // The batch is durable; make it visible atomically with
            // respect to multi-key readers.
            let _gate = self.multi.write();
            for op in ops {
                let mut shard = self.shard(&op.key).write();
                match &op.value {
                    Some(v) => {
                        shard.insert(op.key.clone(), v.clone());
                    }
                    None => {
                        shard.remove(&op.key);
                    }
                }
            }
        }
        self.commits.fetch_add(1, Ordering::Relaxed);

        // Post-commit maintenance. The batch above is already durable in
        // the WAL and visible in memory, so a snapshot/roll failure must
        // NOT be reported as a failed commit — it is counted and retried
        // on a later commit (`commits_since_snapshot` keeps growing, and
        // an unrolled segment just keeps receiving appends).
        let snapshot_due = self.options.snapshot_every > 0
            && appender.commits_since_snapshot >= self.options.snapshot_every;
        let maintenance = if snapshot_due {
            self.write_snapshot(&mut appender)
        } else if appender.seg_len >= self.options.segment_bytes {
            self.roll_segment(&mut appender)
        } else {
            Ok(())
        };
        if maintenance.is_err() {
            self.maintenance_errors.fetch_add(1, Ordering::Relaxed);
        }
        Ok(ops.len())
    }

    /// Starts a new WAL segment named after the next commit sequence.
    fn roll_segment(&self, appender: &mut Appender) -> OmResult<()> {
        let path = self
            .dir
            .join("wal")
            .join(format!("wal-{}.log", appender.next_seq));
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| self.io_err(e))?;
        appender.writer = BufWriter::new(file);
        appender.seg_path = path;
        appender.seg_len = 0;
        self.segments_rolled.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Writes the full live state as `snap-<seq>.snap` (tmp + atomic
    /// rename), then prunes snapshots and WAL segments it supersedes and
    /// rolls to a fresh segment. Runs under the appender lock, so no
    /// commit can interleave with the state it captures.
    fn write_snapshot(&self, appender: &mut Appender) -> OmResult<()> {
        let seq = appender.next_seq - 1;
        let mut out = Vec::new();
        let mut n_entries = 0u64;
        let mut body = Vec::new();
        for shard in &self.shards {
            for (k, v) in shard.read().iter() {
                let mut payload = Vec::with_capacity(8 + k.len() + v.len());
                payload.extend_from_slice(&(k.len() as u32).to_le_bytes());
                payload.extend_from_slice(k);
                payload.extend_from_slice(&(v.len() as u32).to_le_bytes());
                payload.extend_from_slice(v);
                push_frame(&mut body, &payload);
                n_entries += 1;
            }
        }
        let mut header = Vec::with_capacity(24);
        header.extend_from_slice(SNAP_MAGIC);
        header.extend_from_slice(&seq.to_le_bytes());
        header.extend_from_slice(&n_entries.to_le_bytes());
        push_frame(&mut out, &header);
        out.extend_from_slice(&body);

        let tmp = self.dir.join("snap").join(format!("snap-{seq}.tmp"));
        let fin = self.dir.join("snap").join(format!("snap-{seq}.snap"));
        let mut f = File::create(&tmp).map_err(|e| self.io_err(e))?;
        f.write_all(&out).map_err(|e| self.io_err(e))?;
        f.sync_data().map_err(|e| self.io_err(e))?;
        drop(f);
        fs::rename(&tmp, &fin).map_err(|e| self.io_err(e))?;
        self.snapshots.fetch_add(1, Ordering::Relaxed);
        appender.commits_since_snapshot = 0;

        // Everything at or below `seq` is covered by the snapshot: prune
        // older snapshots and every WAL segment whose records are all
        // covered (a segment named `wal-<first>` with a successor whose
        // first sequence is <= seq+1 holds only covered records).
        for (s, path) in self.sorted_files("snap", "snap-", ".snap")? {
            if s < seq {
                let _ = fs::remove_file(path);
            }
        }
        self.roll_segment(appender)?;
        let segments = self.sorted_files("wal", "wal-", ".log")?;
        for window in segments.windows(2) {
            let (_, ref path) = window[0];
            let (next_first, _) = window[1];
            if next_first <= seq + 1 {
                let _ = fs::remove_file(path);
            }
        }
        Ok(())
    }

    /// Forces a snapshot + WAL prune right now (maintenance hook; the
    /// commit path does this automatically every
    /// [`FileBackendOptions::snapshot_every`] commits).
    pub fn snapshot_now(&self) -> OmResult<()> {
        let mut appender = self.appender.lock();
        self.write_snapshot(&mut appender)
    }
}

fn decode_snapshot_entry(payload: &[u8]) -> Option<(Vec<u8>, Vec<u8>)> {
    if payload.len() < 4 {
        return None;
    }
    let key_len = u32::from_le_bytes(payload[..4].try_into().ok()?) as usize;
    if payload.len() < 4 + key_len + 4 {
        return None;
    }
    let key = payload[4..4 + key_len].to_vec();
    let val_len =
        u32::from_le_bytes(payload[4 + key_len..8 + key_len].try_into().ok()?) as usize;
    if payload.len() != 8 + key_len + val_len {
        return None;
    }
    Some((key, payload[8 + key_len..].to_vec()))
}

impl Drop for FileBackend {
    fn drop(&mut self) {
        if self.owns_dir {
            let _ = fs::remove_dir_all(&self.dir);
        }
    }
}

impl StateBackend for FileBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::FileDurable
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.shard(key).read().get(key).cloned()
    }

    fn put(&self, key: &[u8], value: &[u8]) {
        self.commit_ops(&[WriteOp {
            key: key.to_vec(),
            value: Some(value.to_vec()),
        }])
        .expect("file backend write");
    }

    fn delete(&self, key: &[u8]) {
        self.commit_ops(&[WriteOp {
            key: key.to_vec(),
            value: None,
        }])
        .expect("file backend delete");
    }

    fn get_many(&self, keys: &[&[u8]]) -> Vec<Option<Vec<u8>>> {
        // Under the visibility gate no commit can apply halfway through
        // this read: multi-key reads are never torn, matching what
        // recovery guarantees for the on-disk state.
        let _gate = self.multi.read();
        keys.iter()
            .map(|k| self.shard(k).read().get(*k).cloned())
            .collect()
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let _gate = self.multi.read();
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(
                shard
                    .read()
                    .iter()
                    .filter(|(k, _)| k.starts_with(prefix))
                    .map(|(k, v)| (k.clone(), v.clone())),
            );
        }
        out.sort();
        out
    }

    fn commit(&self, batch: WriteBatch) -> OmResult<usize> {
        self.commit_durable(batch.ops())
    }

    fn commit_ops(&self, ops: &[WriteOp]) -> OmResult<usize> {
        self.commit_durable(ops)
    }

    fn session(&self) -> Box<dyn StateSession + '_> {
        Box::new(FileSession { backend: self })
    }

    fn quiesce(&self) {
        // Commits flush before acknowledging; nothing is asynchronous.
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    fn counters(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        out.insert("backend.commits".into(), self.commits.load(Ordering::Relaxed));
        out.insert("backend.wal_bytes".into(), self.wal_bytes.load(Ordering::Relaxed));
        out.insert("backend.snapshots".into(), self.snapshots.load(Ordering::Relaxed));
        out.insert(
            "backend.segments_rolled".into(),
            self.segments_rolled.load(Ordering::Relaxed),
        );
        out.insert(
            "backend.recovered_commits".into(),
            self.recovered_commits.load(Ordering::Relaxed),
        );
        out.insert(
            "backend.torn_tail_bytes".into(),
            self.torn_tail_bytes.load(Ordering::Relaxed),
        );
        out.insert(
            "backend.maintenance_errors".into(),
            self.maintenance_errors.load(Ordering::Relaxed),
        );
        out.insert("backend.shards".into(), self.shards.len() as u64);
        out
    }
}

/// Sessions are trivial here: every write is durable and visible before
/// `put` returns, so a later authoritative read always observes it.
struct FileSession<'a> {
    backend: &'a FileBackend,
}

impl StateSession for FileSession<'_> {
    fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.backend.get(key)
    }

    fn put(&mut self, key: &[u8], value: &[u8]) {
        self.backend.put(key, value);
    }

    fn delete(&mut self, key: &[u8]) {
        self.backend.delete(key);
    }

    fn fallbacks(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_path(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "om-file-test-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    struct DirGuard(PathBuf);
    impl Drop for DirGuard {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn reopen_recovers_committed_state() {
        let dir = scratch_path("reopen");
        let _guard = DirGuard(dir.clone());
        {
            let b = FileBackend::open(&dir, FileBackendOptions::default()).unwrap();
            b.put(b"a", b"1");
            let batch = WriteBatch::new()
                .put(b"b".to_vec(), b"2".to_vec())
                .put(b"c".to_vec(), b"3".to_vec());
            b.commit(batch).unwrap();
            b.delete(b"a");
        }
        let b = FileBackend::open(&dir, FileBackendOptions::default()).unwrap();
        assert_eq!(b.get(b"a"), None);
        assert_eq!(b.get(b"b"), Some(b"2".to_vec()));
        assert_eq!(b.get(b"c"), Some(b"3".to_vec()));
        assert_eq!(b.len(), 2);
        assert_eq!(b.counters()["backend.recovered_commits"], 3);
    }

    #[test]
    fn torn_tail_is_truncated_to_last_full_commit() {
        let dir = scratch_path("torn");
        let _guard = DirGuard(dir.clone());
        let opts = FileBackendOptions {
            snapshot_every: 0,
            ..FileBackendOptions::default()
        };
        {
            let b = FileBackend::open(&dir, opts).unwrap();
            b.put(b"k1", b"v1");
            b.put(b"k2", b"v2");
        }
        // Chop bytes off the single WAL segment: a torn final append.
        let seg = fs::read_dir(dir.join("wal"))
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "log"))
            .unwrap();
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();

        let b = FileBackend::open(&dir, opts).unwrap();
        assert_eq!(b.get(b"k1"), Some(b"v1".to_vec()), "first commit intact");
        assert_eq!(b.get(b"k2"), None, "torn commit discarded");
        assert!(b.counters()["backend.torn_tail_bytes"] > 0);
        // The truncated tail was physically removed: a further reopen is
        // clean and the next commit lands after the valid prefix.
        b.put(b"k3", b"v3");
        drop(b);
        let b = FileBackend::open(&dir, opts).unwrap();
        assert_eq!(b.get(b"k1"), Some(b"v1".to_vec()));
        assert_eq!(b.get(b"k3"), Some(b"v3".to_vec()));
        assert_eq!(b.counters()["backend.torn_tail_bytes"], 0);
    }

    #[test]
    fn snapshot_compacts_wal_and_survives_reopen() {
        let dir = scratch_path("snap");
        let _guard = DirGuard(dir.clone());
        let opts = FileBackendOptions {
            snapshot_every: 4,
            ..FileBackendOptions::default()
        };
        {
            let b = FileBackend::open(&dir, opts).unwrap();
            for i in 0..10u8 {
                b.put(&[b'k', i], &[i]);
            }
            assert!(b.counters()["backend.snapshots"] >= 2);
        }
        // Only the newest snapshot plus the short post-snapshot WAL tail
        // remain on disk.
        let snaps = fs::read_dir(dir.join("snap")).unwrap().count();
        assert_eq!(snaps, 1);
        let b = FileBackend::open(&dir, opts).unwrap();
        for i in 0..10u8 {
            assert_eq!(b.get(&[b'k', i]), Some(vec![i]));
        }
    }

    #[test]
    fn deletes_survive_snapshot_and_replay() {
        let dir = scratch_path("del");
        let _guard = DirGuard(dir.clone());
        {
            let b = FileBackend::open(&dir, FileBackendOptions::default()).unwrap();
            b.put(b"gone", b"x");
            b.put(b"kept", b"y");
            b.delete(b"gone");
            b.snapshot_now().unwrap();
            b.put(b"late", b"z");
        }
        let b = FileBackend::open(&dir, FileBackendOptions::default()).unwrap();
        assert_eq!(b.get(b"gone"), None);
        assert_eq!(b.get(b"kept"), Some(b"y".to_vec()));
        assert_eq!(b.get(b"late"), Some(b"z".to_vec()));
    }

    #[test]
    fn scratch_backend_cleans_up_its_directory() {
        let b = FileBackend::scratch(4).unwrap();
        let dir = b.dir().to_path_buf();
        b.put(b"k", b"v");
        assert!(dir.exists());
        drop(b);
        assert!(!dir.exists(), "scratch dir must be removed on drop");
    }

    #[test]
    fn concurrent_multi_reads_never_observe_torn_batches() {
        let b = std::sync::Arc::new(FileBackend::scratch(8).unwrap());
        let keys: Vec<Vec<u8>> = (0..8u8).map(|i| vec![b'k', i]).collect();
        {
            let mut batch = WriteBatch::new();
            for k in &keys {
                batch = batch.put(k.clone(), 0u16.to_le_bytes().to_vec());
            }
            b.commit(batch).unwrap();
        }
        let writer = {
            let b = b.clone();
            let keys = keys.clone();
            std::thread::spawn(move || {
                for round in 1..=100u16 {
                    let mut batch = WriteBatch::new();
                    for k in &keys {
                        batch = batch.put(k.clone(), round.to_le_bytes().to_vec());
                    }
                    b.commit(batch).unwrap();
                }
            })
        };
        let key_refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        for _ in 0..300 {
            let values = b.get_many(&key_refs);
            let distinct: std::collections::HashSet<_> = values.iter().collect();
            assert_eq!(distinct.len(), 1, "torn batch observed: {values:?}");
        }
        writer.join().unwrap();
    }

    #[test]
    fn segments_roll_at_the_size_threshold() {
        let dir = scratch_path("roll");
        let _guard = DirGuard(dir.clone());
        let opts = FileBackendOptions {
            snapshot_every: 0,
            segment_bytes: 256,
            ..FileBackendOptions::default()
        };
        let b = FileBackend::open(&dir, opts).unwrap();
        for i in 0..32u32 {
            b.put(&i.to_be_bytes(), &[0u8; 64]);
        }
        assert!(b.counters()["backend.segments_rolled"] >= 2);
        drop(b);
        let b = FileBackend::open(&dir, opts).unwrap();
        assert_eq!(b.len(), 32, "multi-segment replay restores everything");
    }
}
