//! The file-backed durable backend: a sharded write-ahead-log +
//! snapshot store whose state survives a full process crash.
//!
//! This is the only [`StateBackend`] whose contents outlive the process:
//! every commit — single-key writes included — is appended to an
//! append-only WAL segment as **one framed, checksummed batch** before it
//! becomes visible, so recovery can never observe half of a multi-key
//! commit. The write path is built around **group commit**
//! ([`crate::group_commit`]): committers stage their frame under the
//! appender lock and park on a commit barrier; a single cohort leader
//! performs ONE flush (+`fsync` under
//! [`FileBackendOptions::sync_commits`]) for everyone staged, so N
//! concurrent committers share one sync instead of paying N.
//!
//! Snapshots bound WAL replay. In [`SnapshotMode::Full`] each snapshot
//! rewrites the whole state; in [`SnapshotMode::Incremental`] (the
//! default) only the keys dirtied since the previous snapshot are
//! written as a `delta-<seq>` file chained from the last full base, and
//! compaction folds a long or heavy chain back into a base — snapshot
//! cost scales with churn, not state size.
//!
//! On-disk layout under the store's directory (formats are specified
//! byte-for-byte in `docs/DURABILITY.md`):
//!
//! ```text
//! <dir>/wal/wal-<first_seq>.log     append-only framed commit batches
//! <dir>/snap/snap-<seq>.snap       full state as of commit <seq>
//! <dir>/snap/delta-<seq>.delta     keys dirtied since the previous
//!                                  snapshot file, chained on the base
//! ```
//!
//! Recovery ([`FileBackend::open`] over an existing directory) loads the
//! newest base snapshot, applies the deltas chained above it in order,
//! replays every WAL frame with a higher commit sequence, and
//! **truncates a torn tail**: the first frame of the last segment that
//! fails its length or CRC check marks the point where the previous
//! process died mid-append — everything from there on is discarded,
//! landing the store exactly on the last fully-committed batch. A torn
//! frame in any non-final segment is real corruption and refuses to
//! open.
//!
//! ```
//! use om_storage::{FileBackend, FileBackendOptions, StateBackend, WriteBatch};
//!
//! let dir = std::env::temp_dir().join(format!("om-doc-file-{}", std::process::id()));
//! let backend = FileBackend::open(&dir, FileBackendOptions::default()).unwrap();
//! let batch = WriteBatch::new().put(b"order/1".to_vec(), b"placed".to_vec());
//! backend.commit(batch).unwrap();
//! drop(backend);
//!
//! // A cold restart recovers the committed state from the files alone.
//! let reborn = FileBackend::open(&dir, FileBackendOptions::default()).unwrap();
//! assert_eq!(reborn.get(b"order/1"), Some(b"placed".to_vec()));
//! # drop(reborn);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

use crate::backend::{shard_of, StateBackend, StateSession, WriteBatch, WriteOp};
use crate::group_commit::{ChainState, CommitGroup, SegmentFile, StagedBatch, StagedWal};
use crate::shards_pow2;
use om_common::checksum::{parse_frame, push_frame};
use om_common::config::{BackendKind, DurableOptions, SnapshotMode};
use om_common::{OmError, OmResult};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Tuning knobs of a [`FileBackend`].
#[derive(Debug, Clone, Copy)]
pub struct FileBackendOptions {
    /// In-memory shard (lock-domain) count, rounded up to a power of two.
    pub shards: usize,
    /// Commits between snapshots (`0` = never snapshot; the WAL then
    /// grows unboundedly — useful only for tests that inspect the raw
    /// log).
    pub snapshot_every: u64,
    /// WAL segment roll threshold in bytes: an append that leaves the
    /// current segment beyond this size starts a new one.
    pub segment_bytes: u64,
    /// `fsync` every commit cohort before acknowledging it. Off by
    /// default: a commit is pushed to the operating system before it is
    /// acknowledged, which survives a **process** crash (the durability
    /// this store claims); syncing additionally survives kernel/power
    /// failure at a latency cost that group commit amortizes.
    pub sync_commits: bool,
    /// Group-commit window: `Some(w)` routes commits through the cohort
    /// barrier (a leader waits up to `w` for the cohort to grow, then
    /// performs one flush+fsync for all of it; `Duration::ZERO` flushes
    /// as soon as leadership is acquired). `None` disables the barrier
    /// entirely — every commit pays its own flush+fsync, serialized
    /// (the PR 4 write path, kept as the bench baseline).
    pub group_commit_window: Option<Duration>,
    /// Full vs incremental snapshots.
    pub snapshot_mode: SnapshotMode,
    /// Incremental mode: fold the delta chain into a fresh base once it
    /// holds this many deltas.
    pub compact_max_deltas: u64,
    /// Incremental mode: fold the chain once cumulative delta bytes
    /// exceed this percentage of the base size.
    pub compact_ratio_pct: u64,
}

impl Default for FileBackendOptions {
    fn default() -> Self {
        Self {
            shards: 8,
            snapshot_every: 1_024,
            segment_bytes: 1 << 20,
            sync_commits: false,
            group_commit_window: Some(Duration::ZERO),
            snapshot_mode: SnapshotMode::Incremental,
            compact_max_deltas: 16,
            compact_ratio_pct: 100,
        }
    }
}

impl FileBackendOptions {
    /// Maps the run-config level [`DurableOptions`] onto backend
    /// options — the seam `RunConfig`/`PlatformSpec` select the write
    /// path through.
    pub fn from_durable(shards: usize, durable: &DurableOptions) -> Self {
        Self {
            shards,
            sync_commits: durable.sync_commits,
            group_commit_window: durable.group_commit_window_us.map(Duration::from_micros),
            snapshot_mode: durable.snapshot_mode,
            compact_max_deltas: durable.compact_max_deltas,
            compact_ratio_pct: durable.compact_ratio_pct,
            ..Self::default()
        }
    }
}

// -- batch payload codec ----------------------------------------------------
// (frames come from `om_common::checksum` — the encoding shared with
// om-log's persistent topic)

/// `tag ++ key_len ++ key [++ val_len ++ value]` — the op encoding
/// shared by WAL batches and delta-snapshot entries.
fn encode_op(out: &mut Vec<u8>, key: &[u8], value: Option<&[u8]>) {
    match value {
        Some(v) => {
            out.push(1);
            out.extend_from_slice(&(key.len() as u32).to_le_bytes());
            out.extend_from_slice(key);
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(v);
        }
        None => {
            out.push(0);
            out.extend_from_slice(&(key.len() as u32).to_le_bytes());
            out.extend_from_slice(key);
        }
    }
}

/// Decodes one op starting at `*at`, advancing the cursor.
fn decode_op(payload: &[u8], at: &mut usize) -> Option<(Vec<u8>, Option<Vec<u8>>)> {
    let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
        if payload.len() - *at < n {
            return None;
        }
        let s = &payload[*at..*at + n];
        *at += n;
        Some(s)
    };
    let tag = take(at, 1)?[0];
    let key_len = u32::from_le_bytes(take(at, 4)?.try_into().ok()?) as usize;
    let key = take(at, key_len)?.to_vec();
    let value = match tag {
        1 => {
            let val_len = u32::from_le_bytes(take(at, 4)?.try_into().ok()?) as usize;
            Some(take(at, val_len)?.to_vec())
        }
        0 => None,
        _ => return None,
    };
    Some((key, value))
}

fn encode_batch(seq: u64, ops: &[WriteOp]) -> Vec<u8> {
    let mut cap = 12;
    for op in ops {
        cap += 5 + op.key.len() + op.value.as_ref().map(|v| 4 + v.len()).unwrap_or(0);
    }
    let mut out = Vec::with_capacity(cap);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        encode_op(&mut out, &op.key, op.value.as_deref());
    }
    out
}

fn decode_batch(payload: &[u8]) -> Option<(u64, Vec<WriteOp>)> {
    if payload.len() < 12 {
        return None;
    }
    let seq = u64::from_le_bytes(payload[..8].try_into().ok()?);
    let n = u32::from_le_bytes(payload[8..12].try_into().ok()?) as usize;
    let mut at = 12usize;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let (key, value) = decode_op(payload, &mut at)?;
        ops.push(WriteOp { key, value });
    }
    if at != payload.len() {
        return None;
    }
    Some((seq, ops))
}

// -- the backend ------------------------------------------------------------

/// Magic payload of a full base snapshot's header frame.
const SNAP_MAGIC: &[u8; 8] = b"OMSNAP01";
/// Magic payload of a delta snapshot's header frame.
const DELTA_MAGIC: &[u8; 8] = b"OMDELT01";

/// One in-memory shard: the live map plus the keys dirtied since the
/// last snapshot file (base or delta) — what the next incremental
/// snapshot writes.
#[derive(Default)]
struct Shard {
    map: HashMap<Vec<u8>, Vec<u8>>,
    dirty: HashSet<Vec<u8>>,
}

/// The file-backed durable implementation of [`StateBackend`] — see the
/// module docs for formats and the recovery rules.
pub struct FileBackend {
    dir: PathBuf,
    options: FileBackendOptions,
    /// Power-of-two in-memory mirror of the on-disk state (the read
    /// path); rebuilt from snapshots + WAL on open.
    shards: Vec<RwLock<Shard>>,
    mask: u64,
    /// The cheap staging half of the write path (see
    /// [`crate::group_commit`]). Held for microseconds per commit.
    appender: Mutex<StagedWal>,
    /// The expensive durable half: open segment + snapshot chain. Held
    /// by cohort leaders (or by every commit when group commit is off).
    /// Lock order: flusher before appender, never the reverse.
    flusher: Mutex<SegmentFile>,
    /// The commit barrier cohort leaders are elected through.
    group: CommitGroup,
    /// Set when a WAL write/sync failed after staging was drained: the
    /// store can no longer tell what is durable, so every further
    /// commit fails fast instead of silently acknowledging lost data.
    wedged: AtomicBool,
    /// Multi-key visibility gate: batches apply to the shard array under
    /// the write side, multi-key reads take the read side — so live
    /// readers never observe a torn batch either (the on-disk guarantee,
    /// mirrored in memory).
    multi: RwLock<()>,
    /// Exclusive OS lock on `<dir>/LOCK`, held for the store's lifetime
    /// so two live processes can never interleave WAL appends. The OS
    /// releases it when the process dies (kill -9 included), so a stale
    /// lock can never brick recovery.
    _lock: File,
    /// Remove the directory on drop (scratch stores only).
    owns_dir: bool,
    commits: AtomicU64,
    wal_bytes: AtomicU64,
    snapshots: AtomicU64,
    deltas_written: AtomicU64,
    snapshot_delta_bytes: AtomicU64,
    compactions: AtomicU64,
    segments_rolled: AtomicU64,
    recovered_commits: AtomicU64,
    torn_tail_bytes: AtomicU64,
    maintenance_errors: AtomicU64,
}

impl FileBackend {
    /// Opens (or initialises) a durable store in `dir`, recovering any
    /// state a previous process left there: newest base snapshot +
    /// delta chain + WAL replay + torn-tail truncation. The directory
    /// is created if absent and is **kept** on drop.
    pub fn open(dir: impl AsRef<Path>, options: FileBackendOptions) -> OmResult<Self> {
        Self::build(dir.as_ref().to_path_buf(), options, false)
    }

    /// A store in a fresh scratch directory under the system temp dir,
    /// **removed when the backend drops** — what
    /// [`make_backend`](crate::make_backend) uses when no `data_dir` is
    /// configured, so matrix sweeps never leak files.
    pub fn scratch(shards: usize) -> OmResult<Self> {
        Self::scratch_with(FileBackendOptions {
            shards,
            ..FileBackendOptions::default()
        })
    }

    /// [`scratch`](Self::scratch) with explicit options (bench sweeps
    /// select sync/window/snapshot-mode per cell).
    pub fn scratch_with(options: FileBackendOptions) -> OmResult<Self> {
        static SCRATCH: AtomicU64 = AtomicU64::new(0);
        let nonce = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let dir = std::env::temp_dir().join(format!(
            "om-file-backend-{}-{}-{}",
            std::process::id(),
            nonce,
            SCRATCH.fetch_add(1, Ordering::Relaxed),
        ));
        Self::build(dir, options, true)
    }

    fn build(dir: PathBuf, options: FileBackendOptions, owns_dir: bool) -> OmResult<Self> {
        fn io(dir: &Path, e: std::io::Error) -> OmError {
            OmError::Internal(format!("file backend {dir:?}: {e}"))
        }
        fs::create_dir_all(dir.join("wal")).map_err(|e| io(&dir, e))?;
        fs::create_dir_all(dir.join("snap")).map_err(|e| io(&dir, e))?;
        let lock = om_common::dirlock::lock_dir(&dir)?;
        // Bootstrap segment handle (replaced by `recover` once it has
        // decided which segment to continue appending to; the scratch
        // file is removed there).
        let bootstrap = dir.join("wal").join(".bootstrap");
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&bootstrap)
            .map_err(|e| io(&dir, e))?;
        let shard_count = shards_pow2(options.shards);
        let mut backend = Self {
            shards: (0..shard_count).map(|_| RwLock::new(Shard::default())).collect(),
            mask: shard_count as u64 - 1,
            appender: Mutex::new(StagedWal {
                buf: Vec::new(),
                pending: Vec::new(),
                next_seq: 1,
                seg_len: 0,
                commits_since_snapshot: 0,
            }),
            flusher: Mutex::new(SegmentFile {
                file,
                path: bootstrap,
                chain: ChainState::default(),
            }),
            group: CommitGroup::new(
                options.group_commit_window.unwrap_or(Duration::ZERO),
            ),
            wedged: AtomicBool::new(false),
            multi: RwLock::new(()),
            _lock: lock,
            owns_dir,
            dir,
            options,
            commits: AtomicU64::new(0),
            wal_bytes: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            deltas_written: AtomicU64::new(0),
            snapshot_delta_bytes: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            segments_rolled: AtomicU64::new(0),
            recovered_commits: AtomicU64::new(0),
            torn_tail_bytes: AtomicU64::new(0),
            maintenance_errors: AtomicU64::new(0),
        };
        backend.recover()?;
        Ok(backend)
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn shard(&self, key: &[u8]) -> &RwLock<Shard> {
        &self.shards[shard_of(key, self.mask)]
    }

    fn io_err(&self, e: std::io::Error) -> OmError {
        OmError::Internal(format!("file backend {:?}: {e}", self.dir))
    }

    // -- recovery ----------------------------------------------------------

    /// Numeric suffix of `name` under `prefix` + `.` + `ext`.
    fn file_seq(name: &str, prefix: &str, ext: &str) -> Option<u64> {
        name.strip_prefix(prefix)?.strip_suffix(ext)?.parse().ok()
    }

    fn sorted_files(&self, sub: &str, prefix: &str, ext: &str) -> OmResult<Vec<(u64, PathBuf)>> {
        let mut out = Vec::new();
        let dir = self.dir.join(sub);
        for entry in fs::read_dir(&dir).map_err(|e| self.io_err(e))? {
            let entry = entry.map_err(|e| self.io_err(e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(seq) = Self::file_seq(&name, prefix, ext) {
                out.push((seq, entry.path()));
            } else if name.ends_with(".tmp") {
                // A snapshot the dying process never finished writing:
                // the atomic rename never happened, so it is garbage.
                let _ = fs::remove_file(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    /// Loads the newest base snapshot plus the deltas chained above it
    /// into the shard array; returns the last covered commit sequence
    /// and records the chain state on the flusher.
    fn load_snapshot_chain(&mut self) -> OmResult<u64> {
        let bases = self.sorted_files("snap", "snap-", ".snap")?;
        let deltas = self.sorted_files("snap", "delta-", ".delta")?;
        let mask = self.mask;
        let (base_seq, base_bytes) = match bases.last() {
            Some((seq, path)) => {
                let size = fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                let shards = &mut self.shards;
                load_snapshot_file(&self.dir, path, SNAP_MAGIC, *seq, |payload| {
                    let (key, value) = decode_snapshot_entry(payload)?;
                    let slot = shard_of(&key, mask);
                    shards[slot].get_mut().map.insert(key, value);
                    Some(())
                })?;
                (*seq, size)
            }
            None => (0, 0),
        };
        let mut covered = base_seq;
        let mut chain = ChainState {
            base_seq,
            base_bytes,
            deltas: 0,
            delta_bytes: 0,
        };
        for (seq, path) in &deltas {
            if *seq <= base_seq {
                // Superseded by the base; leftover of a crash between
                // rename and prune.
                let _ = fs::remove_file(path);
                continue;
            }
            let size = fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            let shards = &mut self.shards;
            load_snapshot_file(&self.dir, path, DELTA_MAGIC, *seq, |payload| {
                let mut at = 0usize;
                let (key, value) = decode_op(payload, &mut at)?;
                if at != payload.len() {
                    return None;
                }
                let slot = shard_of(&key, mask);
                match value {
                    Some(v) => {
                        shards[slot].get_mut().map.insert(key, v);
                    }
                    None => {
                        shards[slot].get_mut().map.remove(&key);
                    }
                }
                Some(())
            })?;
            chain.chain_delta(*seq, size);
            covered = *seq;
        }
        self.flusher.get_mut().chain = chain;
        Ok(covered)
    }

    /// Replays WAL segments past the snapshot chain, truncating a torn
    /// tail of the final segment, and leaves the appender positioned
    /// after the last valid frame. Replayed keys are marked dirty (they
    /// changed since the last snapshot file).
    fn recover(&mut self) -> OmResult<()> {
        let snap_seq = self.load_snapshot_chain()?;
        let mut last_seq = snap_seq;
        let segments = self.sorted_files("wal", "wal-", ".log")?;
        let mut recovered = 0u64;
        let last_index = segments.len().wrapping_sub(1);
        let mut tail: Option<(PathBuf, u64)> = None;
        for (i, (_, path)) in segments.iter().enumerate() {
            let bytes = fs::read(path).map_err(|e| self.io_err(e))?;
            let mut at = 0usize;
            loop {
                match parse_frame(&bytes, at) {
                    Ok(Some((payload, next))) => {
                        let Some((seq, ops)) = decode_batch(payload) else {
                            // Framed correctly but undecodable: corrupt.
                            return Err(OmError::Internal(format!(
                                "file backend {:?}: WAL segment {path:?} holds an \
                                 undecodable batch at byte {at}",
                                self.dir
                            )));
                        };
                        if seq > last_seq {
                            for op in ops {
                                let slot = shard_of(&op.key, self.mask);
                                let shard = self.shards[slot].get_mut();
                                match op.value {
                                    Some(v) => {
                                        shard.dirty.insert(op.key.clone());
                                        shard.map.insert(op.key, v);
                                    }
                                    None => {
                                        shard.map.remove(&op.key);
                                        shard.dirty.insert(op.key);
                                    }
                                }
                            }
                            last_seq = seq;
                            recovered += 1;
                        }
                        at = next;
                    }
                    Ok(None) => break,
                    Err(torn_at) => {
                        if i != last_index {
                            return Err(OmError::Internal(format!(
                                "file backend {:?}: WAL segment {path:?} is corrupt at \
                                 byte {torn_at} but is not the final segment",
                                self.dir
                            )));
                        }
                        // Torn tail: the previous process died mid-append.
                        // Everything before `torn_at` is fully committed;
                        // drop the rest.
                        self.torn_tail_bytes
                            .fetch_add((bytes.len() - torn_at) as u64, Ordering::Relaxed);
                        let f = OpenOptions::new()
                            .write(true)
                            .open(path)
                            .map_err(|e| self.io_err(e))?;
                        f.set_len(torn_at as u64).map_err(|e| self.io_err(e))?;
                        f.sync_data().map_err(|e| self.io_err(e))?;
                        at = torn_at;
                        break;
                    }
                }
            }
            if i == last_index {
                tail = Some((path.clone(), at as u64));
            }
        }
        self.recovered_commits.store(recovered, Ordering::Relaxed);
        // Continue appending to the last segment, or start the first one.
        let (seg_path, seg_len) = match tail {
            Some(t) => t,
            None => (self.dir.join("wal").join(format!("wal-{}.log", last_seq + 1)), 0),
        };
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&seg_path)
            .map_err(|e| self.io_err(e))?;
        {
            let fl = self.flusher.get_mut();
            fl.file = file;
            fl.path = seg_path;
        }
        if self.options.sync_commits {
            // The tail segment may have just been created; its directory
            // entry must be durable before fsynced commits land in it.
            self.sync_dir("wal")?;
        }
        *self.appender.get_mut() = StagedWal {
            buf: Vec::new(),
            pending: Vec::new(),
            next_seq: last_seq + 1,
            seg_len,
            commits_since_snapshot: 0,
        };
        // Tickets resume above the recovered sequence numbers; without
        // the floor the first flush would count the whole recovered
        // history as one cohort and wreck commits_per_sync.
        self.group.reset_floor(last_seq);
        let _ = fs::remove_file(self.dir.join("wal").join(".bootstrap"));
        Ok(())
    }

    // -- commit path -------------------------------------------------------

    fn commit_durable(&self, ops: &[WriteOp]) -> OmResult<usize> {
        if self.wedged.load(Ordering::Relaxed) {
            return Err(OmError::Internal(format!(
                "file backend {:?}: a previous WAL write failed; the store is wedged",
                self.dir
            )));
        }
        match self.options.group_commit_window {
            Some(_) => self.commit_grouped(ops),
            None => self.commit_inline(ops),
        }
    }

    /// The group-commit path: stage under the appender lock (cheap),
    /// then park on the barrier until a cohort leader has made the
    /// staged frame durable and applied it.
    fn commit_grouped(&self, ops: &[WriteOp]) -> OmResult<usize> {
        let ticket = {
            let mut ap = self.appender.lock();
            let seq = ap.next_seq;
            let before = ap.buf.len();
            let batch = encode_batch(seq, ops);
            push_frame(&mut ap.buf, &batch);
            let frame_len = (ap.buf.len() - before) as u64;
            ap.next_seq = seq + 1;
            ap.seg_len += frame_len;
            ap.commits_since_snapshot += 1;
            ap.pending.push((seq, ops.to_vec()));
            self.wal_bytes.fetch_add(frame_len, Ordering::Relaxed);
            seq
        };
        self.group.wait_durable(ticket, || self.flush_cohort())?;
        self.commits.fetch_add(1, Ordering::Relaxed);
        Ok(ops.len())
    }

    /// Leader duty: swap the staged cohort out (appenders keep staging
    /// into the next one), write+sync it as one unit, apply it in
    /// sequence order, then run any due maintenance. Returns the
    /// highest durable sequence.
    fn flush_cohort(&self) -> OmResult<u64> {
        // A prior leader's write failed: its cohort's staged batches are
        // gone, so a fresh leader seeing an empty stage must not release
        // those waiters as successful. Fail every re-elected leader.
        if self.wedged.load(Ordering::Relaxed) {
            return Err(OmError::Internal(format!(
                "file backend {:?}: a previous WAL write failed; the store is wedged",
                self.dir
            )));
        }
        let mut fl = self.flusher.lock();
        let (bytes, pending, mut upto) = self.appender.lock().take();
        self.write_staged(&mut fl, &bytes, pending)?;
        if let Some(drained) = self.run_maintenance(&mut fl) {
            upto = upto.max(drained);
        }
        Ok(upto)
    }

    /// Writes `bytes` to the open segment (one `write_all`), fsyncs the
    /// cohort when configured, and applies the staged batches in
    /// sequence order under the visibility gate — durability strictly
    /// before visibility. A write/sync failure wedges the store: the
    /// staged batches are gone and acknowledging anything later would
    /// reorder the WAL.
    fn write_staged(
        &self,
        fl: &mut SegmentFile,
        bytes: &[u8],
        pending: Vec<StagedBatch>,
    ) -> OmResult<()> {
        if !bytes.is_empty() {
            let written = fl
                .file
                .write_all(bytes)
                .and_then(|()| {
                    if self.options.sync_commits {
                        fl.file.sync_data()
                    } else {
                        Ok(())
                    }
                });
            if let Err(e) = written {
                self.wedged.store(true, Ordering::Relaxed);
                return Err(self.io_err(e));
            }
        }
        if !pending.is_empty() {
            let _gate = self.multi.write();
            for (_, ops) in pending {
                self.apply_owned(ops);
            }
        }
        Ok(())
    }

    /// Applies one durable batch to the shard array, marking the keys
    /// dirty for the next incremental snapshot. Callers hold the
    /// visibility gate.
    fn apply_owned(&self, ops: Vec<WriteOp>) {
        for op in ops {
            let slot = shard_of(&op.key, self.mask);
            let mut shard = self.shards[slot].write();
            match op.value {
                Some(v) => {
                    shard.dirty.insert(op.key.clone());
                    shard.map.insert(op.key, v);
                }
                None => {
                    shard.map.remove(&op.key);
                    shard.dirty.insert(op.key);
                }
            }
        }
    }

    /// The barrier-free path (`group_commit_window: None`): the PR 4
    /// behaviour — every commit writes, flushes and fsyncs its own
    /// frame under the flusher lock, serialized.
    fn commit_inline(&self, ops: &[WriteOp]) -> OmResult<usize> {
        let mut fl = self.flusher.lock();
        let frame = {
            let mut ap = self.appender.lock();
            let seq = ap.next_seq;
            let mut frame = Vec::new();
            push_frame(&mut frame, &encode_batch(seq, ops));
            ap.next_seq = seq + 1;
            ap.seg_len += frame.len() as u64;
            ap.commits_since_snapshot += 1;
            frame
        };
        self.wal_bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.write_staged(&mut fl, &frame, Vec::new())?;
        {
            let _gate = self.multi.write();
            self.apply_owned(ops.to_vec());
        }
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.run_maintenance(&mut fl);
        Ok(ops.len())
    }

    /// Post-commit maintenance (snapshot / segment roll), run by
    /// whoever holds the flusher. The commit it follows is already
    /// durable and visible, so a failure here must NOT be reported as a
    /// failed commit — it is counted and retried on a later commit.
    /// Returns the highest sequence drained by the maintenance pass, if
    /// one ran.
    fn run_maintenance(&self, fl: &mut SegmentFile) -> Option<u64> {
        let due = {
            let ap = self.appender.lock();
            (self.options.snapshot_every > 0
                && ap.commits_since_snapshot >= self.options.snapshot_every)
                || ap.seg_len >= self.options.segment_bytes
        };
        if !due {
            return None;
        }
        match self.maintain(fl) {
            Ok(upto) => Some(upto),
            Err(_) => {
                self.maintenance_errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Holding the flusher: re-drains the stage **under the appender
    /// lock** (so the segment and shard state sit exactly on a commit
    /// boundary and no append can interleave), then snapshots or rolls.
    fn maintain(&self, fl: &mut SegmentFile) -> OmResult<u64> {
        let mut ap = self.appender.lock();
        let (bytes, pending, upto) = ap.take();
        self.write_staged(fl, &bytes, pending)?;
        let snapshot_due = self.options.snapshot_every > 0
            && ap.commits_since_snapshot >= self.options.snapshot_every;
        if snapshot_due {
            self.write_snapshot_locked(fl, &mut ap)?;
        } else if ap.seg_len >= self.options.segment_bytes {
            self.roll_segment_locked(fl, &mut ap)?;
        }
        Ok(upto)
    }

    /// Starts a new WAL segment named after the next commit sequence.
    /// Callers hold both locks (or are in recovery), so every staged
    /// byte has been written to the old segment and the name is exact.
    fn roll_segment_locked(&self, fl: &mut SegmentFile, ap: &mut StagedWal) -> OmResult<()> {
        debug_assert!(ap.buf.is_empty(), "roll with staged bytes would split a segment");
        let path = self
            .dir
            .join("wal")
            .join(format!("wal-{}.log", ap.next_seq));
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| self.io_err(e))?;
        fl.file = file;
        fl.path = path;
        ap.seg_len = 0;
        if self.options.sync_commits {
            // Make the new segment's directory entry durable: fsyncing
            // record data into a file whose entry power loss could
            // erase would sync nothing.
            self.sync_dir("wal")?;
        }
        self.segments_rolled.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Writes a snapshot-family file via tmp + fsync + atomic rename +
    /// directory fsync. The directory fsync is what orders the rename
    /// against the WAL prune that follows it: without it, power loss
    /// could undo the (metadata-only) rename while the unlinks survive,
    /// leaving the pruned commits in neither the chain nor the WAL.
    fn persist_snapshot_file(&self, tmp: &Path, fin: &Path, out: &[u8]) -> OmResult<u64> {
        let mut f = File::create(tmp).map_err(|e| self.io_err(e))?;
        f.write_all(out).map_err(|e| self.io_err(e))?;
        f.sync_data().map_err(|e| self.io_err(e))?;
        drop(f);
        fs::rename(tmp, fin).map_err(|e| self.io_err(e))?;
        self.sync_dir("snap")?;
        Ok(out.len() as u64)
    }

    /// Fsyncs one of the store's subdirectories, making renames,
    /// creations and unlinks inside it durable against power loss.
    fn sync_dir(&self, sub: &str) -> OmResult<()> {
        File::open(self.dir.join(sub))
            .and_then(|d| d.sync_all())
            .map_err(|e| self.io_err(e))
    }

    /// Prunes WAL segments fully covered by a snapshot at `seq` (a
    /// segment named `wal-<first>` with a successor whose first
    /// sequence is <= seq+1 holds only covered records).
    fn prune_wal(&self, seq: u64) -> OmResult<()> {
        let segments = self.sorted_files("wal", "wal-", ".log")?;
        let mut pruned = false;
        for window in segments.windows(2) {
            let (_, ref path) = window[0];
            let (next_first, _) = window[1];
            if next_first <= seq + 1 {
                let _ = fs::remove_file(path);
                pruned = true;
            }
        }
        if pruned {
            self.sync_dir("wal")?;
        }
        Ok(())
    }

    /// Writes the due snapshot — a full base, or (incremental mode with
    /// a live base and a young chain) a delta of the keys dirtied since
    /// the last snapshot file — then prunes covered WAL segments and
    /// rolls to a fresh one. Runs under both locks at a commit
    /// boundary: every staged batch has been written and applied.
    fn write_snapshot_locked(&self, fl: &mut SegmentFile, ap: &mut StagedWal) -> OmResult<()> {
        let seq = ap.next_seq - 1;
        // Keys drained out of the dirty sets for this snapshot attempt.
        // They must go BACK on any failure path: losing them would make
        // a later delta omit their changes while the WAL prune deletes
        // the only durable copy — silent loss of acknowledged commits.
        let mut drained: Vec<Vec<u8>> = Vec::new();
        if self.options.snapshot_mode == SnapshotMode::Incremental && fl.chain.base_seq > 0 {
            if seq == fl.chain.base_seq {
                // Nothing committed since the base: nothing to write.
                ap.commits_since_snapshot = 0;
                return Ok(());
            }
            // Delta body: one frame per dirtied key — a put of its live
            // value, or a tombstone if it no longer exists.
            let mut body = Vec::new();
            let mut n_entries = 0u64;
            for shard in &self.shards {
                let mut shard = shard.write();
                let dirty: Vec<Vec<u8>> = shard.dirty.drain().collect();
                for key in dirty {
                    let mut payload = Vec::new();
                    encode_op(&mut payload, &key, shard.map.get(&key).map(|v| v.as_slice()));
                    push_frame(&mut body, &payload);
                    n_entries += 1;
                    drained.push(key);
                }
            }
            if n_entries == 0 {
                // Commits happened but every key settled back... cannot
                // actually occur (commits always dirty keys), kept for
                // robustness: just reset the trigger.
                ap.commits_since_snapshot = 0;
                return Ok(());
            }
            let mut out = Vec::with_capacity(40 + body.len());
            let mut header = Vec::with_capacity(24);
            header.extend_from_slice(DELTA_MAGIC);
            header.extend_from_slice(&seq.to_le_bytes());
            header.extend_from_slice(&n_entries.to_le_bytes());
            push_frame(&mut out, &header);
            out.extend_from_slice(&body);
            if fl.chain.compaction_due(
                out.len() as u64,
                self.options.compact_max_deltas,
                self.options.compact_ratio_pct,
            ) {
                // Chain too long/heavy: fold into a fresh base instead
                // (fall through to the full-base write below, which
                // restores `drained` if it fails).
                self.compactions.fetch_add(1, Ordering::Relaxed);
            } else {
                let tmp = self.dir.join("snap").join(format!("delta-{seq}.tmp"));
                let fin = self.dir.join("snap").join(format!("delta-{seq}.delta"));
                let written = match self.persist_snapshot_file(&tmp, &fin, &out) {
                    Ok(n) => n,
                    Err(e) => {
                        self.remark_dirty(drained);
                        return Err(e);
                    }
                };
                fl.chain.chain_delta(seq, written);
                self.deltas_written.fetch_add(1, Ordering::Relaxed);
                self.snapshot_delta_bytes.fetch_add(written, Ordering::Relaxed);
                ap.commits_since_snapshot = 0;
                self.roll_segment_locked(fl, ap)?;
                return self.prune_wal(seq);
            }
        }

        // Full base: the whole live state, one frame per entry. Dirty
        // sets are cleared only once the base is durably on disk.
        let mut n_entries = 0u64;
        let mut body = Vec::new();
        for shard in &self.shards {
            let shard = shard.read();
            for (k, v) in shard.map.iter() {
                let mut payload = Vec::with_capacity(8 + k.len() + v.len());
                payload.extend_from_slice(&(k.len() as u32).to_le_bytes());
                payload.extend_from_slice(k);
                payload.extend_from_slice(&(v.len() as u32).to_le_bytes());
                payload.extend_from_slice(v);
                push_frame(&mut body, &payload);
                n_entries += 1;
            }
        }
        let mut header = Vec::with_capacity(24);
        header.extend_from_slice(SNAP_MAGIC);
        header.extend_from_slice(&seq.to_le_bytes());
        header.extend_from_slice(&n_entries.to_le_bytes());
        let mut out = Vec::with_capacity(40 + body.len());
        push_frame(&mut out, &header);
        out.extend_from_slice(&body);
        let tmp = self.dir.join("snap").join(format!("snap-{seq}.tmp"));
        let fin = self.dir.join("snap").join(format!("snap-{seq}.snap"));
        let written = match self.persist_snapshot_file(&tmp, &fin, &out) {
            Ok(n) => n,
            Err(e) => {
                // A failed compaction attempt must put the chain back
                // where it was: the drained keys stay pending for the
                // next delta.
                self.remark_dirty(drained);
                return Err(e);
            }
        };
        // The base covers everything; dirty tracking restarts.
        for shard in &self.shards {
            shard.write().dirty.clear();
        }
        self.snapshots.fetch_add(1, Ordering::Relaxed);
        fl.chain.rebase(seq, written);
        ap.commits_since_snapshot = 0;

        // Everything at or below `seq` is covered by the base: prune
        // older bases, every delta (the base subsumes the chain), and
        // covered WAL segments.
        for (s, path) in self.sorted_files("snap", "snap-", ".snap")? {
            if s < seq {
                let _ = fs::remove_file(path);
            }
        }
        for (s, path) in self.sorted_files("snap", "delta-", ".delta")? {
            if s <= seq {
                let _ = fs::remove_file(path);
            }
        }
        self.roll_segment_locked(fl, ap)?;
        self.prune_wal(seq)
    }

    /// Puts keys back on their shards' dirty sets — the rollback for a
    /// snapshot attempt whose file never made it to disk.
    fn remark_dirty(&self, drained: Vec<Vec<u8>>) {
        for key in drained {
            self.shards[shard_of(&key, self.mask)].write().dirty.insert(key);
        }
    }

    /// Forces a snapshot (base or delta, per the configured mode) + WAL
    /// prune right now (maintenance hook; the commit path does this
    /// automatically every [`FileBackendOptions::snapshot_every`]
    /// commits).
    pub fn snapshot_now(&self) -> OmResult<()> {
        let mut fl = self.flusher.lock();
        let mut ap = self.appender.lock();
        let (bytes, pending, _) = ap.take();
        self.write_staged(&mut fl, &bytes, pending)?;
        self.write_snapshot_locked(&mut fl, &mut ap)
    }

    /// Group-commit statistics of this store's barrier (all zero when
    /// the barrier is disabled).
    pub fn group_stats(&self) -> crate::group_commit::CommitGroupStats {
        self.group.stats()
    }
}

/// Parses a snapshot-family file (base or delta): validates the header
/// frame (`magic ++ seq ++ n_entries`) and hands every entry payload to
/// `apply`, checking the count. A validation failure refuses the open
/// rather than silently serving partial state.
fn load_snapshot_file(
    dir: &Path,
    path: &Path,
    magic: &[u8; 8],
    expect_seq: u64,
    mut apply: impl FnMut(&[u8]) -> Option<()>,
) -> OmResult<()> {
    let bytes = fs::read(path)
        .map_err(|e| OmError::Internal(format!("file backend {dir:?}: {e}")))?;
    let corrupt =
        || OmError::Internal(format!("file backend {dir:?}: snapshot {path:?} is corrupt"));
    let mut at = 0usize;
    let (header, next) = parse_frame(&bytes, at).map_err(|_| corrupt())?.ok_or_else(corrupt)?;
    at = next;
    if header.len() != 8 + 8 + 8 || &header[..8] != magic {
        return Err(corrupt());
    }
    let seq = u64::from_le_bytes(header[8..16].try_into().unwrap());
    let n_entries = u64::from_le_bytes(header[16..24].try_into().unwrap());
    if seq != expect_seq {
        return Err(corrupt());
    }
    let mut loaded = 0u64;
    while let Some((payload, next)) = parse_frame(&bytes, at).map_err(|_| corrupt())? {
        at = next;
        apply(payload).ok_or_else(corrupt)?;
        loaded += 1;
    }
    if loaded != n_entries {
        return Err(corrupt());
    }
    Ok(())
}

fn decode_snapshot_entry(payload: &[u8]) -> Option<(Vec<u8>, Vec<u8>)> {
    if payload.len() < 4 {
        return None;
    }
    let key_len = u32::from_le_bytes(payload[..4].try_into().ok()?) as usize;
    if payload.len() < 4 + key_len + 4 {
        return None;
    }
    let key = payload[4..4 + key_len].to_vec();
    let val_len =
        u32::from_le_bytes(payload[4 + key_len..8 + key_len].try_into().ok()?) as usize;
    if payload.len() != 8 + key_len + val_len {
        return None;
    }
    Some((key, payload[8 + key_len..].to_vec()))
}

impl Drop for FileBackend {
    fn drop(&mut self) {
        if self.owns_dir {
            let _ = fs::remove_dir_all(&self.dir);
        }
    }
}

impl StateBackend for FileBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::FileDurable
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.shard(key).read().map.get(key).cloned()
    }

    fn put(&self, key: &[u8], value: &[u8]) {
        self.commit_ops(&[WriteOp {
            key: key.to_vec(),
            value: Some(value.to_vec()),
        }])
        .expect("file backend write");
    }

    fn delete(&self, key: &[u8]) {
        self.commit_ops(&[WriteOp {
            key: key.to_vec(),
            value: None,
        }])
        .expect("file backend delete");
    }

    fn get_many(&self, keys: &[&[u8]]) -> Vec<Option<Vec<u8>>> {
        // Under the visibility gate no commit can apply halfway through
        // this read: multi-key reads are never torn, matching what
        // recovery guarantees for the on-disk state.
        let _gate = self.multi.read();
        keys.iter()
            .map(|k| self.shard(k).read().map.get(*k).cloned())
            .collect()
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let _gate = self.multi.read();
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(
                shard
                    .read()
                    .map
                    .iter()
                    .filter(|(k, _)| k.starts_with(prefix))
                    .map(|(k, v)| (k.clone(), v.clone())),
            );
        }
        out.sort();
        out
    }

    fn commit(&self, batch: WriteBatch) -> OmResult<usize> {
        self.commit_durable(batch.ops())
    }

    fn commit_ops(&self, ops: &[WriteOp]) -> OmResult<usize> {
        self.commit_durable(ops)
    }

    fn session(&self) -> Box<dyn StateSession + '_> {
        Box::new(FileSession { backend: self })
    }

    fn quiesce(&self) {
        // Commits are durable and applied before acknowledging; nothing
        // is asynchronous.
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().map.len()).sum()
    }

    fn counters(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        let commits = self.commits.load(Ordering::Relaxed);
        out.insert("backend.commits".into(), commits);
        out.insert("backend.wal_bytes".into(), self.wal_bytes.load(Ordering::Relaxed));
        out.insert("backend.snapshots".into(), self.snapshots.load(Ordering::Relaxed));
        out.insert("backend.deltas".into(), self.deltas_written.load(Ordering::Relaxed));
        out.insert(
            "backend.snapshot_delta_bytes".into(),
            self.snapshot_delta_bytes.load(Ordering::Relaxed),
        );
        out.insert("backend.compactions".into(), self.compactions.load(Ordering::Relaxed));
        let group = self.group.stats();
        out.insert("backend.group_flushes".into(), group.flushes);
        out.insert("backend.max_commit_cohort".into(), group.max_cohort);
        // Mean commits amortized per sync: the headline group-commit
        // number. 1 when the barrier is off (each commit pays its own
        // sync), 0 before any commit.
        out.insert(
            "backend.commits_per_sync".into(),
            if group.flushes > 0 {
                group.commits_per_flush()
            } else {
                u64::from(commits > 0)
            },
        );
        out.insert(
            "backend.segments_rolled".into(),
            self.segments_rolled.load(Ordering::Relaxed),
        );
        out.insert(
            "backend.recovered_commits".into(),
            self.recovered_commits.load(Ordering::Relaxed),
        );
        out.insert(
            "backend.torn_tail_bytes".into(),
            self.torn_tail_bytes.load(Ordering::Relaxed),
        );
        out.insert(
            "backend.maintenance_errors".into(),
            self.maintenance_errors.load(Ordering::Relaxed),
        );
        out.insert("backend.shards".into(), self.shards.len() as u64);
        out
    }
}

/// Sessions are trivial here: every write is durable and visible before
/// `put` returns, so a later authoritative read always observes it.
struct FileSession<'a> {
    backend: &'a FileBackend,
}

impl StateSession for FileSession<'_> {
    fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.backend.get(key)
    }

    fn put(&mut self, key: &[u8], value: &[u8]) {
        self.backend.put(key, value);
    }

    fn delete(&mut self, key: &[u8]) {
        self.backend.delete(key);
    }

    fn fallbacks(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_path(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "om-file-test-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    struct DirGuard(PathBuf);
    impl Drop for DirGuard {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn reopen_recovers_committed_state() {
        let dir = scratch_path("reopen");
        let _guard = DirGuard(dir.clone());
        {
            let b = FileBackend::open(&dir, FileBackendOptions::default()).unwrap();
            b.put(b"a", b"1");
            let batch = WriteBatch::new()
                .put(b"b".to_vec(), b"2".to_vec())
                .put(b"c".to_vec(), b"3".to_vec());
            b.commit(batch).unwrap();
            b.delete(b"a");
        }
        let b = FileBackend::open(&dir, FileBackendOptions::default()).unwrap();
        assert_eq!(b.get(b"a"), None);
        assert_eq!(b.get(b"b"), Some(b"2".to_vec()));
        assert_eq!(b.get(b"c"), Some(b"3".to_vec()));
        assert_eq!(b.len(), 2);
        assert_eq!(b.counters()["backend.recovered_commits"], 3);
    }

    #[test]
    fn torn_tail_is_truncated_to_last_full_commit() {
        let dir = scratch_path("torn");
        let _guard = DirGuard(dir.clone());
        let opts = FileBackendOptions {
            snapshot_every: 0,
            ..FileBackendOptions::default()
        };
        {
            let b = FileBackend::open(&dir, opts).unwrap();
            b.put(b"k1", b"v1");
            b.put(b"k2", b"v2");
        }
        // Chop bytes off the single WAL segment: a torn final append.
        let seg = fs::read_dir(dir.join("wal"))
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "log"))
            .unwrap();
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();

        let b = FileBackend::open(&dir, opts).unwrap();
        assert_eq!(b.get(b"k1"), Some(b"v1".to_vec()), "first commit intact");
        assert_eq!(b.get(b"k2"), None, "torn commit discarded");
        assert!(b.counters()["backend.torn_tail_bytes"] > 0);
        // The truncated tail was physically removed: a further reopen is
        // clean and the next commit lands after the valid prefix.
        b.put(b"k3", b"v3");
        drop(b);
        let b = FileBackend::open(&dir, opts).unwrap();
        assert_eq!(b.get(b"k1"), Some(b"v1".to_vec()));
        assert_eq!(b.get(b"k3"), Some(b"v3".to_vec()));
        assert_eq!(b.counters()["backend.torn_tail_bytes"], 0);
    }

    #[test]
    fn full_mode_snapshot_compacts_wal_and_survives_reopen() {
        let dir = scratch_path("snap");
        let _guard = DirGuard(dir.clone());
        let opts = FileBackendOptions {
            snapshot_every: 4,
            snapshot_mode: SnapshotMode::Full,
            ..FileBackendOptions::default()
        };
        {
            let b = FileBackend::open(&dir, opts).unwrap();
            for i in 0..10u8 {
                b.put(&[b'k', i], &[i]);
            }
            assert!(b.counters()["backend.snapshots"] >= 2);
        }
        // Only the newest snapshot plus the short post-snapshot WAL tail
        // remain on disk.
        let snaps = fs::read_dir(dir.join("snap")).unwrap().count();
        assert_eq!(snaps, 1);
        let b = FileBackend::open(&dir, opts).unwrap();
        for i in 0..10u8 {
            assert_eq!(b.get(&[b'k', i]), Some(vec![i]));
        }
    }

    #[test]
    fn incremental_snapshots_write_deltas_proportional_to_churn() {
        let dir = scratch_path("incr");
        let _guard = DirGuard(dir.clone());
        let opts = FileBackendOptions {
            snapshot_every: 0,
            compact_max_deltas: 100,
            compact_ratio_pct: 10_000,
            ..FileBackendOptions::default()
        };
        let b = FileBackend::open(&dir, opts).unwrap();
        // Large base: 256 keys.
        for i in 0..256u16 {
            b.put(format!("key/{i:04}").as_bytes(), &[0u8; 64]);
        }
        b.snapshot_now().unwrap();
        assert_eq!(b.counters()["backend.snapshots"], 1, "first snapshot is a base");
        // Touch only 3 keys; the next snapshot must be a small delta.
        b.put(b"key/0001", b"new");
        b.delete(b"key/0002");
        b.put(b"hot", b"x");
        b.snapshot_now().unwrap();
        let counters = b.counters();
        assert_eq!(counters["backend.deltas"], 1);
        let delta_bytes = counters["backend.snapshot_delta_bytes"];
        assert!(
            delta_bytes < 512,
            "3-key delta must not rewrite the 256-key base (got {delta_bytes} bytes)"
        );
        drop(b);
        // Recovery = base + delta (+ empty WAL tail).
        let b = FileBackend::open(&dir, opts).unwrap();
        assert_eq!(b.get(b"key/0001"), Some(b"new".to_vec()));
        assert_eq!(b.get(b"key/0002"), None, "tombstone recovered");
        assert_eq!(b.get(b"hot"), Some(b"x".to_vec()));
        assert_eq!(b.len(), 256, "255 base survivors + hot");
    }

    #[test]
    fn delta_chain_compacts_back_into_a_base() {
        let dir = scratch_path("compact");
        let _guard = DirGuard(dir.clone());
        let opts = FileBackendOptions {
            snapshot_every: 0,
            compact_max_deltas: 3,
            compact_ratio_pct: 100_000,
            ..FileBackendOptions::default()
        };
        let b = FileBackend::open(&dir, opts).unwrap();
        b.put(b"seed", b"v");
        b.snapshot_now().unwrap(); // base
        for round in 0..5u8 {
            b.put(b"churn", &[round]);
            b.snapshot_now().unwrap();
        }
        let counters = b.counters();
        assert!(counters["backend.compactions"] >= 1, "chain length 3 trips compaction");
        assert!(counters["backend.snapshots"] >= 2, "compaction writes a fresh base");
        // After compaction, old deltas are pruned: at most
        // compact_max_deltas delta files remain.
        let deltas_on_disk = fs::read_dir(dir.join("snap"))
            .unwrap()
            .filter(|e| {
                e.as_ref().unwrap().file_name().to_string_lossy().ends_with(".delta")
            })
            .count();
        assert!(deltas_on_disk <= 3, "stale deltas pruned (got {deltas_on_disk})");
        drop(b);
        let b = FileBackend::open(&dir, opts).unwrap();
        assert_eq!(b.get(b"churn"), Some(vec![4]));
        assert_eq!(b.get(b"seed"), Some(b"v".to_vec()));
    }

    #[test]
    fn deletes_survive_snapshot_and_replay() {
        for mode in [SnapshotMode::Full, SnapshotMode::Incremental] {
            let dir = scratch_path("del");
            let _guard = DirGuard(dir.clone());
            let opts = FileBackendOptions {
                snapshot_mode: mode,
                ..FileBackendOptions::default()
            };
            {
                let b = FileBackend::open(&dir, opts).unwrap();
                b.put(b"gone", b"x");
                b.put(b"kept", b"y");
                b.delete(b"gone");
                b.snapshot_now().unwrap();
                b.put(b"late", b"z");
            }
            let b = FileBackend::open(&dir, opts).unwrap();
            assert_eq!(b.get(b"gone"), None, "{:?}", mode);
            assert_eq!(b.get(b"kept"), Some(b"y".to_vec()));
            assert_eq!(b.get(b"late"), Some(b"z".to_vec()));
        }
    }

    #[test]
    fn scratch_backend_cleans_up_its_directory() {
        let b = FileBackend::scratch(4).unwrap();
        let dir = b.dir().to_path_buf();
        b.put(b"k", b"v");
        assert!(dir.exists());
        drop(b);
        assert!(!dir.exists(), "scratch dir must be removed on drop");
    }

    #[test]
    fn concurrent_multi_reads_never_observe_torn_batches() {
        let b = std::sync::Arc::new(FileBackend::scratch(8).unwrap());
        let keys: Vec<Vec<u8>> = (0..8u8).map(|i| vec![b'k', i]).collect();
        {
            let mut batch = WriteBatch::new();
            for k in &keys {
                batch = batch.put(k.clone(), 0u16.to_le_bytes().to_vec());
            }
            b.commit(batch).unwrap();
        }
        let writer = {
            let b = b.clone();
            let keys = keys.clone();
            std::thread::spawn(move || {
                for round in 1..=100u16 {
                    let mut batch = WriteBatch::new();
                    for k in &keys {
                        batch = batch.put(k.clone(), round.to_le_bytes().to_vec());
                    }
                    b.commit(batch).unwrap();
                }
            })
        };
        let key_refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        for _ in 0..300 {
            let values = b.get_many(&key_refs);
            let distinct: std::collections::HashSet<_> = values.iter().collect();
            assert_eq!(distinct.len(), 1, "torn batch observed: {values:?}");
        }
        writer.join().unwrap();
    }

    #[test]
    fn grouped_commits_share_syncs_under_contention() {
        let opts = FileBackendOptions {
            shards: 8,
            sync_commits: true,
            group_commit_window: Some(Duration::ZERO),
            ..FileBackendOptions::default()
        };
        let b = std::sync::Arc::new(FileBackend::scratch_with(opts).unwrap());
        const WRITERS: u64 = 8;
        const COMMITS: u64 = 40;
        let mut handles = Vec::new();
        for w in 0..WRITERS {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..COMMITS {
                    b.put(format!("w{w}/k{i}").as_bytes(), &i.to_le_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let counters = b.counters();
        assert_eq!(counters["backend.commits"], WRITERS * COMMITS);
        assert_eq!(b.len() as u64, WRITERS * COMMITS);
        let stats = b.group_stats();
        assert_eq!(stats.released, WRITERS * COMMITS, "every commit released");
        assert!(
            stats.flushes <= stats.released,
            "never more syncs than commits"
        );
        assert!(counters["backend.commits_per_sync"] >= 1);
    }

    #[test]
    fn inline_mode_reports_one_commit_per_sync() {
        let opts = FileBackendOptions {
            group_commit_window: None,
            ..FileBackendOptions::default()
        };
        let b = FileBackend::scratch_with(opts).unwrap();
        b.put(b"k", b"v");
        let counters = b.counters();
        assert_eq!(counters["backend.commits_per_sync"], 1);
        assert_eq!(counters["backend.group_flushes"], 0);
    }

    #[test]
    fn segments_roll_at_the_size_threshold() {
        let dir = scratch_path("roll");
        let _guard = DirGuard(dir.clone());
        let opts = FileBackendOptions {
            snapshot_every: 0,
            segment_bytes: 256,
            ..FileBackendOptions::default()
        };
        let b = FileBackend::open(&dir, opts).unwrap();
        for i in 0..32u32 {
            b.put(&i.to_be_bytes(), &[0u8; 64]);
        }
        assert!(b.counters()["backend.segments_rolled"] >= 2);
        drop(b);
        let b = FileBackend::open(&dir, opts).unwrap();
        assert_eq!(b.len(), 32, "multi-segment replay restores everything");
    }

    #[test]
    fn options_map_from_durable_config() {
        let durable = DurableOptions {
            sync_commits: true,
            group_commit_window_us: Some(150),
            snapshot_mode: SnapshotMode::Full,
            compact_max_deltas: 5,
            compact_ratio_pct: 50,
        };
        let opts = FileBackendOptions::from_durable(4, &durable);
        assert!(opts.sync_commits);
        assert_eq!(opts.group_commit_window, Some(Duration::from_micros(150)));
        assert_eq!(opts.snapshot_mode, SnapshotMode::Full);
        assert_eq!(opts.compact_max_deltas, 5);
        assert_eq!(opts.compact_ratio_pct, 50);
        let legacy = FileBackendOptions::from_durable(4, &DurableOptions::legacy());
        assert_eq!(legacy.group_commit_window, None);
    }
}
