//! The group-commit write path of the durable WAL: staging, cohort
//! flushing, and the snapshot-chain bookkeeping behind incremental
//! snapshots.
//!
//! PR 4's commit path paid one `write`+`flush` (and, under
//! `sync_commits`, one `fsync`) **per commit**, all under a single
//! appender mutex — N concurrent committers paid N syncs, serialized.
//! This module splits that path in two so the expensive half is shared:
//!
//! * `StagedWal` — the cheap half, held under the appender mutex for
//!   microseconds: frames are encoded into an in-memory buffer, the
//!   commit sequence is assigned (so **WAL order == commit order**
//!   stays an invariant), and the decoded batch is parked on a pending
//!   list for ordered application.
//! * `SegmentFile` — the expensive half, held under a separate
//!   flusher mutex: a cohort **leader** elected by
//!   [`CommitGroup`] swaps the staged buffer out (appenders keep
//!   staging into the next cohort meanwhile), performs ONE
//!   `write_all` + optional `fsync` for every staged frame, applies the
//!   parked batches in sequence order, and releases every covered
//!   ticket at once.
//!
//! Lock order is always flusher → appender; the append fast-path takes
//! only the appender, so staging never waits on an in-flight fsync —
//! that is the entire point.
//!
//! `ChainState` tracks the incremental-snapshot chain (`snap-<seq>`
//! base + `delta-<seq>` deltas) so the flusher can decide, at snapshot
//! time, whether the next snapshot is a cheap delta or a compaction
//! back into a full base. See `docs/DURABILITY.md` for the file
//! formats.

pub use om_common::commit_group::{CommitGroup, CommitGroupStats};

use crate::backend::WriteOp;
use crate::vfs::VfsFile;
use std::path::PathBuf;

/// One staged commit: its sequence number and its decoded ops, parked
/// until the cohort flush applies it.
pub(crate) type StagedBatch = (u64, Vec<WriteOp>);

/// The staged (not yet durable) half of the WAL, guarded by the
/// appender mutex. Everything here is memory-only and cheap to touch;
/// a cohort leader drains it wholesale.
pub(crate) struct StagedWal {
    /// Encoded frames appended since the last leader drain, in commit
    /// order — the bytes the next drain writes as one `write_all`.
    pub buf: Vec<u8>,
    /// The staged batches themselves, parked for ordered application
    /// after their bytes are durable (durability before visibility).
    pub pending: Vec<StagedBatch>,
    /// Next commit sequence number to assign.
    pub next_seq: u64,
    /// Current segment length **including** still-staged bytes, so the
    /// roll decision accounts for what the next drain will write.
    pub seg_len: u64,
    /// Commits since the last snapshot (the snapshot trigger).
    pub commits_since_snapshot: u64,
}

impl StagedWal {
    /// Swaps out everything staged, leaving the stage empty. Returns
    /// `(frame_bytes, pending_batches, highest_staged_seq)`.
    pub fn take(&mut self) -> (Vec<u8>, Vec<StagedBatch>, u64) {
        (
            std::mem::take(&mut self.buf),
            std::mem::take(&mut self.pending),
            self.next_seq - 1,
        )
    }
}

/// The durable half of the WAL, guarded by the flusher mutex: the open
/// segment file plus the snapshot-chain bookkeeping. Only cohort
/// leaders (and the inline commit path, when group commit is off) hold
/// this.
pub(crate) struct SegmentFile {
    /// Open WAL segment, in append mode (behind the VFS seam so fault
    /// injection sees every byte).
    pub file: Box<dyn VfsFile>,
    /// Path of the open segment (diagnostics and unwedge re-open).
    pub path: PathBuf,
    /// Bytes of this segment known written successfully — the truncate
    /// point [`crate::FileBackend::unwedge`] rolls the torn tail back
    /// to. Advanced only after a cohort's `write_all` (+ fsync, when
    /// configured) returns `Ok`.
    pub durable_len: u64,
    /// State of the snapshot chain this WAL tail builds on.
    pub chain: ChainState,
}

/// Where the snapshot chain currently stands: which full base exists
/// and how much delta weight hangs off it. Rebuilt on recovery from the
/// files themselves; consulted at snapshot time for the
/// delta-vs-compaction decision.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ChainState {
    /// Commit seq of the newest full base snapshot (0 = none yet).
    pub base_seq: u64,
    /// Byte size of that base (the compaction-ratio denominator).
    pub base_bytes: u64,
    /// Deltas currently chained on the base.
    pub deltas: u64,
    /// Total bytes across those deltas.
    pub delta_bytes: u64,
}

impl ChainState {
    /// Whether writing one more delta of `delta_len` bytes should fold
    /// the chain into a fresh full base instead: the chain is longer
    /// than `max_deltas`, or its cumulative bytes exceed
    /// `ratio_pct` percent of the base.
    pub fn compaction_due(&self, delta_len: u64, max_deltas: u64, ratio_pct: u64) -> bool {
        // u128 arithmetic: `ratio_pct` is config-supplied and the
        // benches legitimately pass u64::MAX for "never compact" — the
        // products must not wrap.
        self.deltas.saturating_add(1) > max_deltas
            || (self.delta_bytes + delta_len) as u128 * 100
                > self.base_bytes.max(1) as u128 * ratio_pct as u128
    }

    /// Resets the chain onto a freshly-written base.
    pub fn rebase(&mut self, seq: u64, base_bytes: u64) {
        *self = ChainState {
            base_seq: seq,
            base_bytes,
            deltas: 0,
            delta_bytes: 0,
        };
    }

    /// Records one more delta chained on the current base.
    pub fn chain_delta(&mut self, seq: u64, delta_len: u64) {
        debug_assert!(seq > self.base_seq);
        self.deltas += 1;
        self.delta_bytes += delta_len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_wal_take_empties_the_stage() {
        let mut wal = StagedWal {
            buf: vec![1, 2, 3],
            pending: vec![(
                1,
                vec![WriteOp {
                    key: b"k".to_vec(),
                    value: None,
                }],
            )],
            next_seq: 2,
            seg_len: 3,
            commits_since_snapshot: 1,
        };
        let (bytes, pending, upto) = wal.take();
        assert_eq!(bytes, vec![1, 2, 3]);
        assert_eq!(pending.len(), 1);
        assert_eq!(upto, 1);
        assert!(wal.buf.is_empty() && wal.pending.is_empty());
        // seg_len / seq bookkeeping is untouched by a drain.
        assert_eq!(wal.seg_len, 3);
        assert_eq!(wal.next_seq, 2);
    }

    #[test]
    fn compaction_triggers_on_length_and_ratio() {
        let mut chain = ChainState::default();
        chain.rebase(10, 1_000);
        assert!(!chain.compaction_due(100, 4, 100), "young chain stays");
        for i in 0..4 {
            chain.chain_delta(11 + i, 100);
        }
        assert!(chain.compaction_due(100, 4, 100), "5th delta exceeds max");
        let mut heavy = ChainState::default();
        heavy.rebase(10, 1_000);
        assert!(
            heavy.compaction_due(1_500, 16, 100),
            "one delta heavier than the base trips the ratio"
        );
        heavy.rebase(20, 2_000);
        assert_eq!(heavy.deltas, 0, "rebase clears the chain");
        assert_eq!(heavy.base_seq, 20);
    }
}
