//! B3 — **gateway concurrency sweep**: how many keep-alive connections
//! each HTTP engine sustains, and what each costs in OS threads.
//!
//! The thread-per-connection engine burns one serving thread per open
//! connection — fine at 64, pathological at 4096. The event-driven
//! engine multiplexes every connection over one poll loop plus a fixed
//! worker pool (`O(workers + 1)` threads regardless of fan-in). This
//! bench opens N keep-alive connections, drives one `/health` request
//! per connection per iteration, and sweeps N from 1 to 4096:
//!
//! * `threaded_c{1,64,1024}` — the retained baseline. Not run at 4096:
//!   a thread per connection at that scale measures the scheduler, not
//!   the server.
//! * `event_c{1,64,1024,4096}` — the tentpole cells. `event_c4096`
//!   existing at all is the capacity claim; `event_c1` vs `threaded_c1`
//!   is the low-concurrency overhead claim (guarded at ≤1.5x by
//!   `bench_guard` via `results/b3_floor.json`).
//!
//! Requests are driven by at most [`DRIVERS`] client threads regardless
//! of N, so measured thread counts are dominated by the *server's*
//! model. Alongside the criterion shim's timing JSON the bench writes
//! `results/b3_gateway_threads.json`: process-thread delta and peak
//! live connections per cell — the machine-readable form of the
//! "O(workers+1) threads" claim.
//!
//! `OM_BENCH_SMOKE=1` shrinks the sweep to {1, 64} per engine for CI.

use criterion::{criterion_group, criterion_main, Criterion};
use om_http::gateway::MarketplaceGateway;
use om_http::server::{HttpClient, HttpServer};
use om_http::{EventConfig, Method};
use om_marketplace::bindings::actor_core::ActorPlatformConfig;
use om_marketplace::EventualPlatform;
use std::sync::Arc;
use std::time::Duration;

/// Client threads driving requests for the large cells. Kept small and
/// fixed so the server's threading model dominates the measurement.
const DRIVERS: usize = 8;

fn smoke() -> bool {
    std::env::var("OM_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Current thread count of this process, from `/proc/self/status`.
/// Returns 0 where procfs is unavailable (the cell still times fine).
fn process_threads() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

fn gateway() -> Arc<MarketplaceGateway> {
    Arc::new(MarketplaceGateway::new(Arc::new(EventualPlatform::new(
        ActorPlatformConfig {
            decline_rate: 0.0,
            ..Default::default()
        },
    ))))
}

struct CellReport {
    cell: String,
    conns: usize,
    thread_delta: u64,
    engine_threads: usize,
    max_live_connections: usize,
}

impl CellReport {
    fn json(&self) -> String {
        format!(
            "{{\"cell\": \"{}\", \"conns\": {}, \"process_thread_delta\": {}, \
             \"engine_threads\": {}, \"max_live_connections\": {}}}",
            self.cell, self.conns, self.thread_delta, self.engine_threads, self.max_live_connections
        )
    }
}

/// Opens `conns` keep-alive clients against `server`, warms each with
/// one request, runs the cell, and reports the thread cost.
fn run_cell(
    group: &mut criterion::BenchmarkGroup<'_>,
    reports: &mut Vec<CellReport>,
    server: &HttpServer,
    label: &str,
    conns: usize,
) {
    let baseline_threads = process_threads();
    let mut clients: Vec<HttpClient> = (0..conns)
        .map(|_| {
            let mut c = server.connect();
            let resp = c.request(Method::Get, "/health", None).unwrap();
            assert_eq!(resp.status, 200);
            c
        })
        .collect();

    // Thread cost of holding `conns` live connections: measured before
    // any driver threads exist, so the delta is engine + serving
    // threads only. (baseline already includes the engine's fixed
    // threads for every cell after the first on this server — the
    // interesting signal is growth with `conns`.)
    let held_threads = process_threads();
    let stats = server.stats();
    let cell = format!("{label}_c{conns}");
    eprintln!(
        "b3_gateway: {cell}: +{} process threads while holding {} conns \
         (engine_threads={}, live={})",
        held_threads.saturating_sub(baseline_threads),
        conns,
        stats.engine_threads,
        stats.live_connections,
    );
    reports.push(CellReport {
        cell: cell.clone(),
        conns,
        thread_delta: held_threads.saturating_sub(baseline_threads),
        engine_threads: stats.engine_threads,
        max_live_connections: stats.max_live_connections,
    });

    // One iteration = one request on every open connection. Small cells
    // run on the bench thread itself (no spawn noise — these back the
    // low-concurrency overhead comparison); large cells split the
    // clients across DRIVERS scoped threads.
    group.bench_function(cell, |b| {
        if conns <= 64 {
            b.iter(|| {
                for client in clients.iter_mut() {
                    let resp = client.request(Method::Get, "/health", None).unwrap();
                    assert_eq!(resp.status, 200);
                }
            });
        } else {
            let chunk = conns.div_ceil(DRIVERS);
            b.iter(|| {
                std::thread::scope(|s| {
                    for part in clients.chunks_mut(chunk) {
                        s.spawn(move || {
                            for client in part {
                                let resp =
                                    client.request(Method::Get, "/health", None).unwrap();
                                assert_eq!(resp.status, 200);
                            }
                        });
                    }
                });
            });
        }
    });

    for client in clients {
        client.close();
    }
}

fn write_thread_report(reports: &[CellReport]) {
    let dir = match std::env::var("OM_BENCH_RESULTS_DIR") {
        Ok(d) if d.is_empty() => return,
        Ok(d) => std::path::PathBuf::from(d),
        Err(_) => {
            let cwd = std::env::current_dir().unwrap_or_default();
            cwd.ancestors()
                .filter(|d| d.join("Cargo.lock").is_file())
                .last()
                .unwrap_or(&cwd)
                .join("results")
        }
    };
    let entries: Vec<String> = reports.iter().map(|r| format!("    {}", r.json())).collect();
    let body = format!(
        "{{\n  \"schema\": \"om-bench-threads-v1\",\n  \"group\": \"b3_gateway\",\n  \
         \"entries\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join("b3_gateway_threads.json"), body);
    }
}

fn bench_gateway_sweep(c: &mut Criterion) {
    let threaded_sweep: &[usize] = if smoke() { &[1, 64] } else { &[1, 64, 1024] };
    let event_sweep: &[usize] = if smoke() { &[1, 64] } else { &[1, 64, 1024, 4096] };

    let mut group = c.benchmark_group("b3_gateway");
    group.sample_size(if smoke() { 10 } else { 15 });
    group.measurement_time(Duration::from_millis(if smoke() { 200 } else { 400 }));
    let mut reports = Vec::new();

    let server = HttpServer::start(gateway(), 4);
    for &conns in threaded_sweep {
        run_cell(&mut group, &mut reports, &server, "threaded", conns);
    }
    server.shutdown();

    let server = HttpServer::start_event_driven(
        gateway(),
        EventConfig {
            accept_queue: 8192,
            ..Default::default()
        },
    );
    for &conns in event_sweep {
        run_cell(&mut group, &mut reports, &server, "event", conns);
    }
    let final_stats = server.stats();
    eprintln!(
        "b3_gateway: event engine served peak {} live connections on {} threads",
        final_stats.max_live_connections, final_stats.engine_threads
    );
    server.shutdown();

    group.finish();
    write_thread_report(&reports);
}

criterion_group!(benches, bench_gateway_sweep);
criterion_main!(benches);
