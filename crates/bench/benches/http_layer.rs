//! HTTP-layer microbenchmarks (paper Fig. 1's front tier).
//!
//! Quantifies what the REST surface adds on top of a direct platform
//! call: wire parsing, routing, JSON body handling, and the full
//! client → server → gateway → platform round-trip. Backs the "low
//! overhead" claim for the customized stack's HTTP front.

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use om_http::gateway::MarketplaceGateway;
use om_http::request::{parse_request, ParserConfig};
use om_http::server::HttpServer;
use om_http::{EventConfig, Method};
use om_marketplace::api::{CheckoutItem, MarketplacePlatform};
use om_marketplace::bindings::actor_core::ActorPlatformConfig;
use om_marketplace::EventualPlatform;
use om_common::entity::{Customer, Product, Seller};
use om_common::ids::{CustomerId, ProductId, SellerId};
use om_common::Money;
use serde_json::json;
use std::sync::Arc;

fn seeded_platform() -> Arc<EventualPlatform> {
    let platform = Arc::new(EventualPlatform::new(ActorPlatformConfig {
        decline_rate: 0.0,
        ..Default::default()
    }));
    platform
        .ingest_seller(Seller::new(SellerId(1), "s".into(), "cph".into()))
        .unwrap();
    for c in 1..=64u64 {
        platform
            .ingest_customer(Customer::new(CustomerId(c), "c".into(), "addr".into()))
            .unwrap();
    }
    for p in 1..=16u64 {
        platform
            .ingest_product(
                Product {
                    id: ProductId(p),
                    seller: SellerId(1),
                    name: "w".into(),
                    category: "x".into(),
                    description: "d".into(),
                    price: Money::from_cents(999),
                    freight_value: Money::from_cents(50),
                    version: 0,
                    active: true,
                },
                1_000_000,
            )
            .unwrap();
    }
    platform
}

/// Raw wire parsing: a typical checkout POST.
fn bench_parse(c: &mut Criterion) {
    let body = serde_json::to_vec(&json!({
        "items": [{"seller": 1, "product": 3, "quantity": 2}],
        "method": "CreditCard",
    }))
    .unwrap();
    let wire = format!(
        "POST /customers/7/checkout HTTP/1.1\r\nhost: om\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    let mut full = BytesMut::new();
    full.extend_from_slice(wire.as_bytes());
    full.extend_from_slice(&body);
    let full = full.freeze();
    let cfg = ParserConfig::default();

    let mut group = c.benchmark_group("http");
    group.throughput(Throughput::Bytes(full.len() as u64));
    group.bench_function("parse_checkout_request", |b| {
        b.iter(|| {
            let mut buf = BytesMut::from(&full[..]);
            parse_request(&mut buf, &cfg).unwrap().unwrap()
        });
    });
    group.finish();
}

/// Gateway dispatch without the transport: parsed request → response.
fn bench_gateway_dispatch(c: &mut Criterion) {
    let gateway = MarketplaceGateway::new(seeded_platform());
    let body = serde_json::to_vec(&json!({
        "items": [{"seller": 1, "product": 1, "quantity": 1}],
        "method": "CreditCard",
    }))
    .unwrap();
    let wire = format!(
        "POST /customers/1/checkout HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    let mut full = BytesMut::new();
    full.extend_from_slice(wire.as_bytes());
    full.extend_from_slice(&body);
    let full = full.freeze();
    let cfg = ParserConfig::default();

    // Pre-fill the cart once per iteration via the platform directly so
    // the measured path is parse + route + checkout dispatch.
    let platform = gateway.platform().clone();
    c.bench_function("http/gateway_checkout_dispatch", |b| {
        b.iter(|| {
            platform
                .add_to_cart(
                    CustomerId(1),
                    CheckoutItem {
                        seller: SellerId(1),
                        product: ProductId(1),
                        quantity: 1,
                    },
                )
                .unwrap();
            let mut buf = BytesMut::from(&full[..]);
            let req = parse_request(&mut buf, &cfg).unwrap().unwrap();
            let resp = gateway.handle(&req);
            assert_eq!(resp.status, 200);
            resp
        });
    });
}

/// Full round-trip through the in-memory transport (keep-alive reuse).
fn bench_server_roundtrip(c: &mut Criterion) {
    let server = HttpServer::start(Arc::new(MarketplaceGateway::new(seeded_platform())), 2);
    let mut client = server.connect();
    c.bench_function("http/server_health_roundtrip", |b| {
        b.iter(|| {
            let resp = client.request(Method::Get, "/health", None).unwrap();
            assert_eq!(resp.status, 200);
            resp
        });
    });
    c.bench_function("http/server_dashboard_roundtrip", |b| {
        b.iter(|| {
            let resp = client
                .request(Method::Get, "/sellers/1/dashboard", None)
                .unwrap();
            assert_eq!(resp.status, 200);
            resp
        });
    });
    client.close();
    server.shutdown();

    // Same two round-trips over the event-driven engine: one shared
    // poll loop + worker pool instead of a thread per connection. The
    // single-client cost should stay within the same order.
    let server = HttpServer::start_event_driven(
        Arc::new(MarketplaceGateway::new(seeded_platform())),
        EventConfig::default(),
    );
    let mut client = server.connect();
    c.bench_function("http/event_server_health_roundtrip", |b| {
        b.iter(|| {
            let resp = client.request(Method::Get, "/health", None).unwrap();
            assert_eq!(resp.status, 200);
            resp
        });
    });
    c.bench_function("http/event_server_dashboard_roundtrip", |b| {
        b.iter(|| {
            let resp = client
                .request(Method::Get, "/sellers/1/dashboard", None)
                .unwrap();
            assert_eq!(resp.status, 200);
            resp
        });
    });
    client.close();
    server.shutdown();
}

/// The same dashboard without HTTP, to expose the layer's added cost.
fn bench_direct_dashboard_baseline(c: &mut Criterion) {
    let platform = seeded_platform();
    c.bench_function("http/direct_dashboard_baseline", |b| {
        b.iter(|| platform.seller_dashboard(SellerId(1)).unwrap());
    });
}

criterion_group!(
    benches,
    bench_parse,
    bench_gateway_dispatch,
    bench_server_roundtrip,
    bench_direct_dashboard_baseline
);
criterion_main!(benches);
