//! E3 — per-transaction latency: times a single business transaction on
//! a pre-loaded platform (checkout, price update, dashboard) per
//! implementation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use om_bench::{make_platform, quick_config, PLATFORMS};
use om_common::entity::PaymentMethod;
use om_common::ids::{CustomerId, ProductId, SellerId};
use om_common::Money;
use om_driver::DataGenerator;
use om_marketplace::api::{CheckoutItem, CheckoutRequest, MarketplacePlatform};
use std::sync::atomic::{AtomicU64, Ordering};

fn loaded(kind: om_marketplace::api::PlatformKind) -> Box<dyn MarketplacePlatform> {
    let config = quick_config();
    let platform = make_platform(kind, config.backend, 4, 0.0, false);
    DataGenerator::new(config.scale, 1)
        .ingest_all(platform.as_ref())
        .expect("ingest");
    platform
}

fn bench_checkout(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_checkout_latency");
    group.sample_size(30);
    for kind in PLATFORMS {
        let platform = loaded(kind);
        let customer = AtomicU64::new(0);
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &(), |b, _| {
            b.iter(|| {
                // Rotate customers so carts never collide.
                let c = CustomerId(customer.fetch_add(1, Ordering::Relaxed) % 100);
                platform
                    .add_to_cart(
                        c,
                        CheckoutItem {
                            seller: SellerId(0),
                            product: ProductId(0),
                            quantity: 1,
                        },
                    )
                    .unwrap();
                platform
                    .checkout(CheckoutRequest {
                        customer: c,
                        items: vec![],
                        method: PaymentMethod::CreditCard,
                    })
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_price_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_price_update_latency");
    group.sample_size(30);
    for kind in PLATFORMS {
        let platform = loaded(kind);
        let tick = AtomicU64::new(100);
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &(), |b, _| {
            b.iter(|| {
                let cents = tick.fetch_add(1, Ordering::Relaxed) as i64;
                platform
                    .price_update(SellerId(0), ProductId(1), Money::from_cents(cents))
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_dashboard(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_dashboard_latency");
    group.sample_size(30);
    for kind in PLATFORMS {
        let platform = loaded(kind);
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &(), |b, _| {
            b.iter(|| platform.seller_dashboard(SellerId(0)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_checkout, bench_price_update, bench_dashboard);
criterion_main!(benches);
