//! Substrate microbenchmarks: the building blocks under the platforms.
//! These quantify the mechanism costs DESIGN.md attributes the E1/E5
//! differences to (grain call round-trip, 2PC, MVCC commit, log append,
//! KV write, dataflow epoch).

use criterion::{criterion_group, criterion_main, Criterion};
use om_actor::tx::{Coordinator, LockMode, Participant, TxParticipant};
use om_actor::{Cluster, FaultConfig, GrainContext, GrainId};
use om_common::ids::TransactionId;
use om_common::OmResult;
use om_mvcc::{IsolationLevel, TxManager};
use parking_lot::Mutex;
use std::sync::Arc;

fn bench_actor_call(c: &mut Criterion) {
    let cluster: Cluster<u64, u64> = Cluster::builder()
        .silos(2)
        .workers_per_silo(2)
        .faults(FaultConfig::reliable())
        .register("echo", |_, _| {
            Box::new(|_ctx: &mut GrainContext<'_, u64>, msg: u64, _| msg)
        })
        .build();
    c.bench_function("substrate/actor_call_roundtrip", |b| {
        b.iter(|| cluster.call(GrainId::new("echo", 1), 42).unwrap());
    });
}

/// In-process participant for coordinator-only costs.
struct LocalPart(Mutex<TxParticipant<u64>>);

impl Participant for LocalPart {
    fn prepare(&self, tid: TransactionId) -> OmResult<bool> {
        self.0.lock().prepare(tid)
    }
    fn commit(&self, tid: TransactionId) -> OmResult<()> {
        self.0.lock().commit(tid);
        Ok(())
    }
    fn abort(&self, tid: TransactionId) -> OmResult<()> {
        self.0.lock().abort(tid);
        Ok(())
    }
}

fn bench_2pc(c: &mut Criterion) {
    let coordinator = Coordinator::new();
    let parts: Vec<LocalPart> = (0..4)
        .map(|_| LocalPart(Mutex::new(TxParticipant::new(0u64))))
        .collect();
    c.bench_function("substrate/2pc_commit_4_participants", |b| {
        b.iter(|| {
            let tid = coordinator.begin();
            for p in &parts {
                let mut guard = p.0.lock();
                guard.acquire(tid, LockMode::Write).unwrap();
                *guard.stage_mut(tid).unwrap() += 1;
            }
            let refs: Vec<&dyn Participant> = parts.iter().map(|p| p as &dyn Participant).collect();
            coordinator.run_2pc(tid, &refs).unwrap();
        });
    });
}

fn bench_mvcc_commit(c: &mut Criterion) {
    let mgr = TxManager::new();
    let table = mgr.create_table::<u64, u64>("bench");
    let mut key = 0u64;
    c.bench_function("substrate/mvcc_commit_one_write", |b| {
        b.iter(|| {
            key += 1;
            mgr.run(IsolationLevel::Snapshot, 4, |tx| {
                table.put(tx, key % 10_000, key);
                Ok(())
            })
            .unwrap();
        });
    });
}

fn bench_mvcc_snapshot_scan(c: &mut Criterion) {
    let mgr = TxManager::new();
    let table = mgr.create_table::<u64, u64>("bench");
    mgr.run(IsolationLevel::Snapshot, 0, |tx| {
        for i in 0..10_000 {
            table.put(tx, i, i);
        }
        Ok(())
    })
    .unwrap();
    c.bench_function("substrate/mvcc_scan_10k_rows", |b| {
        b.iter(|| {
            let tx = mgr.begin(IsolationLevel::Snapshot);
            table.scan_filter(&tx, 0..10_000, |_, v| v % 97 == 0).len()
        });
    });
}

fn bench_log_append(c: &mut Criterion) {
    let topic: Arc<om_log::Topic<u64>> = Arc::new(om_log::Topic::new("bench", 4));
    let producer = topic.producer();
    let mut i = 0u64;
    c.bench_function("substrate/log_append", |b| {
        b.iter(|| {
            i += 1;
            producer.send((i % 4) as usize, i).unwrap()
        });
    });
}

fn bench_kv_put(c: &mut Criterion) {
    use om_common::config::ReplicationMode;
    use om_kv::{ReplicatedKv, Session};
    let kv: ReplicatedKv<u64, u64> = ReplicatedKv::new(ReplicationMode::Causal, 16, 8, 3);
    let mut session = Session::new();
    let mut i = 0u64;
    c.bench_function("substrate/kv_causal_put", |b| {
        b.iter(|| {
            i += 1;
            kv.put(&mut session, i % 1000, i);
        });
    });
    kv.quiesce();
}

fn bench_dataflow_epoch(c: &mut Criterion) {
    use om_dataflow::{Address, Dataflow, Effects};
    let df: Dataflow<u64> = Dataflow::builder()
        .partitions(4)
        .max_batch(64)
        .register("count", |_key, state: Option<&[u8]>, msg: u64, out: &mut Effects<u64>| {
            let cur = state
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                .unwrap_or(0);
            out.set_state((cur + msg).to_le_bytes().to_vec());
        })
        .build();
    let mut key = 0u64;
    c.bench_function("substrate/dataflow_epoch_64_records", |b| {
        b.iter(|| {
            for _ in 0..64 {
                key += 1;
                df.submit(Address::new("count", key % 128), 1);
            }
            df.run_to_completion().unwrap()
        });
    });
}

criterion_group!(
    benches,
    bench_actor_call,
    bench_2pc,
    bench_mvcc_commit,
    bench_mvcc_snapshot_scan,
    bench_log_append,
    bench_kv_put,
    bench_dataflow_epoch
);
criterion_main!(benches);
