//! A2 — ablation: checkpoint interval (epoch batch size) vs dataflow
//! runtime cost. Smaller batches commit more checkpoints per record —
//! the latency/overhead trade-off a Statefun deployment tunes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use om_dataflow::{Address, Dataflow, Effects};

fn build(max_batch: usize) -> Dataflow<u64> {
    Dataflow::builder()
        .partitions(4)
        .max_batch(max_batch)
        .register(
            "count",
            |_key, state: Option<&[u8]>, msg: u64, out: &mut Effects<u64>| {
                let cur = state
                    .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                    .unwrap_or(0);
                out.set_state((cur + msg).to_le_bytes().to_vec());
            },
        )
        .build()
}

fn bench_checkpoint_interval(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_checkpoint_interval");
    group.sample_size(15);
    const RECORDS: u64 = 2_048;
    for max_batch in [8usize, 64, 512] {
        group.bench_with_input(
            BenchmarkId::from_parameter(max_batch),
            &max_batch,
            |b, &max_batch| {
                b.iter_with_setup(
                    || {
                        let df = build(max_batch);
                        for i in 0..RECORDS {
                            df.submit(Address::new("count", i % 256), 1);
                        }
                        df
                    },
                    |df| {
                        let epochs = df.run_to_completion().unwrap();
                        assert!(epochs > 0);
                        epochs
                    },
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_checkpoint_interval);
criterion_main!(benches);
