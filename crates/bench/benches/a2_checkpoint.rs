//! A2 — ablation: checkpointing cost of the dataflow runtime.
//!
//! Two axes:
//!
//! * **interval** — epoch batch size: smaller batches commit more
//!   checkpoints per record (the latency/overhead trade-off a Statefun
//!   deployment tunes);
//! * **store** — where checkpoints go: the in-memory store (deep copies,
//!   nothing survives a rebuild) vs the backend-backed store over each
//!   `StateBackend` discipline (durable: every epoch is one multi-key
//!   backend commit). The gap is the price of honest crash recovery.
//!
//! A third group measures the recovery path itself: crash mid-epoch,
//! restore from the backend-backed checkpoint, replay to completion.
//!
//! A fourth group (`a2_workers`) sweeps the partition-parallel worker
//! pool over a CPU-weighted workload, past the host's core count —
//! `w1` is the serial baseline every parallel cell is judged against
//! (`results/a2_floor.json`, `min_cores`-gated so single-core CI skips
//! the speedup check). `OM_BENCH_SMOKE=1` shrinks the sweep to {1, 4}.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use om_bench::{make_checkpoint_store, CHECKPOINT_STORES};
use om_common::config::BackendKind;
use om_dataflow::{Address, CheckpointStore, Dataflow, Effects};
use std::sync::Arc;

fn smoke() -> bool {
    std::env::var("OM_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn build(max_batch: usize, store: Option<Arc<dyn CheckpointStore>>) -> Dataflow<u64> {
    let mut builder = Dataflow::builder().partitions(4).max_batch(max_batch);
    if let Some(store) = store {
        builder = builder.checkpoint_store(store);
    }
    builder
        .register(
            "count",
            |_key, state: Option<&[u8]>, msg: u64, out: &mut Effects<u64>| {
                let cur = state
                    .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                    .unwrap_or(0);
                out.set_state((cur + msg).to_le_bytes().to_vec());
            },
        )
        .build()
}

fn bench_checkpoint_interval(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_checkpoint_interval");
    group.sample_size(15);
    const RECORDS: u64 = 2_048;
    for max_batch in [8usize, 64, 512] {
        group.bench_with_input(
            BenchmarkId::from_parameter(max_batch),
            &max_batch,
            |b, &max_batch| {
                b.iter_with_setup(
                    || {
                        let df = build(max_batch, None);
                        for i in 0..RECORDS {
                            df.submit(Address::new("count", i % 256), 1);
                        }
                        df
                    },
                    |df| {
                        let epochs = df.run_to_completion().unwrap();
                        assert!(epochs > 0);
                        epochs
                    },
                );
            },
        );
    }
    group.finish();
}

/// In-memory vs backend-backed checkpointing at a fixed interval: what a
/// durable epoch commit costs per storage discipline.
fn bench_checkpoint_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_checkpoint_store");
    group.sample_size(15);
    const RECORDS: u64 = 2_048;
    for (label, kind) in CHECKPOINT_STORES {
        group.bench_with_input(BenchmarkId::from_parameter(label), &kind, |b, &kind| {
            b.iter_with_setup(
                || {
                    let df = build(64, make_checkpoint_store(kind));
                    for i in 0..RECORDS {
                        df.submit(Address::new("count", i % 256), 1);
                    }
                    df
                },
                |df| {
                    let epochs = df.run_to_completion().unwrap();
                    assert!(epochs > 0);
                    epochs
                },
            );
        });
    }
    group.finish();
}

/// Crash mid-run, restore from the backend-backed checkpoint, replay:
/// the recovery cell per backend.
fn bench_crash_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_crash_recovery");
    group.sample_size(10);
    const RECORDS: u64 = 1_024;
    for kind in BackendKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter_with_setup(
                    || {
                        let df = build(64, make_checkpoint_store(Some(kind)));
                        for i in 0..RECORDS {
                            df.submit(Address::new("count", i % 256), 1);
                        }
                        df.inject_crash_after(RECORDS / 2);
                        df
                    },
                    |df| {
                        df.run_to_completion().unwrap();
                        let (_, replays, _, _) = df.stats();
                        assert!(replays >= 1, "the injected crash must fire");
                        replays
                    },
                );
            },
        );
    }
    group.finish();
}

/// Partition-parallel epoch execution: the same CPU-weighted workload at
/// each worker count, including one past any reasonable core count. The
/// per-record work (a short hash chain) is heavy enough that fan-out
/// wins on multi-core hosts and the pool handoff shows up honestly on
/// single-core ones.
fn bench_workers(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_workers");
    group.sample_size(10);
    let records: u64 = if smoke() { 512 } else { 1_024 };
    let sweep: &[usize] = if smoke() { &[1, 4] } else { &[1, 2, 4, 8] };
    for &workers in sweep {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("w{workers}")),
            &workers,
            |b, &workers| {
                b.iter_with_setup(
                    || {
                        let df = Dataflow::builder()
                            .partitions(8)
                            .max_batch(128)
                            .workers(workers)
                            .register(
                                "work",
                                |_key, state: Option<&[u8]>, msg: u64, out: &mut Effects<u64>| {
                                    // CPU-weighted: a hash chain per record.
                                    let mut h = msg.wrapping_add(0x9E37_79B9_7F4A_7C15);
                                    for _ in 0..2_000 {
                                        h ^= h >> 33;
                                        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                                    }
                                    let cur = state
                                        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                                        .unwrap_or(0);
                                    out.set_state((cur ^ h).to_le_bytes().to_vec());
                                },
                            )
                            .build();
                        for i in 0..records {
                            df.submit(Address::new("work", i % 64), i);
                        }
                        df
                    },
                    |df| {
                        let epochs = df.run_to_completion().unwrap();
                        assert!(epochs > 0);
                        epochs
                    },
                );
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_checkpoint_interval,
    bench_checkpoint_store,
    bench_crash_recovery,
    bench_workers
);
criterion_main!(benches);
