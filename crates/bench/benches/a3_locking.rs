//! A3 — ablation: wait-die lock contention. Times transactional batches
//! against one hot participant vs spread participants, quantifying the
//! restart cost that makes hot-product checkouts expensive under 2PL.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use om_actor::tx::{Coordinator, LockMode, Participant, TxParticipant};
use om_common::ids::TransactionId;
use om_common::OmResult;
use parking_lot::Mutex;
use std::sync::Arc;

struct LocalPart(Mutex<TxParticipant<u64>>);

impl Participant for LocalPart {
    fn prepare(&self, tid: TransactionId) -> OmResult<bool> {
        self.0.lock().prepare(tid)
    }
    fn commit(&self, tid: TransactionId) -> OmResult<()> {
        self.0.lock().commit(tid);
        Ok(())
    }
    fn abort(&self, tid: TransactionId) -> OmResult<()> {
        self.0.lock().abort(tid);
        Ok(())
    }
}

/// Runs `txs` transactions from 4 threads over `parts`, picking the
/// participant by `spread` (1 = all hit participant 0).
fn run_contended(parts: &Arc<Vec<LocalPart>>, coordinator: &Arc<Coordinator>, spread: usize) {
    std::thread::scope(|scope| {
        for w in 0..4usize {
            let parts = parts.clone();
            let coordinator = coordinator.clone();
            scope.spawn(move || {
                for i in 0..50usize {
                    let idx = (w * 50 + i) % spread;
                    let tid = coordinator.begin();
                    // Wait-die retry loop with the same tid.
                    loop {
                        let acquired = {
                            let mut p = parts[idx].0.lock();
                            p.acquire(tid, LockMode::Write)
                                .map(|_| *p.stage_mut(tid).unwrap() += 1)
                        };
                        match acquired {
                            Ok(()) => break,
                            Err(_) => std::thread::yield_now(),
                        }
                    }
                    let refs: Vec<&dyn Participant> = vec![&parts[idx]];
                    let _ = coordinator.run_2pc(tid, &refs);
                }
            });
        }
    });
}

fn bench_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("a3_lock_contention");
    group.sample_size(15);
    for (label, spread) in [("hot_single_key", 1usize), ("spread_16_keys", 16)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &spread, |b, &spread| {
            b.iter_with_setup(
                || {
                    let parts: Arc<Vec<LocalPart>> = Arc::new(
                        (0..16)
                            .map(|_| LocalPart(Mutex::new(TxParticipant::new(0u64))))
                            .collect(),
                    );
                    (parts, Arc::new(Coordinator::new()))
                },
                |(parts, coordinator)| run_contended(&parts, &coordinator, spread),
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_contention);
criterion_main!(benches);
