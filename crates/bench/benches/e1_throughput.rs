//! E1 — headline throughput comparison (paper §III): one Criterion group
//! timing a fixed checkout-heavy operation batch on each of the four
//! implementations. The *relative* ordering (eventual > statefun >
//! transactions ≈ customized) is the reproduced result.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use om_bench::{make_platform, quick_config, PLATFORMS};
use om_common::config::RunConfig;
use om_driver::run_benchmark;
use om_marketplace::api::PlatformKind;

fn bench_e1(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_throughput");
    group.sample_size(10);
    for kind in PLATFORMS {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter_with_setup(
                    || {
                        let config: RunConfig = quick_config();
                        let platform = make_platform(
                            kind,
                            config.backend,
                            4,
                            config.payment_decline_rate,
                            matches!(
                                kind,
                                PlatformKind::Eventual | PlatformKind::Transactional
                            ),
                        );
                        (platform, config)
                    },
                    |(platform, config)| {
                        let report = run_benchmark(platform.as_ref(), &config, true);
                        assert!(report.operations > 0);
                        report
                    },
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);
