//! E1 — headline throughput comparison (paper §III): one Criterion group
//! timing a fixed checkout-heavy operation batch on each of the four
//! implementations. The *relative* ordering (eventual > statefun >
//! transactions ≈ customized) is the reproduced result.
//!
//! A second group sweeps the dataflow platform's epoch worker pool
//! (`df_workers`) under the same workload: the end-to-end view of
//! partition-parallel execution, complementing the runtime-only
//! `a2_workers` microbench.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use om_bench::{make_platform, quick_config, PLATFORMS};
use om_common::config::RunConfig;
use om_driver::run_benchmark;
use om_marketplace::api::PlatformKind;
use om_marketplace::{build_platform, PlatformSpec};

fn bench_e1(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_throughput");
    group.sample_size(10);
    for kind in PLATFORMS {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter_with_setup(
                    || {
                        let config: RunConfig = quick_config();
                        let platform = make_platform(
                            kind,
                            config.backend,
                            4,
                            config.payment_decline_rate,
                            matches!(
                                kind,
                                PlatformKind::Eventual | PlatformKind::Transactional
                            ),
                        );
                        (platform, config)
                    },
                    |(platform, config)| {
                        let report = run_benchmark(platform.as_ref(), &config, true);
                        assert!(report.operations > 0);
                        report
                    },
                );
            },
        );
    }
    group.finish();
}

/// The dataflow platform at each epoch-worker count, one cell past any
/// plausible core count. `w1` pins the serial baseline; the others show
/// what partition-parallel epochs buy (or cost) end to end.
fn bench_e1_dataflow_workers(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_dataflow_workers");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("w{workers}")),
            &workers,
            |b, &workers| {
                b.iter_with_setup(
                    || {
                        let config: RunConfig = quick_config();
                        let platform = build_platform(
                            &PlatformSpec::new(PlatformKind::Dataflow, config.backend)
                                .parallelism(8)
                                .df_workers(workers)
                                .decline_rate(config.payment_decline_rate),
                        );
                        (platform, config)
                    },
                    |(platform, config)| {
                        let report = run_benchmark(platform.as_ref(), &config, true);
                        assert!(report.operations > 0);
                        report
                    },
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e1, bench_e1_dataflow_workers);
criterion_main!(benches);
