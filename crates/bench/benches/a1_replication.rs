//! A1 — ablation: eventual vs causal apply discipline in the replicated
//! KV store (the design choice behind Fig. 1's Redis deployment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use om_common::config::ReplicationMode;
use om_kv::{ReplicatedKv, Session};

fn bench_replication_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_replication_mode");
    group.sample_size(20);
    for mode in [ReplicationMode::Eventual, ReplicationMode::Causal] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}")),
            &mode,
            |b, &mode| {
                b.iter_with_setup(
                    || ReplicatedKv::<u64, u64>::new(mode, 16, 16, 11),
                    |kv| {
                        let mut session = Session::new();
                        for i in 0..5_000u64 {
                            kv.put(&mut session, i % 500, i);
                        }
                        kv.quiesce();
                        kv.stats().applied()
                    },
                );
            },
        );
    }
    group.finish();
}

fn bench_secondary_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_secondary_read");
    for mode in [ReplicationMode::Eventual, ReplicationMode::Causal] {
        let kv: ReplicatedKv<u64, u64> = ReplicatedKv::new(mode, 16, 16, 13);
        let mut session = Session::new();
        for i in 0..1_000u64 {
            kv.put(&mut session, i, i);
        }
        kv.quiesce();
        let mut i = 0u64;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}")),
            &(),
            |b, _| {
                b.iter(|| {
                    i += 1;
                    kv.get_secondary(&mut session, &(i % 1_000))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_replication_modes, bench_secondary_reads);
criterion_main!(benches);
