//! B5 — **adversarial scenario sweep + open-loop SLO harness**.
//!
//! Two kinds of cells:
//!
//! * `b5_scenarios/<scenario>` — closed-loop criterion timing of one
//!   small benchmark run per named scenario (flash_sale, price_storm,
//!   dashboard_storm, cart_churn) on the transactional binding over
//!   snapshot isolation. These are the "how much does skew cost" cells;
//!   `results/b5_floor.json` holds the flash-sale floor.
//!
//! * the **open-loop SLO sweep** — not criterion-timed. The harness
//!   first measures closed-loop capacity on the same cell, then offers
//!   flash-sale traffic at 0.5×, 1×, and 2× that rate on a
//!   deterministic arrival schedule and records the SLO row per rate
//!   (offered vs achieved, drop/late, p50/p99/p999 from *scheduled*
//!   arrival). Results land in `results/b5_slo.json` as a `metrics`
//!   object the guard's `metric_min`/`metric_max` checks gate:
//!   under-saturation traffic must keep `achieved/offered` high and a
//!   sane p99, and the over-saturation p99 must diverge (queueing
//!   collapse — the signal the closed loop structurally cannot see,
//!   because it throttles its own offered rate to the completion rate).
//!
//! `OM_BENCH_SMOKE=1` shrinks sample counts and the sweep window for CI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use om_bench::{quick_config, run_platform};
use om_common::config::{OpenLoopConfig, RunConfig, ScenarioConfig, WorkloadMix};
use om_driver::{saturation_point, SloRow};
use om_marketplace::api::PlatformKind;

fn smoke() -> bool {
    std::env::var("OM_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The scenario cell every b5 measurement runs on: the transactional
/// binding over snapshot isolation — the cell with real concurrency
/// control, where hot-key contention actually queues.
fn scenario_config(scenario: ScenarioConfig) -> RunConfig {
    RunConfig {
        backend: om_common::config::BackendKind::SnapshotIsolation,
        scenario: Some(scenario),
        // Deep stock so a flash sale is contention-bound, not
        // sellout-bound, and no deletes so the hot product survives.
        mix: WorkloadMix {
            product_delete: 0,
            ..Default::default()
        },
        ..quick_config()
    }
}

fn bench_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("b5_scenarios");
    group.sample_size(if smoke() { 10 } else { 20 });
    for kind in om_common::config::ScenarioKind::ALL {
        let config = scenario_config(ScenarioConfig::named(kind));
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &config,
            |b, config| {
                b.iter(|| run_platform(PlatformKind::Transactional, config, config.workers, false));
            },
        );
    }
    group.finish();
}

/// One open-loop flash-sale run at `rate` requests/s for roughly
/// `window_secs`, returning the SLO row.
fn slo_at(rate: f64, window_secs: f64) -> SloRow {
    let arrivals = ((rate * window_secs) as u64).max(200);
    let config = RunConfig {
        open_loop: Some(OpenLoopConfig::at_rate(rate, arrivals)),
        warmup_ops_per_worker: 10,
        ..scenario_config(ScenarioConfig::flash_sale())
    };
    let report = run_platform(PlatformKind::Transactional, &config, config.workers, false);
    report.slo.expect("open-loop run carries an SLO row")
}

/// The open-loop sweep: calibrate closed-loop, probe down to a rate the
/// cell genuinely sustains, push far past it, and write
/// `results/b5_slo.json`.
fn run_slo_sweep() {
    let window_secs = if smoke() { 0.5 } else { 2.0 };

    // Closed-loop calibration: the completion rate the cell settles at
    // when every worker immediately re-offers. This is the rate a
    // closed-loop harness would *report as fine* at any load — and an
    // optimistic ceiling for open-loop arrivals, which pay queueing
    // delay instead of throttling the offered rate.
    let calib = run_platform(
        PlatformKind::Transactional,
        &scenario_config(ScenarioConfig::flash_sale()),
        quick_config().workers,
        false,
    );
    let capacity = calib.throughput_per_sec.max(500.0);

    // Probe downward from the closed-loop ceiling until a rate truly
    // sustains (>=90% achieved). Collapsed probes stay in the curve —
    // they ARE the over-saturation data. This keeps the floor checks
    // about the mechanism (collapse visible, sustained cell healthy)
    // rather than about the host's absolute speed.
    let mut rows: Vec<SloRow> = Vec::new();
    let mut rate = capacity;
    let mut under = slo_at(rate, window_secs);
    for _ in 0..4 {
        if under.achieved_ratio() >= 0.9 {
            break;
        }
        rows.push(under);
        rate /= 2.0;
        under = slo_at(rate, window_secs);
    }
    // Far past the sustained rate: if even the closed-loop ceiling
    // sustained, 4x of it certainly does not.
    let over = slo_at(rate * 4.0, window_secs);
    rows.push(under.clone());
    rows.push(over.clone());
    rows.sort_by(|a, b| a.offered_per_sec.total_cmp(&b.offered_per_sec));
    let saturation = saturation_point(&rows, 0.9).unwrap_or(0.0);

    for row in &rows {
        eprintln!(
            "b5_slo: offered={:.0}/s achieved={:.0}/s ({:.0}%) p99={}us p999={}us drop={} late={}",
            row.offered_per_sec,
            row.achieved_per_sec,
            row.achieved_ratio() * 100.0,
            row.latency.p99_us,
            row.latency.p999_us,
            row.dropped,
            row.late,
        );
    }

    let metrics = serde_json::json!({
        "schema": "om-bench-slo-v1",
        "comment": "Open-loop flash-sale SLO sweep on transactional+snapshot_isolation: \
                    closed-loop capacity calibration, downward probe to the highest \
                    genuinely-sustained rate, then 4x past it. The metrics object is \
                    gated by results/b5_floor.json via bench_guard's metric_min/metric_max \
                    checks.",
        "closed_loop_capacity_per_sec": capacity,
        "closed_loop_p99_us": calib.latency.get("checkout").map(|l| l.p99_us).unwrap_or(0),
        "sustained_per_sec": rate,
        "saturation_per_sec": saturation,
        "rows": rows,
        "metrics": {
            "achieved_ratio_under": under.achieved_ratio(),
            "p99_us_under": under.latency.p99_us as f64,
            "p99_us_over": over.latency.p99_us as f64,
            "collapse_p99_ratio": over.latency.p99_us as f64 / (under.latency.p99_us as f64).max(1.0),
        },
    });
    // Workspace-relative results/, like the criterion shim resolves it.
    let dir = match std::env::var("OM_BENCH_RESULTS_DIR") {
        Ok(d) if !d.is_empty() => std::path::PathBuf::from(d),
        _ => {
            let cwd = std::env::current_dir().unwrap_or_default();
            cwd.ancestors()
                .filter(|d| d.join("Cargo.lock").is_file())
                .last()
                .unwrap_or(&cwd)
                .join("results")
        }
    };
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("b5_slo.json");
    std::fs::write(&path, serde_json::to_string_pretty(&metrics).unwrap())
        .expect("write results/b5_slo.json");
    eprintln!(
        "b5_slo: capacity={capacity:.0}/s saturation={saturation:.0}/s -> {}",
        path.display()
    );
}

fn bench_all(c: &mut Criterion) {
    bench_scenarios(c);
    run_slo_sweep();
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
