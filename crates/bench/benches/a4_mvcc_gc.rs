//! A4 ablation bench: MVCC scan cost as version chains grow, and the
//! cost/benefit of garbage collection (DESIGN.md §5 — the customized
//! stack's dashboard reads are MVCC snapshot scans).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use om_mvcc::{IsolationLevel, TxManager};

const KEYS: u64 = 512;

/// Builds a table whose every key carries `versions` versions.
fn table_with_chain_depth(versions: usize) -> (TxManager, std::sync::Arc<om_mvcc::Table<u64, u64>>) {
    let mgr = TxManager::new();
    let table = mgr.create_table::<u64, u64>("t");
    for v in 0..versions.max(1) {
        let tx = mgr.begin(IsolationLevel::Snapshot);
        for k in 0..KEYS {
            table.put(&tx, k, v as u64);
        }
        mgr.commit(tx).unwrap();
    }
    (mgr, table)
}

fn bench_scan_vs_chain_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("a4/scan_vs_chain_depth");
    for versions in [1usize, 8, 64] {
        let (mgr, table) = table_with_chain_depth(versions);
        group.bench_with_input(
            BenchmarkId::from_parameter(versions),
            &versions,
            |b, _| {
                b.iter(|| {
                    let tx = mgr.begin(IsolationLevel::Snapshot);
                    let n = table.count(&tx);
                    mgr.abort(tx);
                    assert_eq!(n, KEYS as usize);
                    n
                });
            },
        );
    }
    group.finish();
}

fn bench_scan_after_gc(c: &mut Criterion) {
    let (mgr, table) = table_with_chain_depth(64);
    mgr.gc();
    c.bench_function("a4/scan_after_gc_depth64", |b| {
        b.iter(|| {
            let tx = mgr.begin(IsolationLevel::Snapshot);
            let n = table.count(&tx);
            mgr.abort(tx);
            n
        });
    });
}

fn bench_gc_pass_cost(c: &mut Criterion) {
    c.bench_function("a4/gc_pass_depth8", |b| {
        b.iter_with_setup(
            || table_with_chain_depth(8),
            |(mgr, _table)| mgr.gc(),
        );
    });
}

criterion_group!(
    benches,
    bench_scan_vs_chain_depth,
    bench_scan_after_gc,
    bench_gc_pass_cost
);
criterion_main!(benches);
