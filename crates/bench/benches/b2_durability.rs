//! B2 — **durability cost and recovery speed** across the three storage
//! backends.
//!
//! Two questions the file-durable backend raises, measured head to head:
//!
//! * `b2_commit_latency` — what a 16-key atomic commit costs per
//!   discipline. The file backend pays a framed WAL append + flush per
//!   commit; the memory backends pay locks (eventual) or MVCC
//!   validation (snapshot isolation) only.
//! * `b2_checkpoint_restart` — how fast a rebuilt dataflow reads back
//!   its last committed checkpoint (`CheckpointStore::load`). For the
//!   memory backends this is the **shared-instance** restart — their
//!   best case, since a genuinely cold process loses them entirely; the
//!   file backend serves the same load after a real process boundary.
//! * `b2_cold_recovery_file` — the file backend's true cold start:
//!   open a populated data directory from disk alone (snapshot load +
//!   WAL replay + torn-tail scan).
//! * `b2_group_commit` — the tentpole cell: 1/4/16 concurrent writers
//!   committing under `sync_commits`, group commit on vs off. One
//!   iteration = every writer performing 32 commits; with the barrier
//!   off each of those commits pays its own fsync, with it on a cohort
//!   leader pays one fsync for everyone parked.
//! * `b2_snapshot_mode` — snapshot cost vs state size: 64 dirty keys
//!   over stores of 1k/16k keys, full vs incremental. Incremental cost
//!   must track the churn (flat across state sizes), full must track
//!   the store.
//! * `b2_snapshot_mode_recovery` — cold-open cost of the two snapshot
//!   disciplines (one base vs base + delta chain).
//!
//! The criterion shim reports min/median/p95 over repeated samples and
//! records every group to `results/bench_<group>.json` — cite the
//! medians.

use criterion::{criterion_group, BenchmarkId, Criterion};
use om_bench::{make_checkpoint_store, BACKENDS, CHECKPOINT_STORES};
use om_common::config::SnapshotMode;
use om_dataflow::StateDelta;
use om_storage::{make_backend, FileBackend, FileBackendOptions, StateBackend, WriteOp};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// `OM_BENCH_SMOKE=1` shrinks the sweep to the CI guard slice: only the
/// contended group-commit cells, fewer samples.
fn smoke() -> bool {
    std::env::var("OM_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn commit_ops(round: u64) -> Vec<WriteOp> {
    (0..16u64)
        .map(|k| WriteOp {
            key: format!("b2/key/{k}").into_bytes(),
            value: Some(round.to_le_bytes().to_vec()),
        })
        .collect()
}

fn bench_commit_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("b2_commit_latency");
    group.sample_size(20);
    for backend_kind in BACKENDS {
        let backend = make_backend(backend_kind, 16);
        let round = AtomicU64::new(0);
        group.bench_with_input(
            BenchmarkId::from_parameter(backend_kind.label()),
            &backend_kind,
            |b, _| {
                b.iter_with_setup(
                    || commit_ops(round.fetch_add(1, Ordering::Relaxed)),
                    |ops| backend.commit_ops(&ops).expect("sequential commits"),
                );
            },
        );
    }
    group.finish();
}

/// Commits `epochs` checkpoint epochs (32 dirty keys each) through the
/// given store, mimicking what the dataflow runtime persists.
fn populate_checkpoints(store: &dyn om_dataflow::CheckpointStore, epochs: u64) {
    for epoch in 1..=epochs {
        let dirty: Vec<StateDelta> = (0..32u64)
            .map(|k| StateDelta::put(
                (k % 4) as usize,
                "counter",
                k,
                epoch.to_le_bytes().to_vec(),
            ))
            .collect();
        store
            .commit_epoch(epoch, &[epoch, epoch, epoch, epoch], dirty)
            .expect("checkpoint commit");
    }
}

fn bench_checkpoint_restart(c: &mut Criterion) {
    let mut group = c.benchmark_group("b2_checkpoint_restart");
    group.sample_size(15);
    const EPOCHS: u64 = 64;
    for (label, kind) in CHECKPOINT_STORES {
        let store = match make_checkpoint_store(kind) {
            Some(store) => store,
            None => std::sync::Arc::new(om_dataflow::InMemoryCheckpointStore::new()),
        };
        populate_checkpoints(store.as_ref(), EPOCHS);
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter_with_setup(
                || (),
                |()| {
                    let snap = store.load().expect("load").expect("committed");
                    assert_eq!(snap.epoch, EPOCHS);
                    snap.states.len()
                },
            );
        });
    }
    group.finish();
}

fn scratch_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "om-b2-bench-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn bench_cold_recovery_file(c: &mut Criterion) {
    let mut group = c.benchmark_group("b2_cold_recovery_file");
    group.sample_size(10);
    // Populate once: 1024 keys across WAL + snapshot, then time reopens.
    for commits in [256u64, 2_048] {
        let dir = scratch_dir();
        {
            let backend = FileBackend::open(&dir, FileBackendOptions::default()).unwrap();
            for round in 0..commits {
                backend.commit_ops(&commit_ops(round)).unwrap();
            }
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{commits}_commits")),
            &commits,
            |b, _| {
                b.iter_with_setup(
                    || (),
                    |()| {
                        let reborn =
                            FileBackend::open(&dir, FileBackendOptions::default()).unwrap();
                        assert_eq!(reborn.len(), 16);
                        reborn.len()
                    },
                );
            },
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// The tentpole measurement: concurrent committers under `sync_commits`
/// with and without the group-commit barrier. One iteration = `writers`
/// threads × 32 commits each, so the barrier-off cell pays
/// `writers * 32` serialized fsyncs and the barrier-on cell pays one per
/// cohort.
fn bench_group_commit(c: &mut Criterion) {
    const COMMITS_PER_WRITER: u64 = 32;
    let mut group = c.benchmark_group("b2_group_commit");
    group.sample_size(if smoke() { 7 } else { 12 });
    group.measurement_time(Duration::from_millis(if smoke() { 400 } else { 1_500 }));
    let writer_counts: &[usize] = if smoke() { &[16] } else { &[1, 4, 16] };
    for &writers in writer_counts {
        for (label, window) in [
            ("group_on", Some(Duration::ZERO)),
            ("group_off", None),
        ] {
            let opts = FileBackendOptions {
                shards: 16,
                sync_commits: true,
                group_commit_window: window,
                ..FileBackendOptions::default()
            };
            let backend =
                std::sync::Arc::new(FileBackend::scratch_with(opts).expect("scratch backend"));
            let round = AtomicU64::new(0);
            group.bench_function(format!("w{writers}_{label}"), |b| {
                b.iter(|| {
                    let r = round.fetch_add(1, Ordering::Relaxed);
                    std::thread::scope(|scope| {
                        for w in 0..writers {
                            let backend = backend.clone();
                            scope.spawn(move || {
                                for i in 0..COMMITS_PER_WRITER {
                                    let ops = [WriteOp {
                                        key: format!("w{w}/k{i}").into_bytes(),
                                        value: Some(r.to_le_bytes().to_vec()),
                                    }];
                                    backend.commit_ops(&ops).expect("grouped commit");
                                }
                            });
                        }
                    });
                });
            });
        }
    }
    group.finish();
}

/// Snapshot cost vs state size at fixed churn: every iteration dirties
/// 64 keys and forces a snapshot. Incremental snapshots must price the
/// churn (flat across store sizes); full snapshots price the store.
fn bench_snapshot_mode(c: &mut Criterion) {
    const CHURN: u64 = 64;
    let mut group = c.benchmark_group("b2_snapshot_mode");
    group.sample_size(10);
    for state_keys in [1_000u64, 16_000] {
        for (label, mode) in [
            ("full", SnapshotMode::Full),
            ("incremental", SnapshotMode::Incremental),
        ] {
            let opts = FileBackendOptions {
                shards: 16,
                snapshot_every: 0, // snapshots forced by the bench only
                snapshot_mode: mode,
                // Never compact here: measure the pure delta path.
                compact_max_deltas: u64::MAX,
                compact_ratio_pct: u64::MAX,
                ..FileBackendOptions::default()
            };
            let backend = FileBackend::scratch_with(opts).expect("scratch backend");
            for k in 0..state_keys {
                backend.put(format!("state/{k:08}").as_bytes(), &[7u8; 64]);
            }
            // Seed the chain with a base so incremental iterations
            // measure deltas, not the first base write.
            backend.snapshot_now().expect("seed snapshot");
            let round = AtomicU64::new(0);
            group.bench_function(format!("{label}_{state_keys}_keys"), |b| {
                b.iter(|| {
                    let r = round.fetch_add(1, Ordering::Relaxed);
                    for k in 0..CHURN {
                        backend.put(format!("state/{k:08}").as_bytes(), &r.to_le_bytes());
                    }
                    backend.snapshot_now().expect("forced snapshot");
                });
            });
        }
    }
    group.finish();
}

/// Cold-open cost of the two snapshot disciplines over the same
/// history: a lone full base vs a base plus a delta chain.
fn bench_snapshot_mode_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("b2_snapshot_mode_recovery");
    group.sample_size(10);
    for (label, mode) in [
        ("full", SnapshotMode::Full),
        ("incremental", SnapshotMode::Incremental),
    ] {
        let dir = scratch_dir();
        {
            let opts = FileBackendOptions {
                shards: 16,
                snapshot_every: 0,
                snapshot_mode: mode,
                compact_max_deltas: u64::MAX,
                compact_ratio_pct: u64::MAX,
                ..FileBackendOptions::default()
            };
            let backend = FileBackend::open(&dir, opts).expect("open");
            for k in 0..2_048u64 {
                backend.put(format!("state/{k:08}").as_bytes(), &[3u8; 64]);
            }
            backend.snapshot_now().expect("base");
            for round in 0..8u64 {
                for k in 0..64u64 {
                    backend.put(format!("state/{k:08}").as_bytes(), &round.to_le_bytes());
                }
                backend.snapshot_now().expect("delta or base");
            }
        }
        let opts = FileBackendOptions {
            snapshot_mode: mode,
            ..FileBackendOptions::default()
        };
        group.bench_function(label, |b| {
            b.iter_with_setup(
                || (),
                |()| {
                    let reborn = FileBackend::open(&dir, opts).expect("cold open");
                    assert_eq!(reborn.len(), 2_048);
                    reborn.len()
                },
            );
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(
    b2,
    bench_commit_latency,
    bench_checkpoint_restart,
    bench_cold_recovery_file,
    bench_group_commit,
    bench_snapshot_mode,
    bench_snapshot_mode_recovery
);
criterion_group!(b2_smoke, bench_group_commit);

fn main() {
    if smoke() {
        // CI guard slice: just the contended group-commit cells.
        b2_smoke();
    } else {
        b2();
    }
}
