//! B2 — **durability cost and recovery speed** across the three storage
//! backends.
//!
//! Two questions the file-durable backend raises, measured head to head:
//!
//! * `b2_commit_latency` — what a 16-key atomic commit costs per
//!   discipline. The file backend pays a framed WAL append + flush per
//!   commit; the memory backends pay locks (eventual) or MVCC
//!   validation (snapshot isolation) only.
//! * `b2_checkpoint_restart` — how fast a rebuilt dataflow reads back
//!   its last committed checkpoint (`CheckpointStore::load`). For the
//!   memory backends this is the **shared-instance** restart — their
//!   best case, since a genuinely cold process loses them entirely; the
//!   file backend serves the same load after a real process boundary.
//! * `b2_cold_recovery_file` — the file backend's true cold start:
//!   open a populated data directory from disk alone (snapshot load +
//!   WAL replay + torn-tail scan).
//!
//! The criterion shim reports first-order mean ns/iter with no
//! statistics — cite repeated runs for any perf claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use om_bench::{make_checkpoint_store, BACKENDS, CHECKPOINT_STORES};
use om_dataflow::StateDelta;
use om_storage::{make_backend, FileBackend, FileBackendOptions, StateBackend, WriteOp};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn commit_ops(round: u64) -> Vec<WriteOp> {
    (0..16u64)
        .map(|k| WriteOp {
            key: format!("b2/key/{k}").into_bytes(),
            value: Some(round.to_le_bytes().to_vec()),
        })
        .collect()
}

fn bench_commit_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("b2_commit_latency");
    group.sample_size(20);
    for backend_kind in BACKENDS {
        let backend = make_backend(backend_kind, 16);
        let round = AtomicU64::new(0);
        group.bench_with_input(
            BenchmarkId::from_parameter(backend_kind.label()),
            &backend_kind,
            |b, _| {
                b.iter_with_setup(
                    || commit_ops(round.fetch_add(1, Ordering::Relaxed)),
                    |ops| backend.commit_ops(&ops).expect("sequential commits"),
                );
            },
        );
    }
    group.finish();
}

/// Commits `epochs` checkpoint epochs (32 dirty keys each) through the
/// given store, mimicking what the dataflow runtime persists.
fn populate_checkpoints(store: &dyn om_dataflow::CheckpointStore, epochs: u64) {
    for epoch in 1..=epochs {
        let dirty: Vec<StateDelta> = (0..32u64)
            .map(|k| StateDelta::put(
                (k % 4) as usize,
                "counter",
                k,
                epoch.to_le_bytes().to_vec(),
            ))
            .collect();
        store
            .commit_epoch(epoch, &[epoch, epoch, epoch, epoch], dirty)
            .expect("checkpoint commit");
    }
}

fn bench_checkpoint_restart(c: &mut Criterion) {
    let mut group = c.benchmark_group("b2_checkpoint_restart");
    group.sample_size(15);
    const EPOCHS: u64 = 64;
    for (label, kind) in CHECKPOINT_STORES {
        let store = match make_checkpoint_store(kind) {
            Some(store) => store,
            None => std::sync::Arc::new(om_dataflow::InMemoryCheckpointStore::new()),
        };
        populate_checkpoints(store.as_ref(), EPOCHS);
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter_with_setup(
                || (),
                |()| {
                    let snap = store.load().expect("load").expect("committed");
                    assert_eq!(snap.epoch, EPOCHS);
                    snap.states.len()
                },
            );
        });
    }
    group.finish();
}

fn scratch_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "om-b2-bench-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn bench_cold_recovery_file(c: &mut Criterion) {
    let mut group = c.benchmark_group("b2_cold_recovery_file");
    group.sample_size(10);
    // Populate once: 1024 keys across WAL + snapshot, then time reopens.
    for commits in [256u64, 2_048] {
        let dir = scratch_dir();
        {
            let backend = FileBackend::open(&dir, FileBackendOptions::default()).unwrap();
            for round in 0..commits {
                backend.commit_ops(&commit_ops(round)).unwrap();
            }
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{commits}_commits")),
            &commits,
            |b, _| {
                b.iter_with_setup(
                    || (),
                    |()| {
                        let reborn =
                            FileBackend::open(&dir, FileBackendOptions::default()).unwrap();
                        assert_eq!(reborn.len(), 16);
                        reborn.len()
                    },
                );
            },
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(
    b2,
    bench_commit_latency,
    bench_checkpoint_restart,
    bench_cold_recovery_file
);
criterion_main!(b2);
