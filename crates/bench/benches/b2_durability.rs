//! B2 — **durability cost and recovery speed** across the three storage
//! backends.
//!
//! Two questions the file-durable backend raises, measured head to head:
//!
//! * `b2_commit_latency` — what a 16-key atomic commit costs per
//!   discipline. The file backend pays a framed WAL append + flush per
//!   commit; the memory backends pay locks (eventual) or MVCC
//!   validation (snapshot isolation) only.
//! * `b2_checkpoint_restart` — how fast a rebuilt dataflow reads back
//!   its last committed checkpoint (`CheckpointStore::load`). For the
//!   memory backends this is the **shared-instance** restart — their
//!   best case, since a genuinely cold process loses them entirely; the
//!   file backend serves the same load after a real process boundary.
//! * `b2_cold_recovery` — the file backend's true cold start as a
//!   first-class **state-size axis**: open a data directory holding
//!   10×/100× the 1× reference state (2k keys) from disk alone, with
//!   serial (1 thread) vs parallel (4 threads) snapshot-section
//!   loading. The parallel cell can only beat serial on multi-core
//!   hosts; the guard enforces "never slower" everywhere and ≥2×
//!   where cores allow.
//! * `b2_group_commit` — the tentpole cell: 1/4/16 concurrent writers
//!   committing under `sync_commits`, sweeping the whole policy axis:
//!   off (per-commit fsync), fixed 0/50/200µs windows, and the
//!   adaptive controller (`GroupCommitPolicy::adaptive_default()`),
//!   which must match the best fixed window at 1 writer (no pointless
//!   stalling) AND at 16 writers (full cohorts). One iteration = every
//!   writer performing 32 commits.
//! * `b2_cold_point_get` — indexed delta chains: point gets through
//!   `ColdReader` over chains of 1/16/64 delta files, sidecar index on
//!   (`indexed`) vs the full-chain-scan baseline (`fullscan`). Indexed
//!   gets must stay near-flat as the chain grows; the baseline prices
//!   every file on every miss.
//! * `b2_snapshot_mode` — snapshot cost vs state size: 64 dirty keys
//!   over stores of 1k/16k keys, full vs incremental. Incremental cost
//!   must track the churn (flat across state sizes), full must track
//!   the store.
//! * `b2_snapshot_mode_recovery` — cold-open cost of the two snapshot
//!   disciplines (one base vs base + delta chain).
//!
//! The criterion shim reports min/median/p95 over repeated samples and
//! records every group to `results/bench_<group>.json` — cite the
//! medians.

use criterion::{criterion_group, BenchmarkId, Criterion};
use om_bench::{make_checkpoint_store, BACKENDS, CHECKPOINT_STORES};
use om_common::config::{GroupCommitPolicy, SnapshotMode};
use om_dataflow::StateDelta;
use om_storage::{
    make_backend, ColdReader, ColdReaderOptions, FileBackend, FileBackendOptions, StateBackend,
    WriteOp,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// `OM_BENCH_SMOKE=1` shrinks the sweep to the CI guard slice: only the
/// contended group-commit cells, fewer samples.
fn smoke() -> bool {
    std::env::var("OM_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn commit_ops(round: u64) -> Vec<WriteOp> {
    (0..16u64)
        .map(|k| WriteOp {
            key: format!("b2/key/{k}").into_bytes(),
            value: Some(round.to_le_bytes().to_vec()),
        })
        .collect()
}

fn bench_commit_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("b2_commit_latency");
    group.sample_size(20);
    for backend_kind in BACKENDS {
        let backend = make_backend(backend_kind, 16);
        let round = AtomicU64::new(0);
        group.bench_with_input(
            BenchmarkId::from_parameter(backend_kind.label()),
            &backend_kind,
            |b, _| {
                b.iter_with_setup(
                    || commit_ops(round.fetch_add(1, Ordering::Relaxed)),
                    |ops| backend.commit_ops(&ops).expect("sequential commits"),
                );
            },
        );
    }
    group.finish();
}

/// Commits `epochs` checkpoint epochs (32 dirty keys each) through the
/// given store, mimicking what the dataflow runtime persists.
fn populate_checkpoints(store: &dyn om_dataflow::CheckpointStore, epochs: u64) {
    for epoch in 1..=epochs {
        let dirty: Vec<StateDelta> = (0..32u64)
            .map(|k| StateDelta::put(
                (k % 4) as usize,
                "counter",
                k,
                epoch.to_le_bytes().to_vec(),
            ))
            .collect();
        store
            .commit_epoch(epoch, &[epoch, epoch, epoch, epoch], dirty)
            .expect("checkpoint commit");
    }
}

fn bench_checkpoint_restart(c: &mut Criterion) {
    let mut group = c.benchmark_group("b2_checkpoint_restart");
    group.sample_size(15);
    const EPOCHS: u64 = 64;
    for (label, kind) in CHECKPOINT_STORES {
        let store = match make_checkpoint_store(kind) {
            Some(store) => store,
            None => std::sync::Arc::new(om_dataflow::InMemoryCheckpointStore::new()),
        };
        populate_checkpoints(store.as_ref(), EPOCHS);
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter_with_setup(
                || (),
                |()| {
                    let snap = store.load().expect("load").expect("committed");
                    assert_eq!(snap.epoch, EPOCHS);
                    snap.states.len()
                },
            );
        });
    }
    group.finish();
}

fn scratch_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "om-b2-bench-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Bulk-loads `keys` distinct keys (64-byte values) in 512-key batches.
fn populate_state(backend: &FileBackend, keys: u64) {
    let mut batch: Vec<WriteOp> = Vec::with_capacity(512);
    for k in 0..keys {
        batch.push(WriteOp {
            key: format!("state/{k:010}").into_bytes(),
            value: Some(vec![7u8; 64]),
        });
        if batch.len() == 512 {
            backend.commit_ops(&batch).unwrap();
            batch.clear();
        }
    }
    if !batch.is_empty() {
        backend.commit_ops(&batch).unwrap();
    }
}

/// Cold recovery as a state-size axis: the 1× reference state is 2k
/// keys; the sweep opens 10×/100× directories (snapshot base + one
/// delta + a WAL tail, so every recovery phase runs) with serial vs
/// parallel snapshot-section loading.
fn bench_cold_recovery(c: &mut Criterion) {
    const BASE_KEYS: u64 = 2_000; // the 1x reference state
    let mut group = c.benchmark_group("b2_cold_recovery");
    group.sample_size(if smoke() { 5 } else { 10 });
    group.measurement_time(Duration::from_millis(if smoke() { 300 } else { 1_000 }));
    let scales: &[u64] = if smoke() { &[10] } else { &[10, 100] };
    for &scale in scales {
        let keys = BASE_KEYS * scale;
        let dir = scratch_dir();
        let write_opts = FileBackendOptions {
            shards: 8,
            snapshot_every: 0, // snapshots forced below
            compact_max_deltas: u64::MAX,
            compact_ratio_pct: u64::MAX,
            ..FileBackendOptions::default()
        };
        {
            let backend = FileBackend::open(&dir, write_opts).unwrap();
            populate_state(&backend, keys);
            backend.snapshot_now().unwrap(); // v2 base, 8 sections
            for round in 0..(keys / 20).min(2_048) {
                backend.put(format!("state/{round:010}").as_bytes(), &round.to_le_bytes());
            }
            backend.snapshot_now().unwrap(); // delta on top
            for round in 0..256u64 {
                backend.commit_ops(&commit_ops(round)).unwrap(); // WAL tail
            }
        }
        for (label, threads) in [("serial", 1usize), ("parallel", 4)] {
            let opts = FileBackendOptions {
                recovery_threads: threads,
                ..write_opts
            };
            group.bench_function(format!("scale{scale}_{label}"), |b| {
                b.iter_with_setup(
                    || (),
                    |()| {
                        let reborn = FileBackend::open(&dir, opts).unwrap();
                        assert_eq!(reborn.len() as u64, keys + 16);
                        reborn.len()
                    },
                );
            });
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// Indexed delta chains: cold point gets over a 1/16/64-file delta
/// chain, with the sidecar index on vs the full-chain-scan baseline.
/// The get mix is 3/4 churned keys (land in some delta), 1/8 base-only
/// keys and 1/8 misses — misses are where un-indexed chains pay the
/// whole file list.
fn bench_cold_point_get(c: &mut Criterion) {
    const KEYS: u64 = 4_000;
    const CHURN_PER_DELTA: u64 = 512;
    let mut group = c.benchmark_group("b2_cold_point_get");
    group.sample_size(if smoke() { 5 } else { 10 });
    group.measurement_time(Duration::from_millis(if smoke() { 300 } else { 1_000 }));
    let chains: &[u64] = if smoke() { &[1, 64] } else { &[1, 16, 64] };
    for &chain in chains {
        let dir = scratch_dir();
        {
            let opts = FileBackendOptions {
                shards: 8,
                snapshot_every: 0,
                compact_max_deltas: u64::MAX, // keep the whole chain
                compact_ratio_pct: u64::MAX,
                ..FileBackendOptions::default()
            };
            let backend = FileBackend::open(&dir, opts).unwrap();
            populate_state(&backend, KEYS);
            backend.snapshot_now().unwrap(); // base
            for d in 0..chain {
                for i in 0..CHURN_PER_DELTA {
                    // Each delta rewrites a distinct slice of the key
                    // space (wrapping), so chains carry real churn.
                    let k = (d * CHURN_PER_DELTA + i) % (KEYS / 2);
                    backend.put(format!("state/{k:010}").as_bytes(), &d.to_le_bytes());
                }
                backend.snapshot_now().unwrap(); // one more delta file
            }
        }
        for (label, use_index) in [("indexed", true), ("fullscan", false)] {
            let reader = ColdReader::open_with(&dir, ColdReaderOptions { use_index }).unwrap();
            assert_eq!(reader.chain_len() as u64, chain + 1);
            let round = AtomicU64::new(0);
            group.bench_function(format!("chain{chain}_{label}"), |b| {
                b.iter(|| {
                    let r = round.fetch_add(1, Ordering::Relaxed);
                    let mut found = 0u64;
                    for i in 0..64u64 {
                        let key = match i % 8 {
                            // Churned keys: present in some delta.
                            0..=5 => format!("state/{:010}", (r * 64 + i * 37) % (KEYS / 2)),
                            // Base-only keys: every delta must be skipped
                            // (index) or scanned (baseline).
                            6 => format!("state/{:010}", KEYS / 2 + (r * 64 + i) % (KEYS / 2)),
                            // Misses: the worst case for un-indexed chains.
                            _ => format!("zzz/{:010}", r * 64 + i),
                        };
                        if reader.get(key.as_bytes()).unwrap().is_some() {
                            found += 1;
                        }
                    }
                    assert!(found >= 48, "present keys must resolve");
                    found
                });
            });
            drop(reader);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// The tentpole measurement: concurrent committers under `sync_commits`
/// with and without the group-commit barrier. One iteration = `writers`
/// threads × 32 commits each, so the barrier-off cell pays
/// `writers * 32` serialized fsyncs and the barrier-on cell pays one per
/// cohort.
fn bench_group_commit(c: &mut Criterion) {
    const COMMITS_PER_WRITER: u64 = 32;
    let mut group = c.benchmark_group("b2_group_commit");
    group.sample_size(if smoke() { 7 } else { 12 });
    group.measurement_time(Duration::from_millis(if smoke() { 400 } else { 1_500 }));
    let writer_counts: &[usize] = if smoke() { &[1, 16] } else { &[1, 4, 16] };
    // The policy axis: no barrier, fixed windows (0 = flush as soon as
    // the leader drains, 50/200µs = park hoping for company), and the
    // adaptive controller that sizes its wait from observed cohorts.
    let policies: &[(&str, GroupCommitPolicy)] = if smoke() {
        &[
            ("group_on", GroupCommitPolicy::Fixed(0)),
            ("group_off", GroupCommitPolicy::Off),
            ("adaptive", GroupCommitPolicy::adaptive_default()),
        ]
    } else {
        &[
            ("group_on", GroupCommitPolicy::Fixed(0)),
            ("group_off", GroupCommitPolicy::Off),
            ("fixed50", GroupCommitPolicy::Fixed(50)),
            ("fixed200", GroupCommitPolicy::Fixed(200)),
            ("adaptive", GroupCommitPolicy::adaptive_default()),
        ]
    };
    for &writers in writer_counts {
        for &(label, policy) in policies {
            let opts = FileBackendOptions {
                shards: 16,
                sync_commits: true,
                group_commit: policy,
                ..FileBackendOptions::default()
            };
            let backend =
                std::sync::Arc::new(FileBackend::scratch_with(opts).expect("scratch backend"));
            let round = AtomicU64::new(0);
            group.bench_function(format!("w{writers}_{label}"), |b| {
                b.iter(|| {
                    let r = round.fetch_add(1, Ordering::Relaxed);
                    std::thread::scope(|scope| {
                        for w in 0..writers {
                            let backend = backend.clone();
                            scope.spawn(move || {
                                for i in 0..COMMITS_PER_WRITER {
                                    let ops = [WriteOp {
                                        key: format!("w{w}/k{i}").into_bytes(),
                                        value: Some(r.to_le_bytes().to_vec()),
                                    }];
                                    backend.commit_ops(&ops).expect("grouped commit");
                                }
                            });
                        }
                    });
                });
            });
        }
    }
    group.finish();
}

/// Snapshot cost vs state size at fixed churn: every iteration dirties
/// 64 keys and forces a snapshot. Incremental snapshots must price the
/// churn (flat across store sizes); full snapshots price the store.
fn bench_snapshot_mode(c: &mut Criterion) {
    const CHURN: u64 = 64;
    let mut group = c.benchmark_group("b2_snapshot_mode");
    group.sample_size(10);
    for state_keys in [1_000u64, 16_000] {
        for (label, mode) in [
            ("full", SnapshotMode::Full),
            ("incremental", SnapshotMode::Incremental),
        ] {
            let opts = FileBackendOptions {
                shards: 16,
                snapshot_every: 0, // snapshots forced by the bench only
                snapshot_mode: mode,
                // Never compact here: measure the pure delta path.
                compact_max_deltas: u64::MAX,
                compact_ratio_pct: u64::MAX,
                ..FileBackendOptions::default()
            };
            let backend = FileBackend::scratch_with(opts).expect("scratch backend");
            for k in 0..state_keys {
                backend.put(format!("state/{k:08}").as_bytes(), &[7u8; 64]);
            }
            // Seed the chain with a base so incremental iterations
            // measure deltas, not the first base write.
            backend.snapshot_now().expect("seed snapshot");
            let round = AtomicU64::new(0);
            group.bench_function(format!("{label}_{state_keys}_keys"), |b| {
                b.iter(|| {
                    let r = round.fetch_add(1, Ordering::Relaxed);
                    for k in 0..CHURN {
                        backend.put(format!("state/{k:08}").as_bytes(), &r.to_le_bytes());
                    }
                    backend.snapshot_now().expect("forced snapshot");
                });
            });
        }
    }
    group.finish();
}

/// Cold-open cost of the two snapshot disciplines over the same
/// history: a lone full base vs a base plus a delta chain.
fn bench_snapshot_mode_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("b2_snapshot_mode_recovery");
    group.sample_size(10);
    for (label, mode) in [
        ("full", SnapshotMode::Full),
        ("incremental", SnapshotMode::Incremental),
    ] {
        let dir = scratch_dir();
        {
            let opts = FileBackendOptions {
                shards: 16,
                snapshot_every: 0,
                snapshot_mode: mode,
                compact_max_deltas: u64::MAX,
                compact_ratio_pct: u64::MAX,
                ..FileBackendOptions::default()
            };
            let backend = FileBackend::open(&dir, opts).expect("open");
            for k in 0..2_048u64 {
                backend.put(format!("state/{k:08}").as_bytes(), &[3u8; 64]);
            }
            backend.snapshot_now().expect("base");
            for round in 0..8u64 {
                for k in 0..64u64 {
                    backend.put(format!("state/{k:08}").as_bytes(), &round.to_le_bytes());
                }
                backend.snapshot_now().expect("delta or base");
            }
        }
        let opts = FileBackendOptions {
            snapshot_mode: mode,
            ..FileBackendOptions::default()
        };
        group.bench_function(label, |b| {
            b.iter_with_setup(
                || (),
                |()| {
                    let reborn = FileBackend::open(&dir, opts).expect("cold open");
                    assert_eq!(reborn.len(), 2_048);
                    reborn.len()
                },
            );
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(
    b2,
    bench_commit_latency,
    bench_checkpoint_restart,
    bench_cold_recovery,
    bench_cold_point_get,
    bench_group_commit,
    bench_snapshot_mode,
    bench_snapshot_mode_recovery
);
criterion_group!(b2_smoke, bench_group_commit, bench_cold_recovery, bench_cold_point_get);

fn main() {
    if smoke() {
        // CI guard slice: the group-commit policy cells plus the
        // recovery/point-get cells the multi-check floor gates on.
        b2_smoke();
    } else {
        b2();
    }
}
