//! B1 — the **platform × backend matrix** over the checkout workload.
//!
//! Sweeps every binding with a pluggable storage layer (eventual,
//! transactional, customized) over both `StateBackend` disciplines,
//! timing a fixed checkout-only operation batch per cell. This is the
//! experiment the unified storage layer unlocks: the same platform code
//! measured against storage it was not written for.
//!
//! The criterion shim reports first-order mean ns/iter with no
//! statistics — treat single runs as smoke numbers and cite repeated
//! runs (`cargo bench --bench b1_backend_matrix` several times) for any
//! perf claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use om_bench::{make_platform, quick_config, BACKENDS};
use om_common::config::{RunConfig, WorkloadMix};
use om_driver::run_benchmark;
use om_marketplace::api::PlatformKind;
use om_marketplace::PlatformSpec;

/// The bindings that persist state through the pluggable backend (the
/// dataflow binding's state is runtime-native, so its cell would not
/// exercise the matrix axis).
const BACKED_PLATFORMS: [PlatformKind; 3] = [
    PlatformKind::Eventual,
    PlatformKind::Transactional,
    PlatformKind::Customized,
];

fn checkout_config(backend: om_common::config::BackendKind) -> RunConfig {
    RunConfig {
        mix: WorkloadMix::checkout_only(),
        backend,
        ..quick_config()
    }
}

fn bench_backend_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("b1_backend_matrix");
    group.sample_size(10);
    for kind in BACKED_PLATFORMS {
        for backend in BACKENDS {
            // Same cell-id scheme as RunReport::cell_label().
            let cell = PlatformSpec::new(kind, backend).label();
            group.bench_with_input(
                BenchmarkId::from_parameter(cell),
                &(kind, backend),
                |b, &(kind, backend)| {
                    b.iter_with_setup(
                        || {
                            let config = checkout_config(backend);
                            let platform = make_platform(
                                kind,
                                backend,
                                4,
                                config.payment_decline_rate,
                                false,
                            );
                            (platform, config)
                        },
                        |(platform, config)| {
                            let report = run_benchmark(platform.as_ref(), &config, true);
                            assert!(report.operations > 0);
                            assert_eq!(report.backend, config.backend.label());
                            report
                        },
                    );
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_backend_matrix);
criterion_main!(benches);
