//! Experiment driver regenerating every table/figure of the paper's
//! evaluation (§III) plus the ablations called out in DESIGN.md §4.
//!
//! ```text
//! cargo run --release -p om-bench --bin experiments -- all
//! cargo run --release -p om-bench --bin experiments -- e1 e4
//! cargo run --release -p om-bench --bin experiments -- --scale 2 e2
//! ```
//!
//! Output: human-readable tables on stdout (the rows EXPERIMENTS.md
//! records) and JSON blobs under `results/`.

use om_bench::{factor, make_platform, run_platform, standard_config, PLATFORMS};
use om_common::config::{RunConfig, WorkloadMix};
use om_driver::{run_benchmark, RunReport};
use om_marketplace::api::PlatformKind;
use std::collections::BTreeMap;

fn save_json(name: &str, reports: &[RunReport]) {
    let _ = std::fs::create_dir_all("results");
    let path = format!("results/{name}.json");
    let body = serde_json::to_string_pretty(reports).expect("serializable");
    if std::fs::write(&path, body).is_ok() {
        println!("  [saved {path}]");
    }
}

fn banner(name: &str, caption: &str) {
    println!("\n=== {name}: {caption} ===");
}

/// E1 — headline throughput comparison across the four implementations.
fn e1(config: &RunConfig) -> Vec<RunReport> {
    banner("E1", "throughput of the four implementations (paper §III)");
    let mut reports = Vec::new();
    for kind in PLATFORMS {
        let report = run_platform(kind, config, 4, kind_is_faulty(kind));
        println!("  {}", report.throughput_row());
        reports.push(report);
    }
    let tput: BTreeMap<&str, f64> = reports
        .iter()
        .map(|r| (r.platform.as_str(), r.throughput_per_sec))
        .collect();
    println!(
        "  factors: eventual/transactions = {:.2}x, statefun/transactions = {:.2}x, customized/transactions = {:.2}x",
        factor(tput["orleans_eventual"], tput["orleans_transactions"]),
        factor(tput["statefun"], tput["orleans_transactions"]),
        factor(tput["customized_orleans"], tput["orleans_transactions"]),
    );
    save_json("e1_throughput", &reports);
    reports
}

fn kind_is_faulty(kind: PlatformKind) -> bool {
    // Raw actor messaging is at-most-once: the two plain Orleans bindings
    // run with the lossy event channel; see om_bench::make_platform.
    matches!(kind, PlatformKind::Eventual | PlatformKind::Transactional)
}

/// E2 — scalability: throughput vs parallelism (figure series).
fn e2(config: &RunConfig) {
    banner("E2", "throughput vs parallelism 1..8 (scalability figure)");
    let mut reports = Vec::new();
    println!(
        "  {:<22} {:>8} {:>8} {:>8} {:>8}",
        "platform", "p=1", "p=2", "p=4", "p=8"
    );
    for kind in PLATFORMS {
        let mut row = format!("  {:<22}", kind.label());
        for p in [1usize, 2, 4, 8] {
            let mut cfg = config.clone();
            cfg.workers = p;
            let report = run_platform(kind, &cfg, p, kind_is_faulty(kind));
            row.push_str(&format!(" {:>8.0}", report.throughput_per_sec));
            reports.push(report);
        }
        println!("{row}");
    }
    save_json("e2_scalability", &reports);
}

/// E3 — latency percentiles per transaction type per implementation.
fn e3(config: &RunConfig) {
    banner("E3", "latency percentiles per transaction type");
    let mut reports = Vec::new();
    for kind in PLATFORMS {
        let report = run_platform(kind, config, 4, kind_is_faulty(kind));
        println!("  -- {}", report.platform);
        for line in report.latency_table().lines() {
            println!("     {line}");
        }
        reports.push(report);
    }
    save_json("e3_latency", &reports);
}

/// E4 — the criteria compliance matrix ("no single platform supports all
/// core data management requirements" — except the customized stack).
fn e4(config: &RunConfig) {
    banner("E4", "data-management criteria compliance matrix");
    let mut cfg = config.clone();
    cfg.mix = WorkloadMix::anomaly_hunting();
    let mut reports = Vec::new();
    for kind in PLATFORMS {
        let report = run_platform(kind, &cfg, 4, kind_is_faulty(kind));
        println!("  {}", report.criteria_row());
        reports.push(report);
    }
    let all_ok = reports
        .iter()
        .filter(|r| r.criteria.all_satisfied())
        .map(|r| r.platform.clone())
        .collect::<Vec<_>>();
    println!("  platforms satisfying ALL criteria: {all_ok:?}");
    save_json("e4_criteria", &reports);
}

/// E5/E6/E7 — the pairwise factors the paper quotes, measured head to
/// head with a checkout-only mix (the business transaction under study).
fn e567(config: &RunConfig) {
    banner(
        "E5/E6/E7",
        "pairwise overhead factors (checkout-only mix)",
    );
    let mut cfg = config.clone();
    cfg.mix = WorkloadMix::checkout_only();
    let mut tput = BTreeMap::new();
    let mut reports = Vec::new();
    for kind in PLATFORMS {
        let report = run_platform(kind, &cfg, 4, kind_is_faulty(kind));
        println!("  {}", report.throughput_row());
        tput.insert(report.platform.clone(), report.throughput_per_sec);
        reports.push(report);
    }
    println!(
        "  E5 transactions overhead: eventual is {:.2}x the throughput of transactions (paper: 'considerable overhead')",
        factor(tput["orleans_eventual"], tput["orleans_transactions"]),
    );
    println!(
        "  E6 statefun factor: statefun is {:.2}x transactions (paper: 'outperforms Orleans Transactions by 2 times')",
        factor(tput["statefun"], tput["orleans_transactions"]),
    );
    println!(
        "  E7 customized overhead: customized is {:.2}x transactions (paper: 'low overhead, comparable')",
        factor(tput["customized_orleans"], tput["orleans_transactions"]),
    );
    save_json("e567_factors", &reports);
}

/// A1 — ablation: eventual vs causal replication cost in om-kv.
fn a1() {
    banner("A1", "om-kv replication mode ablation (price-update storm)");
    use om_common::config::ReplicationMode;
    use om_kv::{ReplicatedKv, Session};
    for mode in [ReplicationMode::Eventual, ReplicationMode::Causal] {
        let kv: ReplicatedKv<u64, u64> = ReplicatedKv::new(mode, 16, 16, 7);
        let started = std::time::Instant::now();
        let mut session = Session::new();
        const WRITES: u64 = 200_000;
        for i in 0..WRITES {
            kv.put(&mut session, i % 1000, i);
        }
        kv.quiesce();
        let secs = started.elapsed().as_secs_f64();
        println!(
            "  {:?}: {:.0} writes/s, inversions={}, buffered={}, stale_drops={}",
            mode,
            WRITES as f64 / secs,
            kv.stats().causal_inversions(),
            kv.stats().buffered(),
            kv.stats().stale_drops(),
        );
    }
}

/// A2 — ablation: dataflow checkpoint interval vs throughput.
fn a2(config: &RunConfig) {
    banner("A2", "statefun checkpoint-interval (max_batch) ablation");
    use om_marketplace::bindings::dataflow::{DataflowPlatform, DataflowPlatformConfig};
    let mut cfg = config.clone();
    cfg.mix = WorkloadMix::checkout_only();
    for max_batch in [8usize, 64, 512] {
        let platform = DataflowPlatform::new(DataflowPlatformConfig {
            partitions: 4,
            max_batch,
            decline_rate: cfg.payment_decline_rate,
            ..Default::default()
        });
        let report = run_benchmark(&platform, &cfg, true);
        println!(
            "  max_batch={max_batch:>4}: {:>8.0} ops/s, p99 checkout = {}us, epochs={}",
            report.throughput_per_sec,
            report
                .latency_of(om_common::config::TransactionKind::Checkout)
                .map(|l| l.p99_us)
                .unwrap_or(0),
            report.counters.get("df.epochs").copied().unwrap_or(0),
        );
    }
    // Second axis: in-memory vs backend-backed checkpoint stores at the
    // default interval — the cost of durable (restartable) checkpoints.
    println!("  -- checkpoint store (max_batch=64) --");
    for (label, kind) in om_bench::CHECKPOINT_STORES {
        let platform = DataflowPlatform::new(DataflowPlatformConfig {
            partitions: 4,
            max_batch: 64,
            decline_rate: cfg.payment_decline_rate,
            checkpoint_store: om_bench::make_checkpoint_store(kind),
            ..Default::default()
        });
        let report = run_benchmark(&platform, &cfg, true);
        println!(
            "  store={label:<18}: {:>8.0} ops/s, checkpoint_commits={}",
            report.throughput_per_sec,
            report
                .counters
                .get("df.checkpoint_commits")
                .copied()
                .unwrap_or(0),
        );
    }
}

/// A6 — recovery cells of the platform×backend matrix: run each dataflow
/// cell with the post-run crash drill armed and report restart cost.
fn a6(config: &RunConfig) {
    banner("A6", "crash-recovery cells (durable checkpoint restart per backend)");
    let mut reports = Vec::new();
    for backend in om_common::config::BackendKind::ALL {
        let mut cfg = config.clone();
        cfg.backend = backend;
        cfg.recovery_drill = true;
        let report = om_driver::run_matrix_cell(PlatformKind::Dataflow, &cfg);
        println!("  {}", report.recovery_row());
        reports.push(report);
    }
    save_json("a6_recovery", &reports);
}

/// A3 — ablation: lock contention (hot vs uniform keys) on the
/// transactional binding.
fn a3(config: &RunConfig) {
    banner("A3", "wait-die contention ablation (hot vs uniform products)");
    for (label, theta, products_per_seller) in
        [("hot (zipf 0.99, tiny catalogue)", 0.99, 2u64), ("uniform (large catalogue)", 0.0, 10)]
    {
        let mut cfg = config.clone();
        cfg.mix = WorkloadMix::checkout_only();
        cfg.zipf_theta = theta;
        cfg.scale.products_per_seller = products_per_seller;
        let platform =
            make_platform(PlatformKind::Transactional, cfg.backend, 4, cfg.payment_decline_rate, false);
        let report = run_benchmark(platform.as_ref(), &cfg, true);
        println!(
            "  {label:<32} {:>8.0} ops/s, tx_restarts={}, lock_waits={}",
            report.throughput_per_sec,
            report.counters.get("tx_restarts").copied().unwrap_or(0),
            report.counters.get("lock_waits").copied().unwrap_or(0),
        );
    }
}

/// A4 — ablation: MVCC garbage collection under an update-heavy load.
///
/// The customized stack's dashboard reads scan MVCC version chains; this
/// quantifies how chain growth degrades scans and what GC buys back.
fn a4() {
    banner("A4", "MVCC version-chain GC ablation (update-heavy table)");
    use om_mvcc::{IsolationLevel, TxManager};
    const KEYS: u64 = 1_000;
    const ROUNDS: usize = 50;
    for gc_every in [0usize, 10, 1] {
        let mgr = TxManager::new();
        let table = mgr.create_table::<u64, u64>("orders");
        {
            let tx = mgr.begin(IsolationLevel::Snapshot);
            for k in 0..KEYS {
                table.put(&tx, k, 0);
            }
            mgr.commit(tx).unwrap();
        }
        let started = std::time::Instant::now();
        let mut scan_us_total = 0u128;
        for round in 0..ROUNDS {
            let tx = mgr.begin(IsolationLevel::Snapshot);
            for k in 0..KEYS {
                table.put(&tx, k, round as u64);
            }
            mgr.commit(tx).unwrap();
            let scan_started = std::time::Instant::now();
            let tx = mgr.begin(IsolationLevel::Snapshot);
            let n = table.count(&tx);
            mgr.abort(tx);
            assert_eq!(n, KEYS as usize);
            scan_us_total += scan_started.elapsed().as_micros();
            if gc_every > 0 && (round + 1) % gc_every == 0 {
                mgr.gc();
            }
        }
        let label = match gc_every {
            0 => "gc: never".to_string(),
            1 => "gc: every commit round".to_string(),
            n => format!("gc: every {n} rounds"),
        };
        println!(
            "  {label:<24} total={:.0}ms avg_scan={}us final_versions={}",
            started.elapsed().as_secs_f64() * 1e3,
            scan_us_total / ROUNDS as u128,
            table.total_versions(),
        );
    }
}

/// A5 — ablation: what the HTTP front tier (paper Fig. 1) adds on top of
/// direct platform calls.
fn a5() {
    banner("A5", "HTTP layer overhead (direct call vs parse+route+dispatch)");
    use bytes::BytesMut;
    use om_http::gateway::MarketplaceGateway;
    use om_http::request::{parse_request, ParserConfig};
    use om_marketplace::api::MarketplacePlatform;
    use om_common::ids::SellerId;
    use std::sync::Arc;

    let platform = make_platform(PlatformKind::Eventual, om_common::config::BackendKind::Eventual, 4, 0.0, false);
    let platform: Arc<dyn MarketplacePlatform> = Arc::from(platform);
    // Minimal catalogue so dashboards have something to aggregate.
    platform
        .ingest_seller(om_common::entity::Seller::new(
            SellerId(1),
            "s".into(),
            "cph".into(),
        ))
        .unwrap();
    let gateway = MarketplaceGateway::new(platform.clone());
    const OPS: usize = 50_000;

    let started = std::time::Instant::now();
    for _ in 0..OPS {
        platform.seller_dashboard(SellerId(1)).unwrap();
    }
    let direct = started.elapsed();

    let wire = b"GET /sellers/1/dashboard HTTP/1.1\r\nhost: om\r\n\r\n";
    let cfg = ParserConfig::default();
    let started = std::time::Instant::now();
    for _ in 0..OPS {
        let mut buf = BytesMut::from(&wire[..]);
        let req = parse_request(&mut buf, &cfg).unwrap().unwrap();
        let resp = gateway.handle(&req);
        assert_eq!(resp.status, 200);
    }
    let gatewayed = started.elapsed();

    let direct_us = direct.as_secs_f64() * 1e6 / OPS as f64;
    let gw_us = gatewayed.as_secs_f64() * 1e6 / OPS as f64;
    println!("  direct platform call:      {direct_us:>8.2} us/op");
    println!("  via parse+route+dispatch:  {gw_us:>8.2} us/op");
    println!(
        "  HTTP layer adds {:.2} us/op ({:.1}% overhead) — the 'low overhead' front of Fig. 1",
        gw_us - direct_us,
        (gw_us / direct_us - 1.0) * 100.0
    );
}

/// A5b — the same comparison end to end: the benchmark driver submitting
/// the full workload either directly to the customized platform or
/// through its complete Fig. 1 stack (driver → wire → parser → router →
/// gateway → platform).
fn a5_full_stack(config: &RunConfig) {
    banner("A5b", "full-stack throughput: customized direct vs behind HTTP");
    use om_http::HttpPlatform;
    use std::sync::Arc;

    let direct = run_platform(PlatformKind::Customized, config, 4, false);
    println!("  {}", direct.throughput_row());

    let inner = make_platform(
        PlatformKind::Customized,
        config.backend,
        4,
        config.payment_decline_rate,
        false,
    );
    let fronted = HttpPlatform::front(Arc::from(inner), 2);
    let mut report = run_benchmark(&fronted, config, true);
    report.platform = "customized_behind_http".into();
    println!("  {}", report.throughput_row());
    println!(
        "  full-stack factor: {:.2}x direct (HTTP front should cost little)",
        factor(report.throughput_per_sec, direct.throughput_per_sec)
    );
    save_json("a5_full_stack", &[direct, report]);
}

/// A7 — adversarial traffic: every named scenario closed-loop across
/// the four platforms, the open-loop flash-sale SLO sweep (offered-rate
/// ladder, saturation point, queueing collapse vs the closed-loop view
/// of the same cell), and the chaos drill fired mid-flash-sale.
fn a7(config: &RunConfig) {
    use om_common::config::{BackendKind, OpenLoopConfig, ScenarioConfig, ScenarioKind};

    banner("A7", "adversarial scenarios, open-loop SLO sweep, chaos under load");
    let scenario_base = |scenario: ScenarioKind| RunConfig {
        backend: BackendKind::SnapshotIsolation,
        // No deletes: the hot product must survive the whole storm.
        mix: WorkloadMix {
            product_delete: 0,
            ..config.mix
        },
        scenario: Some(ScenarioConfig::named(scenario)),
        ..config.clone()
    };

    // Closed-loop scenario × platform table.
    let mut reports = Vec::new();
    println!(
        "  {:<22} {:>16} {:>10} {:>12} {:>12}",
        "platform", "scenario", "ops/s", "checkout p99", "conservation"
    );
    for kind in PLATFORMS {
        for scenario in ScenarioKind::ALL {
            let cfg = scenario_base(scenario);
            let report = run_platform(kind, &cfg, 4, kind_is_faulty(kind));
            println!(
                "  {:<22} {:>16} {:>10.0} {:>10}us {:>12}",
                report.platform,
                scenario.label(),
                report.throughput_per_sec,
                report
                    .latency
                    .get("checkout")
                    .map(|l| l.p99_us)
                    .unwrap_or(0),
                report.criteria.conservation_violations,
            );
            reports.push(report);
        }
    }

    // Open-loop SLO sweep on the transactional flash-sale cell: offer
    // fractions of the measured closed-loop capacity on a deterministic
    // schedule. The closed-loop row above reports a healthy p99 at ANY
    // load (it throttles itself); the open-loop rows expose where the
    // cell actually saturates and how the tail collapses past it.
    let calib = run_platform(PlatformKind::Transactional, &scenario_base(ScenarioKind::FlashSale), 4, false);
    let capacity = calib.throughput_per_sec.max(500.0);
    println!("  -- open-loop flash-sale sweep (closed-loop capacity {capacity:.0}/s) --");
    let mut rows = Vec::new();
    for fraction in [0.25, 0.5, 1.0, 1.5, 2.0] {
        let rate = capacity * fraction;
        let cfg = RunConfig {
            open_loop: Some(OpenLoopConfig::at_rate(rate, ((rate * 2.0) as u64).max(200))),
            ..scenario_base(ScenarioKind::FlashSale)
        };
        let report = run_platform(PlatformKind::Transactional, &cfg, 4, false);
        println!("  x{fraction:<4} {}", report.slo_row());
        if let Some(slo) = report.slo.clone() {
            rows.push(slo);
        }
        reports.push(report);
    }
    match om_driver::saturation_point(&rows, 0.9) {
        Some(sat) => println!("  saturation point (>=90% achieved): {sat:.0}/s"),
        None => println!("  saturation point: below the lowest offered rate"),
    }

    // Chaos under load: the recovery drill fired mid-flash-sale on the
    // durable dataflow cell.
    let chaos_cfg = RunConfig {
        backend: BackendKind::FileDurable,
        chaos_drill: true,
        ..scenario_base(ScenarioKind::FlashSale)
    };
    let report = om_driver::run_matrix_cell(PlatformKind::Dataflow, &chaos_cfg);
    println!("  -- chaos drill mid-flash-sale --");
    println!("  {}", report.recovery_row());
    println!(
        "  audit: conservation={} atomicity={} ordering={}",
        report.criteria.conservation_violations,
        report.criteria.atomicity_violations,
        report.criteria.ordering_violations,
    );
    reports.push(report);
    save_json("a7_scenarios", &reports);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale_factor = 1u64;
    let mut ops_per_worker: Option<u64> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale_factor = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--scale <n>");
            }
            "--ops" => {
                i += 1;
                ops_per_worker = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--ops <n>"),
                );
            }
            other => selected.push(other.to_lowercase()),
        }
        i += 1;
    }
    if selected.is_empty() || selected.iter().any(|s| s == "all") {
        selected = ["e1", "e2", "e3", "e4", "e567", "a1", "a2", "a3", "a4", "a5", "a6", "a7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    }
    let mut config = standard_config(scale_factor);
    if let Some(ops) = ops_per_worker {
        config.ops_per_worker = ops;
        config.warmup_ops_per_worker = (ops / 10).max(1);
    }
    println!(
        "Online Marketplace experiments (scale x{scale_factor}: {} sellers, {} products, {} customers)",
        config.scale.sellers,
        config.scale.total_products(),
        config.scale.customers
    );
    for exp in selected {
        match exp.as_str() {
            "e1" => {
                e1(&config);
            }
            "e2" => e2(&config),
            "e3" => e3(&config),
            "e4" => e4(&config),
            "e5" | "e6" | "e7" | "e567" => e567(&config),
            "a1" => a1(),
            "a2" => a2(&config),
            "a3" => a3(&config),
            "a4" => a4(),
            "a5" => {
                a5();
                a5_full_stack(&config);
            }
            "a6" => a6(&config),
            "a7" => a7(&config),
            other => eprintln!("unknown experiment '{other}'"),
        }
    }
}
