//! Scratch profiler for the dataflow checkout path (not part of the
//! experiment suite): times epochs and invocations under a closed loop.

use om_common::entity::{Customer, PaymentMethod, Product, Seller};
use om_common::ids::{CustomerId, ProductId, SellerId};
use om_common::Money;
use om_marketplace::api::{CheckoutItem, CheckoutRequest, MarketplacePlatform};
use om_marketplace::bindings::dataflow::{DataflowPlatform, DataflowPlatformConfig};
use std::time::Instant;

fn fresh_platform() -> DataflowPlatform {
    let p = DataflowPlatform::new(DataflowPlatformConfig {
        partitions: 4,
        max_batch: 64,
        decline_rate: 0.0,
        ..Default::default()
    });
    p.ingest_seller(Seller::new(SellerId(1), "s".into(), "c".into()))
        .unwrap();
    for c in 1..=8u64 {
        p.ingest_customer(Customer::new(CustomerId(c), "c".into(), "a".into()))
            .unwrap();
    }
    for pid in 1..=10u64 {
        p.ingest_product(
            Product {
                id: ProductId(pid),
                seller: SellerId(1),
                name: "w".into(),
                category: "x".into(),
                description: "d".into(),
                price: Money::from_cents(100),
                freight_value: Money::from_cents(1),
                version: 0,
                active: true,
            },
            1_000_000,
        )
        .unwrap();
    }
    p.quiesce();
    p
}

fn main() {
    const N: usize = 500;
    for workers in [1usize, 2, 4] {
        let p = fresh_platform();
        let started = Instant::now();
        std::thread::scope(|s| {
            for w in 0..workers {
                let p = &p;
                s.spawn(move || {
                    for i in 0..N / workers {
                        let customer = CustomerId(1 + ((w * 31 + i) as u64 % 8));
                        let item = CheckoutItem {
                            seller: SellerId(1),
                            product: ProductId(1 + (i as u64 % 10)),
                            quantity: 1,
                        };
                        p.add_to_cart(customer, item.clone()).unwrap();
                        let _ = p
                            .checkout(CheckoutRequest {
                                customer,
                                items: vec![item],
                                method: PaymentMethod::CreditCard,
                            })
                            .unwrap();
                    }
                });
            }
        });
        let secs = started.elapsed().as_secs_f64();
        let counters = p.counters();
        println!(
            "workers={workers}: {:.0} checkouts/s; epochs={} invocations={} pump_epoch_us={}",
            (N - N % workers) as f64 / secs,
            counters.get("df.epochs").copied().unwrap_or(0),
            counters.get("df.invocations").copied().unwrap_or(0),
            counters.get("df.pump_epoch_us").copied().unwrap_or(0)
                + counters.get("df.caller_epoch_us").copied().unwrap_or(0),
        );
    }
}
