//! CI guard over a benchmark cell: compares a freshly-measured median
//! against a checked-in floor file and fails when the cell has
//! regressed beyond the allowed factor. Defaults to the durable-commit
//! cell; pass paths to guard others (the b3 HTTP sweep uses
//! `results/b3_floor.json`).
//!
//! ```text
//! OM_BENCH_SMOKE=1 cargo bench --bench b2_durability   # writes results/bench_b2_group_commit.json
//! cargo run -p om_bench --bin bench_guard              # compares against results/b2_floor.json
//! cargo run -p om_bench --bin bench_guard -- results/bench_b3_gateway.json results/b3_floor.json
//! ```
//!
//! The floor file records the baseline median (shim statistics, see
//! `shims/criterion`) and the tolerated regression factor — coarse on
//! purpose: the guard exists to catch "someone made every durable
//! commit pay its own fsync again", not 5% noise.
//!
//! Besides the legacy top-level fields, a floor file may carry a
//! `checks` array — each entry is one machine-relative gate, optionally
//! against a different results file and optionally **core-aware**
//! (skipped below `min_cores`, for cells like parallel recovery that
//! physically cannot win on a single-core host):
//!
//! ```json
//! { "name": "...", "kind": "ratio_max",   "num_cell": "a", "den_cell": "b",
//!   "limit": 1.3, "results": "results/bench_x.json", "min_cores": 0 }
//! { "name": "...", "kind": "speedup_min", "num_cell": "slow", "den_cell": "fast",
//!   "limit": 2.0, "min_cores": 4 }
//! ```
//!
//! `ratio_max` fails when `num/den > limit`; `speedup_min` fails when
//! `num/den < limit` (num is the cell that should be slower). Two more
//! kinds gate a named scalar from the results file's `metrics` object
//! (written by the b5 open-loop SLO sweep) instead of cell medians:
//!
//! ```json
//! { "name": "...", "kind": "metric_min", "metric": "achieved_ratio_under",
//!   "limit": 0.75, "results": "results/b5_slo.json" }
//! { "name": "...", "kind": "metric_max", "metric": "p99_us_under",
//!   "limit": 100000, "results": "results/b5_slo.json" }
//! ```
//!
//! Usage: `bench_guard [results.json] [floor.json]`.

use serde_json::Value;

fn median_of(results: &Value, id: &str) -> Option<f64> {
    for entry in results["entries"].as_array()? {
        if entry["id"].as_str() == Some(id) {
            return entry["median_ns"].as_f64();
        }
    }
    None
}

fn main() {
    let mut args = std::env::args().skip(1);
    let results_path = args
        .next()
        .unwrap_or_else(|| "results/bench_b2_group_commit.json".into());
    let floor_path = args.next().unwrap_or_else(|| "results/b2_floor.json".into());

    let read = |path: &str| -> Value {
        let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_guard: cannot read {path}: {e}");
            std::process::exit(2);
        });
        serde_json::from_str(&body).unwrap_or_else(|e| {
            eprintln!("bench_guard: cannot parse {path}: {e:?}");
            std::process::exit(2);
        })
    };
    let results = read(&results_path);
    let floor = read(&floor_path);

    let cell = floor["cell"].as_str().unwrap_or("w16_group_on");
    let floor_median = floor["floor_median_ns"].as_f64().unwrap_or_else(|| {
        eprintln!("bench_guard: {floor_path} lacks floor_median_ns");
        std::process::exit(2);
    });
    let factor = floor["max_regression_factor"].as_f64().unwrap_or(3.0);
    let Some(measured) = median_of(&results, cell) else {
        eprintln!("bench_guard: {results_path} holds no entry for cell {cell:?}");
        std::process::exit(2);
    };

    let mut failed = false;
    let limit = floor_median * factor;
    let ratio = measured / floor_median.max(1.0);
    println!(
        "bench_guard: cell={cell} measured_median={measured:.0}ns floor={floor_median:.0}ns \
         ratio={ratio:.2}x (limit {factor:.1}x)"
    );
    if measured > limit {
        eprintln!(
            "bench_guard: FAIL — durable-commit cell regressed {ratio:.2}x over the floor \
             (allowed {factor:.1}x). Did the group-commit path stop amortizing fsyncs?"
        );
        failed = true;
    }

    // Machine-relative check: the on-cell must beat the off-cell from
    // the SAME run by min_speedup_x — robust to host fsync latency,
    // which the absolute floor above is not.
    let min_speedup = floor["min_speedup_x"].as_f64().unwrap_or(0.0);
    let off_cell = cell.replace("_on", "_off");
    if min_speedup > 0.0 && off_cell != cell {
        if let Some(off_median) = median_of(&results, &off_cell) {
            let speedup = off_median / measured.max(1.0);
            println!(
                "bench_guard: speedup {off_cell}/{cell} = {speedup:.2}x (min {min_speedup:.1}x)"
            );
            if speedup < min_speedup {
                eprintln!(
                    "bench_guard: FAIL — group commit only {speedup:.2}x faster than \
                     per-commit sync on this host (floor requires {min_speedup:.1}x)"
                );
                failed = true;
            }
        }
    }

    // Generic machine-relative ratio cap: `ratio_num_cell` must cost at
    // most `max_ratio_x` times `ratio_den_cell` from the SAME run. The
    // b3 floor uses it to bound the event engine's single-connection
    // overhead against the thread-per-connection baseline.
    let max_ratio = floor["max_ratio_x"].as_f64().unwrap_or(0.0);
    if max_ratio > 0.0 {
        let num_cell = floor["ratio_num_cell"].as_str().unwrap_or_default();
        let den_cell = floor["ratio_den_cell"].as_str().unwrap_or_default();
        match (median_of(&results, num_cell), median_of(&results, den_cell)) {
            (Some(num), Some(den)) => {
                let ratio = num / den.max(1.0);
                println!(
                    "bench_guard: ratio {num_cell}/{den_cell} = {ratio:.2}x (max {max_ratio:.1}x)"
                );
                if ratio > max_ratio {
                    eprintln!(
                        "bench_guard: FAIL — {num_cell} costs {ratio:.2}x of {den_cell} \
                         on this host (floor allows {max_ratio:.1}x)"
                    );
                    failed = true;
                }
            }
            _ => {
                eprintln!(
                    "bench_guard: FAIL — floor requests ratio {num_cell}/{den_cell} but \
                     {results_path} lacks one of the cells"
                );
                failed = true;
            }
        }
    }

    // Multi-check schema: independent machine-relative gates, each
    // optionally against its own results file and optionally gated on a
    // minimum core count (cells whose win needs real parallelism).
    if let Some(checks) = floor["checks"].as_array() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        for check in checks {
            let name = check["name"].as_str().unwrap_or("<unnamed>");
            let min_cores = check["min_cores"].as_u64().unwrap_or(0) as usize;
            if cores < min_cores {
                println!(
                    "bench_guard: SKIP {name} — host has {cores} core(s), check needs \
                     {min_cores} (the cell cannot win without real parallelism)"
                );
                continue;
            }
            let own_results;
            let results = match check["results"].as_str() {
                Some(path) => {
                    own_results = read(path);
                    &own_results
                }
                None => &results,
            };
            let kind = check["kind"].as_str().unwrap_or_default();
            let limit = check["limit"].as_f64().unwrap_or(0.0);

            // Metric checks gate a named scalar from the results file's
            // `metrics` object (the SLO harness writes these) instead of
            // a cell-median ratio: `metric_min` fails when the value
            // drops below `limit`, `metric_max` when it exceeds it.
            if kind == "metric_min" || kind == "metric_max" {
                let metric = check["metric"].as_str().unwrap_or_default();
                let Some(value) = results["metrics"][metric].as_f64() else {
                    eprintln!(
                        "bench_guard: FAIL — check {name} needs metric {metric:?}, but \
                         the results lack it"
                    );
                    failed = true;
                    continue;
                };
                let (cmp, ok) = if kind == "metric_min" {
                    ("min", value >= limit)
                } else {
                    ("max", value <= limit)
                };
                println!("bench_guard: check {name}: {metric} = {value:.3} ({cmp} {limit:.3})");
                if !ok {
                    eprintln!(
                        "bench_guard: FAIL — {name}: {metric} = {value:.3} violates the \
                         floor's {cmp} of {limit:.3}"
                    );
                    failed = true;
                }
                continue;
            }

            let num_cell = check["num_cell"].as_str().unwrap_or_default();
            let den_cell = check["den_cell"].as_str().unwrap_or_default();
            let (Some(num), Some(den)) =
                (median_of(results, num_cell), median_of(results, den_cell))
            else {
                eprintln!(
                    "bench_guard: FAIL — check {name} needs cells {num_cell:?} and \
                     {den_cell:?}, but the results lack one of them"
                );
                failed = true;
                continue;
            };
            let ratio = num / den.max(1.0);
            match kind {
                "ratio_max" => {
                    println!(
                        "bench_guard: check {name}: {num_cell}/{den_cell} = {ratio:.2}x \
                         (max {limit:.2}x)"
                    );
                    if ratio > limit {
                        eprintln!(
                            "bench_guard: FAIL — {name}: {num_cell} costs {ratio:.2}x of \
                             {den_cell} (floor allows {limit:.2}x)"
                        );
                        failed = true;
                    }
                }
                "speedup_min" => {
                    println!(
                        "bench_guard: check {name}: {num_cell}/{den_cell} = {ratio:.2}x \
                         speedup (min {limit:.2}x)"
                    );
                    if ratio < limit {
                        eprintln!(
                            "bench_guard: FAIL — {name}: only {ratio:.2}x faster than \
                             {num_cell} (floor requires {limit:.2}x)"
                        );
                        failed = true;
                    }
                }
                other => {
                    eprintln!("bench_guard: FAIL — check {name} has unknown kind {other:?}");
                    failed = true;
                }
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!("bench_guard: OK");
}
