//! Shared harness code for the experiment binaries and Criterion benches.
//!
//! Every table and figure of the paper's evaluation has a regeneration
//! path here; see `EXPERIMENTS.md` for the per-experiment index and
//! `DESIGN.md` §4 for the mapping to modules.

use om_actor::FaultConfig;
use om_common::config::{BackendKind, DurableOptions, RunConfig, ScaleConfig, WorkloadMix};
use om_driver::{run_benchmark, RunReport};
use om_marketplace::api::{MarketplacePlatform, PlatformKind};
use om_marketplace::{build_platform, PlatformSpec};

/// The four platforms in paper order.
pub const PLATFORMS: [PlatformKind; 4] = [
    PlatformKind::Eventual,
    PlatformKind::Transactional,
    PlatformKind::Dataflow,
    PlatformKind::Customized,
];

/// The pluggable storage backends, the matrix's second axis.
pub const BACKENDS: [BackendKind; 3] = BackendKind::ALL;

/// The dataflow checkpoint-store variants of the A2/B2 sweeps: a display
/// label plus the backend kind (`None` = the in-memory baseline store).
pub const CHECKPOINT_STORES: [(&str, Option<BackendKind>); 4] = [
    ("in_memory", None),
    ("eventual_kv", Some(BackendKind::Eventual)),
    ("snapshot_isolation", Some(BackendKind::SnapshotIsolation)),
    ("file_durable", Some(BackendKind::FileDurable)),
];

/// Builds the checkpoint store for one [`CHECKPOINT_STORES`] variant
/// (`None` lets the runtime fall back to its in-memory default).
pub fn make_checkpoint_store(
    kind: Option<BackendKind>,
) -> Option<std::sync::Arc<dyn om_dataflow::CheckpointStore>> {
    kind.map(|kind| -> std::sync::Arc<dyn om_dataflow::CheckpointStore> {
        std::sync::Arc::new(om_dataflow::BackendCheckpointStore::new(
            om_storage::make_backend(kind, 16),
        ))
    })
}

/// Builds a platform with `parallelism` internal execution slots over the
/// selected storage backend.
///
/// Actor bindings split slots across two silos (Orleans-style multi-host);
/// the dataflow binding maps slots to partitions. `faulty` arms the
/// at-most-once event semantics of raw actor messaging (drop 2%,
/// duplicate 1%) — only meaningful for the two plain actor bindings; the
/// customized stack routes its replication through the causal KV and its
/// workflow through calls, and the dataflow runtime is exactly-once by
/// construction.
pub fn make_platform(
    kind: PlatformKind,
    backend: BackendKind,
    parallelism: usize,
    decline_rate: f64,
    faulty: bool,
) -> Box<dyn MarketplacePlatform> {
    let faults = if faulty {
        FaultConfig::lossy(0.02, 0.01, 0xFA17)
    } else {
        FaultConfig::reliable()
    };
    build_platform(
        &PlatformSpec::new(kind, backend)
            .parallelism(parallelism)
            .decline_rate(decline_rate)
            .faults(faults),
    )
}

/// The standard evaluation scale (kept modest so the full matrix runs in
/// minutes; scale up via `scale_factor`).
pub fn standard_config(scale_factor: u64) -> RunConfig {
    RunConfig {
        seed: 0xBEEF,
        scale: ScaleConfig {
            sellers: 10 * scale_factor,
            products_per_seller: 10,
            customers: 100 * scale_factor,
            initial_stock: 100_000,
        },
        mix: WorkloadMix::default(),
        zipf_theta: 0.99,
        workers: 4,
        ops_per_worker: 250,
        warmup_ops_per_worker: 25,
        max_cart_items: 5,
        payment_decline_rate: 0.05,
        backend: BackendKind::Eventual,
        checkpoint_interval: 64,
        durable_checkpoints: true,
        df_workers: 0,
        recovery_drill: false,
        data_dir: None,
        durable: DurableOptions::default(),
        scenario: None,
        open_loop: None,
        chaos_drill: false,
    }
}

/// A fast config for Criterion micro-runs.
pub fn quick_config() -> RunConfig {
    RunConfig {
        workers: 2,
        ops_per_worker: 50,
        warmup_ops_per_worker: 5,
        ..standard_config(1)
    }
}

/// Runs one platform under `config` (which selects the storage backend),
/// returning the report.
pub fn run_platform(
    kind: PlatformKind,
    config: &RunConfig,
    parallelism: usize,
    faulty: bool,
) -> RunReport {
    let platform = make_platform(
        kind,
        config.backend,
        parallelism,
        config.payment_decline_rate,
        faulty,
    );
    run_benchmark(platform.as_ref(), config, true)
}

/// Formats a ratio as the "NxM" factors the paper quotes.
pub fn factor(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        f64::INFINITY
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_matrix_cell() {
        for kind in PLATFORMS {
            for backend in BACKENDS {
                let p = make_platform(kind, backend, 2, 0.0, false);
                assert_eq!(p.kind(), kind);
            }
        }
    }

    #[test]
    fn factor_math() {
        assert_eq!(factor(10.0, 5.0), 2.0);
        assert!(factor(1.0, 0.0).is_infinite());
    }
}
