//! Offline shim for the `bytes` crate.
//!
//! `Bytes` is a cheaply clonable immutable byte buffer (an `Arc<[u8]>`
//! plus a range, so `clone` and slicing are O(1) like the real crate);
//! `BytesMut` is a growable buffer with `advance`/`freeze`. Only the
//! API surface the workspace uses is provided.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Shared Debug body: print as an ASCII-escaped byte string like the
/// real crate, so test failure output stays readable.
macro_rules! fmt_bytes_debug {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "b\"")?;
            for &b in self.as_ref().iter() {
                match b {
                    b'"' => write!(f, "\\\"")?,
                    b'\\' => write!(f, "\\\\")?,
                    b'\n' => write!(f, "\\n")?,
                    b'\r' => write!(f, "\\r")?,
                    b'\t' => write!(f, "\\t")?,
                    0x20..=0x7e => write!(f, "{}", b as char)?,
                    _ => write!(f, "\\x{b:02x}")?,
                }
            }
            write!(f, "\"")
        }
    };
}

/// Byte-cursor trait (subset of the real `bytes::Buf`).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.start += cnt;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.buf.len(), "advance past end of buffer");
        self.buf.drain(..cnt);
    }
}

/// Immutable, cheaply clonable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_static(slice: &'static [u8]) -> Self {
        Self::copy_from_slice(slice)
    }

    pub fn copy_from_slice(slice: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(slice);
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// O(1) sub-slice sharing the same allocation.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v.into_boxed_slice());
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        Bytes::from(b.buf)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fmt_bytes_debug!();
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Growable byte buffer; `freeze` converts to `Bytes`.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    pub fn clear(&mut self) {
        self.buf.clear();
    }

    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }

    pub fn put_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }

    pub fn put_u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Splits off and returns the first `n` bytes.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.buf.len(), "split_to past end of buffer");
        let tail = self.buf.split_off(n);
        let head = std::mem::replace(&mut self.buf, tail);
        BytesMut { buf: head }
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut { buf: s.to_vec() }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { buf: v }
    }
}

impl Extend<u8> for BytesMut {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        self.buf.extend(iter);
    }
}

impl<'a> Extend<&'a u8> for BytesMut {
    fn extend<I: IntoIterator<Item = &'a u8>>(&mut self, iter: I) {
        self.buf.extend(iter.into_iter().copied());
    }
}

impl fmt::Debug for BytesMut {
    fmt_bytes_debug!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_and_slice() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        let s = b.slice(1..3);
        assert_eq!(&s[..], &[2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn bytesmut_advance_and_freeze() {
        let mut m = BytesMut::from(&b"hello world"[..]);
        m.advance(6);
        assert_eq!(&m[..], b"world");
        m.extend_from_slice(b"!");
        assert_eq!(m.freeze(), Bytes::from_static(b"world!"));
    }
}
