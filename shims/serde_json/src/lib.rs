//! Offline shim for the `serde_json` crate.
//!
//! Implements the subset of serde_json this workspace uses: `Value`,
//! `Number`, the `json!` macro (full TT-muncher, nested literals work),
//! `to_string`/`to_string_pretty`/`to_vec`/`to_value` and
//! `from_str`/`from_slice`/`from_value`, all built on the sibling
//! `serde` shim's data model. Serialization routes through `Value`
//! (build the tree, then print); deserialization parses text into
//! `Value` and drives the target type's `Deserialize` from it. Integer
//! map keys serialize to strings and parse back, like real serde_json.

use serde::de::{self, DeserializeOwned, IntoDeserializer, MapAccess, SeqAccess, Visitor};
use serde::ser::{self, Serialize};
use std::collections::BTreeMap;
use std::fmt;

pub mod value {
    pub use crate::{to_value, Map, Number, Value};
}

/// Map type backing `Value::Object`. BTreeMap gives deterministic
/// (sorted) key order, which keeps encoded output comparable.
pub type Map<K, V> = BTreeMap<K, V>;

// ---------------------------------------------------------------------------
// Error
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

// ---------------------------------------------------------------------------
// Number
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq)]
enum N {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

/// A JSON number: u64, i64, or f64 internally.
#[derive(Clone, Copy, PartialEq)]
pub struct Number {
    n: N,
}

impl Number {
    pub fn as_i64(&self) -> Option<i64> {
        match self.n {
            N::PosInt(u) => i64::try_from(u).ok(),
            N::NegInt(i) => Some(i),
            N::Float(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self.n {
            N::PosInt(u) => Some(u),
            N::NegInt(i) => u64::try_from(i).ok(),
            N::Float(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self.n {
            N::PosInt(u) => Some(u as f64),
            N::NegInt(i) => Some(i as f64),
            N::Float(f) => Some(f),
        }
    }

    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some()
    }

    pub fn is_u64(&self) -> bool {
        self.as_u64().is_some()
    }

    pub fn is_f64(&self) -> bool {
        matches!(self.n, N::Float(_))
    }

    pub fn from_f64(f: f64) -> Option<Number> {
        f.is_finite().then_some(Number { n: N::Float(f) })
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.n {
            N::PosInt(u) => write!(f, "{u}"),
            N::NegInt(i) => write!(f, "{i}"),
            N::Float(v) => {
                if v.is_finite() {
                    // Ensure floats keep a decimal point or exponent so
                    // they reparse as floats.
                    let s = format!("{v}");
                    if s.contains('.') || s.contains('e') || s.contains('E') {
                        f.write_str(&s)
                    } else {
                        write!(f, "{s}.0")
                    }
                } else {
                    f.write_str("null")
                }
            }
        }
    }
}

impl fmt::Debug for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Number({self})")
    }
}

macro_rules! number_from_unsigned {
    ($($ty:ty)*) => {$(
        impl From<$ty> for Number {
            fn from(u: $ty) -> Self {
                Number { n: N::PosInt(u as u64) }
            }
        }
    )*};
}

macro_rules! number_from_signed {
    ($($ty:ty)*) => {$(
        impl From<$ty> for Number {
            fn from(i: $ty) -> Self {
                if i < 0 {
                    Number { n: N::NegInt(i as i64) }
                } else {
                    Number { n: N::PosInt(i as u64) }
                }
            }
        }
    )*};
}

number_from_unsigned!(u8 u16 u32 u64 usize);
number_from_signed!(i8 i16 i32 i64 isize);

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

#[derive(Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn get<I: Index>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }

    /// JSON-pointer lookup (`/a/b/0`).
    pub fn pointer(&self, pointer: &str) -> Option<&Value> {
        if pointer.is_empty() {
            return Some(self);
        }
        pointer
            .strip_prefix('/')?
            .split('/')
            .map(|seg| seg.replace("~1", "/").replace("~0", "~"))
            .try_fold(self, |v, seg| match v {
                Value::Object(m) => m.get(&seg),
                Value::Array(a) => a.get(seg.parse::<usize>().ok()?),
                _ => None,
            })
    }

    pub fn take(&mut self) -> Value {
        std::mem::take(self)
    }
}

/// Sealed-ish indexing helper so `v["key"]` and `v[0]` both work.
pub trait Index {
    fn index_into<'v>(&self, value: &'v Value) -> Option<&'v Value>;
}

impl Index for usize {
    fn index_into<'v>(&self, value: &'v Value) -> Option<&'v Value> {
        match value {
            Value::Array(a) => a.get(*self),
            _ => None,
        }
    }
}

impl Index for str {
    fn index_into<'v>(&self, value: &'v Value) -> Option<&'v Value> {
        match value {
            Value::Object(m) => m.get(self),
            _ => None,
        }
    }
}

impl Index for String {
    fn index_into<'v>(&self, value: &'v Value) -> Option<&'v Value> {
        self.as_str().index_into(value)
    }
}

impl<T: Index + ?Sized> Index for &T {
    fn index_into<'v>(&self, value: &'v Value) -> Option<&'v Value> {
        (**self).index_into(value)
    }
}

impl<I: Index> std::ops::Index<I> for Value {
    type Output = Value;
    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL)
    }
}

impl fmt::Display for Value {
    /// Compact JSON text.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        f.write_str(&out)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

macro_rules! value_partial_eq_int {
    ($($ty:ty)*) => {$(
        impl PartialEq<$ty> for Value {
            fn eq(&self, other: &$ty) -> bool {
                match self {
                    Value::Number(n) => {
                        if *other < 0 as $ty {
                            n.as_i64() == Some(*other as i64)
                        } else {
                            n.as_u64() == Some(*other as u64)
                        }
                    }
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $ty {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

value_partial_eq_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<Value> for String {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(self.as_str())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Number::from_f64(f).map_or(Value::Null, Value::Number)
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Self {
        Value::from(f as f64)
    }
}

macro_rules! value_from_int {
    ($($ty:ty)*) => {$(
        impl From<$ty> for Value {
            fn from(n: $ty) -> Self {
                Value::Number(Number::from(n))
            }
        }
    )*};
}

value_from_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl From<Map<String, Value>> for Value {
    fn from(m: Map<String, Value>) -> Self {
        Value::Object(m)
    }
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes `value` to `out`; `indent = Some(width)` selects pretty mode.
fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                write_value(out, item, indent, depth + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Parser { bytes, pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("recursion depth exceeded"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(Value::Array(items)),
                        _ => return Err(self.err("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value(depth + 1)?;
                    map.insert(key, value);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(Value::Object(map)),
                        _ => return Err(self.err("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.err(&format!("unexpected byte {other:#x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.parse_hex4()?;
                        let c = if (0xd800..0xdc00).contains(&hi) {
                            // Surrogate pair.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.parse_hex4()?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                            char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))?
                        } else {
                            char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-decode UTF-8 starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid UTF-8"))?;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        // Strict JSON grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.err("leading zeros are not valid JSON"));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digits after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digits in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number { n: N::PosInt(u) }));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number { n: N::NegInt(i) }));
            }
        }
        let f = text
            .parse::<f64>()
            .map_err(|_| self.err("invalid number"))?;
        if !f.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Value::Number(Number { n: N::Float(f) }))
    }
}

fn utf8_len(b: u8) -> Option<usize> {
    match b {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = to_value(value)?;
    let mut out = String::new();
    write_value(&mut out, &v, None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = to_value(value)?;
    let mut out = String::new();
    write_value(&mut out, &v, Some(2), 0);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    from_slice(s.as_bytes())
}

pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let mut parser = Parser::new(bytes);
    let value = parser.parse_value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after JSON value"));
    }
    from_value(value)
}

pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    value.serialize(ValueSerializer)
}

pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, Error> {
    T::deserialize(value)
}

// ---------------------------------------------------------------------------
// Serializer building a Value tree
// ---------------------------------------------------------------------------

struct ValueSerializer;

struct SerializeVec {
    items: Vec<Value>,
}

struct SerializeTupleVariantValue {
    name: String,
    items: Vec<Value>,
}

struct SerializeMapValue {
    map: Map<String, Value>,
    next_key: Option<String>,
}

struct SerializeStructVariantValue {
    name: String,
    map: Map<String, Value>,
}

impl ser::Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    type SerializeSeq = SerializeVec;
    type SerializeTuple = SerializeVec;
    type SerializeTupleStruct = SerializeVec;
    type SerializeTupleVariant = SerializeTupleVariantValue;
    type SerializeMap = SerializeMapValue;
    type SerializeStruct = SerializeMapValue;
    type SerializeStructVariant = SerializeStructVariantValue;

    fn serialize_bool(self, v: bool) -> Result<Value, Error> {
        Ok(Value::Bool(v))
    }
    fn serialize_i8(self, v: i8) -> Result<Value, Error> {
        Ok(Value::from(v))
    }
    fn serialize_i16(self, v: i16) -> Result<Value, Error> {
        Ok(Value::from(v))
    }
    fn serialize_i32(self, v: i32) -> Result<Value, Error> {
        Ok(Value::from(v))
    }
    fn serialize_i64(self, v: i64) -> Result<Value, Error> {
        Ok(Value::from(v))
    }
    fn serialize_u8(self, v: u8) -> Result<Value, Error> {
        Ok(Value::from(v))
    }
    fn serialize_u16(self, v: u16) -> Result<Value, Error> {
        Ok(Value::from(v))
    }
    fn serialize_u32(self, v: u32) -> Result<Value, Error> {
        Ok(Value::from(v))
    }
    fn serialize_u64(self, v: u64) -> Result<Value, Error> {
        Ok(Value::from(v))
    }
    fn serialize_f32(self, v: f32) -> Result<Value, Error> {
        Ok(Value::from(v))
    }
    fn serialize_f64(self, v: f64) -> Result<Value, Error> {
        Ok(Value::from(v))
    }
    fn serialize_char(self, v: char) -> Result<Value, Error> {
        Ok(Value::String(v.to_string()))
    }
    fn serialize_str(self, v: &str) -> Result<Value, Error> {
        Ok(Value::String(v.to_owned()))
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<Value, Error> {
        Ok(Value::Array(v.iter().map(|&b| Value::from(b)).collect()))
    }
    fn serialize_none(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Value, Error> {
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<Value, Error> {
        Ok(Value::Null)
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<Value, Error> {
        Ok(Value::String(variant.to_owned()))
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<Value, Error> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Value, Error> {
        let mut map = Map::new();
        map.insert(variant.to_owned(), value.serialize(ValueSerializer)?);
        Ok(Value::Object(map))
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<SerializeVec, Error> {
        Ok(SerializeVec {
            items: Vec::with_capacity(len.unwrap_or(0)),
        })
    }
    fn serialize_tuple(self, len: usize) -> Result<SerializeVec, Error> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<SerializeVec, Error> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<SerializeTupleVariantValue, Error> {
        Ok(SerializeTupleVariantValue {
            name: variant.to_owned(),
            items: Vec::with_capacity(len),
        })
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<SerializeMapValue, Error> {
        Ok(SerializeMapValue {
            map: Map::new(),
            next_key: None,
        })
    }
    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<SerializeMapValue, Error> {
        Ok(SerializeMapValue {
            map: Map::new(),
            next_key: None,
        })
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<SerializeStructVariantValue, Error> {
        Ok(SerializeStructVariantValue {
            name: variant.to_owned(),
            map: Map::new(),
        })
    }
}

impl ser::SerializeSeq for SerializeVec {
    type Ok = Value;
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.items.push(value.serialize(ValueSerializer)?);
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Array(self.items))
    }
}

impl ser::SerializeTuple for SerializeVec {
    type Ok = Value;
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<Value, Error> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleStruct for SerializeVec {
    type Ok = Value;
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<Value, Error> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleVariant for SerializeTupleVariantValue {
    type Ok = Value;
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.items.push(value.serialize(ValueSerializer)?);
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        let mut map = Map::new();
        map.insert(self.name, Value::Array(self.items));
        Ok(Value::Object(map))
    }
}

impl ser::SerializeMap for SerializeMapValue {
    type Ok = Value;
    type Error = Error;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Error> {
        self.next_key = Some(key.serialize(KeySerializer)?);
        Ok(())
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        let key = self
            .next_key
            .take()
            .ok_or_else(|| Error::new("serialize_value called before serialize_key"))?;
        self.map.insert(key, value.serialize(ValueSerializer)?);
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(self.map))
    }
}

impl ser::SerializeStruct for SerializeMapValue {
    type Ok = Value;
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.map
            .insert(key.to_owned(), value.serialize(ValueSerializer)?);
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(self.map))
    }
}

impl ser::SerializeStructVariant for SerializeStructVariantValue {
    type Ok = Value;
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.map
            .insert(key.to_owned(), value.serialize(ValueSerializer)?);
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        let mut outer = Map::new();
        outer.insert(self.name, Value::Object(self.map));
        Ok(Value::Object(outer))
    }
}

/// Serializes map keys to strings, like real serde_json: strings pass
/// through, integers/bools/chars stringify, everything else errors.
struct KeySerializer;

struct KeyUnsupported;

macro_rules! key_to_string {
    ($($method:ident: $ty:ty,)*) => {$(
        fn $method(self, v: $ty) -> Result<String, Error> {
            Ok(v.to_string())
        }
    )*};
}

impl ser::Serializer for KeySerializer {
    type Ok = String;
    type Error = Error;
    type SerializeSeq = KeyCompound;
    type SerializeTuple = KeyCompound;
    type SerializeTupleStruct = KeyCompound;
    type SerializeTupleVariant = KeyCompound;
    type SerializeMap = KeyCompound;
    type SerializeStruct = KeyCompound;
    type SerializeStructVariant = KeyCompound;

    key_to_string! {
        serialize_bool: bool,
        serialize_i8: i8,
        serialize_i16: i16,
        serialize_i32: i32,
        serialize_i64: i64,
        serialize_u8: u8,
        serialize_u16: u16,
        serialize_u32: u32,
        serialize_u64: u64,
        serialize_char: char,
    }

    fn serialize_f32(self, _v: f32) -> Result<String, Error> {
        Err(Error::new("float JSON map keys are not supported"))
    }
    fn serialize_f64(self, _v: f64) -> Result<String, Error> {
        Err(Error::new("float JSON map keys are not supported"))
    }
    fn serialize_str(self, v: &str) -> Result<String, Error> {
        Ok(v.to_owned())
    }
    fn serialize_bytes(self, _v: &[u8]) -> Result<String, Error> {
        Err(Error::new("byte JSON map keys are not supported"))
    }
    fn serialize_none(self) -> Result<String, Error> {
        Err(Error::new("null JSON map keys are not supported"))
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<String, Error> {
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<String, Error> {
        Err(Error::new("unit JSON map keys are not supported"))
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<String, Error> {
        Err(Error::new("unit-struct JSON map keys are not supported"))
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<String, Error> {
        Ok(variant.to_owned())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<String, Error> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _value: &T,
    ) -> Result<String, Error> {
        Err(Error::new("newtype-variant JSON map keys are not supported"))
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result<KeyCompound, Error> {
        Err(Error::new("sequence JSON map keys are not supported"))
    }
    fn serialize_tuple(self, _len: usize) -> Result<KeyCompound, Error> {
        Err(Error::new(
            "tuple JSON map keys are not supported (wrap the map with a pair-list adapter)",
        ))
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<KeyCompound, Error> {
        Err(Error::new("tuple-struct JSON map keys are not supported"))
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<KeyCompound, Error> {
        Err(Error::new("tuple-variant JSON map keys are not supported"))
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<KeyCompound, Error> {
        Err(Error::new("map JSON map keys are not supported"))
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<KeyCompound, Error> {
        Err(Error::new("struct JSON map keys are not supported"))
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<KeyCompound, Error> {
        Err(Error::new("struct-variant JSON map keys are not supported"))
    }
}

/// Unreachable compound serializer for `KeySerializer` (all compound
/// entry points error before constructing it).
pub struct KeyCompound {
    _never: KeyUnsupported,
}

macro_rules! key_compound_impl {
    ($trait:path, $method:ident) => {
        impl $trait for KeyCompound {
            type Ok = String;
            type Error = Error;
            fn $method<T: Serialize + ?Sized>(&mut self, _value: &T) -> Result<(), Error> {
                unreachable!("KeyCompound is never constructed")
            }
            fn end(self) -> Result<String, Error> {
                unreachable!("KeyCompound is never constructed")
            }
        }
    };
}

key_compound_impl!(ser::SerializeSeq, serialize_element);
key_compound_impl!(ser::SerializeTuple, serialize_element);
key_compound_impl!(ser::SerializeTupleStruct, serialize_field);
key_compound_impl!(ser::SerializeTupleVariant, serialize_field);

impl ser::SerializeMap for KeyCompound {
    type Ok = String;
    type Error = Error;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, _key: &T) -> Result<(), Error> {
        unreachable!("KeyCompound is never constructed")
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, _value: &T) -> Result<(), Error> {
        unreachable!("KeyCompound is never constructed")
    }
    fn end(self) -> Result<String, Error> {
        unreachable!("KeyCompound is never constructed")
    }
}

impl ser::SerializeStruct for KeyCompound {
    type Ok = String;
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        _value: &T,
    ) -> Result<(), Error> {
        unreachable!("KeyCompound is never constructed")
    }
    fn end(self) -> Result<String, Error> {
        unreachable!("KeyCompound is never constructed")
    }
}

impl ser::SerializeStructVariant for KeyCompound {
    type Ok = String;
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        _value: &T,
    ) -> Result<(), Error> {
        unreachable!("KeyCompound is never constructed")
    }
    fn end(self) -> Result<String, Error> {
        unreachable!("KeyCompound is never constructed")
    }
}

// ---------------------------------------------------------------------------
// Serialize / Deserialize for Value itself
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Value::Null => serializer.serialize_unit(),
            Value::Bool(b) => serializer.serialize_bool(*b),
            Value::Number(n) => match n.n {
                N::PosInt(u) => serializer.serialize_u64(u),
                N::NegInt(i) => serializer.serialize_i64(i),
                N::Float(f) => serializer.serialize_f64(f),
            },
            Value::String(s) => serializer.serialize_str(s),
            Value::Array(items) => {
                use ser::SerializeSeq as _;
                let mut seq = serializer.serialize_seq(Some(items.len()))?;
                for item in items {
                    seq.serialize_element(item)?;
                }
                seq.end()
            }
            Value::Object(map) => {
                use ser::SerializeMap as _;
                let mut m = serializer.serialize_map(Some(map.len()))?;
                for (k, v) in map {
                    m.serialize_entry(k, v)?;
                }
                m.end()
            }
        }
    }
}

impl<'de> de::Deserialize<'de> for Value {
    fn deserialize<D: de::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct ValueVisitor;
        impl<'de> Visitor<'de> for ValueVisitor {
            type Value = Value;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("any JSON value")
            }
            fn visit_bool<E: de::Error>(self, v: bool) -> Result<Value, E> {
                Ok(Value::Bool(v))
            }
            fn visit_i64<E: de::Error>(self, v: i64) -> Result<Value, E> {
                Ok(Value::from(v))
            }
            fn visit_u64<E: de::Error>(self, v: u64) -> Result<Value, E> {
                Ok(Value::from(v))
            }
            fn visit_f64<E: de::Error>(self, v: f64) -> Result<Value, E> {
                Ok(Value::from(v))
            }
            fn visit_str<E: de::Error>(self, v: &str) -> Result<Value, E> {
                Ok(Value::String(v.to_owned()))
            }
            fn visit_string<E: de::Error>(self, v: String) -> Result<Value, E> {
                Ok(Value::String(v))
            }
            fn visit_none<E: de::Error>(self) -> Result<Value, E> {
                Ok(Value::Null)
            }
            fn visit_unit<E: de::Error>(self) -> Result<Value, E> {
                Ok(Value::Null)
            }
            fn visit_some<D: de::Deserializer<'de>>(self, d: D) -> Result<Value, D::Error> {
                de::Deserialize::deserialize(d)
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Value, A::Error> {
                let mut items = Vec::new();
                while let Some(item) = seq.next_element()? {
                    items.push(item);
                }
                Ok(Value::Array(items))
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Value, A::Error> {
                let mut out = Map::new();
                while let Some((k, v)) = map.next_entry::<String, Value>()? {
                    out.insert(k, v);
                }
                Ok(Value::Object(out))
            }
        }
        deserializer.deserialize_any(ValueVisitor)
    }
}

// ---------------------------------------------------------------------------
// Deserializer driving a target type from a Value tree
// ---------------------------------------------------------------------------

impl Value {
    fn unexpected(&self) -> de::Unexpected<'_> {
        match self {
            Value::Null => de::Unexpected::Unit,
            Value::Bool(b) => de::Unexpected::Bool(*b),
            Value::Number(n) => match n.n {
                N::PosInt(u) => de::Unexpected::Unsigned(u),
                N::NegInt(i) => de::Unexpected::Signed(i),
                N::Float(f) => de::Unexpected::Float(f),
            },
            Value::String(s) => de::Unexpected::Str(s),
            Value::Array(_) => de::Unexpected::Seq,
            Value::Object(_) => de::Unexpected::Map,
        }
    }
}

struct SeqDeserializer {
    iter: std::vec::IntoIter<Value>,
}

impl<'de> SeqAccess<'de> for SeqDeserializer {
    type Error = Error;
    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Error> {
        match self.iter.next() {
            Some(v) => seed.deserialize(v).map(Some),
            None => Ok(None),
        }
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.iter.len())
    }
}

struct MapDeserializer {
    iter: std::collections::btree_map::IntoIter<String, Value>,
    next_value: Option<Value>,
}

impl<'de> MapAccess<'de> for MapDeserializer {
    type Error = Error;
    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Error> {
        match self.iter.next() {
            Some((k, v)) => {
                self.next_value = Some(v);
                seed.deserialize(MapKeyDeserializer { key: k }).map(Some)
            }
            None => Ok(None),
        }
    }
    fn next_value_seed<V: de::DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value, Error> {
        let value = self
            .next_value
            .take()
            .ok_or_else(|| Error::new("next_value called before next_key"))?;
        seed.deserialize(value)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.iter.len())
    }
}

/// Deserializes a map key. JSON keys are strings, but integer-keyed
/// maps round-trip by parsing the string back into a number.
struct MapKeyDeserializer {
    key: String,
}

macro_rules! key_parse_int {
    ($($method:ident => $visit:ident: $ty:ty,)*) => {$(
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
            match self.key.parse::<$ty>() {
                Ok(v) => visitor.$visit(v),
                Err(_) => Err(Error::new(format!(
                    "invalid numeric map key {:?}", self.key
                ))),
            }
        }
    )*};
}

impl<'de> de::Deserializer<'de> for MapKeyDeserializer {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        visitor.visit_string(self.key)
    }

    key_parse_int! {
        deserialize_i8 => visit_i8: i8,
        deserialize_i16 => visit_i16: i16,
        deserialize_i32 => visit_i32: i32,
        deserialize_i64 => visit_i64: i64,
        deserialize_u8 => visit_u8: u8,
        deserialize_u16 => visit_u16: u16,
        deserialize_u32 => visit_u32: u32,
        deserialize_u64 => visit_u64: u64,
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self.key.as_str() {
            "true" => visitor.visit_bool(true),
            "false" => visitor.visit_bool(false),
            other => Err(Error::new(format!("invalid boolean map key {other:?}"))),
        }
    }

    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        visitor.visit_some(self)
    }
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Error> {
        visitor.visit_newtype_struct(self)
    }
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Error> {
        visitor.visit_enum(EnumDeserializer {
            variant: self.key,
            value: None,
        })
    }
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        visitor.visit_unit()
    }
}

struct EnumDeserializer {
    variant: String,
    value: Option<Value>,
}

impl<'de> de::EnumAccess<'de> for EnumDeserializer {
    type Error = Error;
    type Variant = VariantDeserializer;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, VariantDeserializer), Error> {
        let tag = seed.deserialize(MapKeyDeserializer { key: self.variant })?;
        Ok((tag, VariantDeserializer { value: self.value }))
    }
}

struct VariantDeserializer {
    value: Option<Value>,
}

impl<'de> de::VariantAccess<'de> for VariantDeserializer {
    type Error = Error;

    fn unit_variant(self) -> Result<(), Error> {
        match self.value {
            None | Some(Value::Null) => Ok(()),
            Some(v) => Err(de::Error::invalid_type(v.unexpected(), &"unit variant")),
        }
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value, Error> {
        match self.value {
            Some(v) => seed.deserialize(v),
            None => Err(Error::new("expected newtype variant payload")),
        }
    }

    fn tuple_variant<V: Visitor<'de>>(self, _len: usize, visitor: V) -> Result<V::Value, Error> {
        match self.value {
            Some(Value::Array(items)) => visitor.visit_seq(SeqDeserializer {
                iter: items.into_iter(),
            }),
            Some(v) => Err(de::Error::invalid_type(v.unexpected(), &"tuple variant")),
            None => Err(Error::new("expected tuple variant payload")),
        }
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Error> {
        match self.value {
            Some(Value::Object(map)) => visitor.visit_map(MapDeserializer {
                iter: map.into_iter(),
                next_value: None,
            }),
            Some(Value::Array(items)) => visitor.visit_seq(SeqDeserializer {
                iter: items.into_iter(),
            }),
            Some(v) => Err(de::Error::invalid_type(v.unexpected(), &"struct variant")),
            None => Err(Error::new("expected struct variant payload")),
        }
    }
}

impl<'de> IntoDeserializer<'de, Error> for Value {
    type Deserializer = Value;
    fn into_deserializer(self) -> Value {
        self
    }
}

impl<'de> de::Deserializer<'de> for Value {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self {
            Value::Null => visitor.visit_unit(),
            Value::Bool(b) => visitor.visit_bool(b),
            Value::Number(n) => match n.n {
                N::PosInt(u) => visitor.visit_u64(u),
                N::NegInt(i) => visitor.visit_i64(i),
                N::Float(f) => visitor.visit_f64(f),
            },
            Value::String(s) => visitor.visit_string(s),
            Value::Array(items) => visitor.visit_seq(SeqDeserializer {
                iter: items.into_iter(),
            }),
            Value::Object(map) => visitor.visit_map(MapDeserializer {
                iter: map.into_iter(),
                next_value: None,
            }),
        }
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self {
            Value::Bool(b) => visitor.visit_bool(b),
            other => Err(de::Error::invalid_type(other.unexpected(), &visitor)),
        }
    }

    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_any(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self {
            Value::Null => visitor.visit_none(),
            other => visitor.visit_some(other),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self {
            Value::Null => visitor.visit_unit(),
            other => Err(de::Error::invalid_type(other.unexpected(), &visitor)),
        }
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Error> {
        self.deserialize_unit(visitor)
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Error> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self {
            Value::Array(items) => visitor.visit_seq(SeqDeserializer {
                iter: items.into_iter(),
            }),
            other => Err(de::Error::invalid_type(other.unexpected(), &visitor)),
        }
    }

    fn deserialize_tuple<V: Visitor<'de>>(self, _len: usize, visitor: V) -> Result<V::Value, Error> {
        self.deserialize_seq(visitor)
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, Error> {
        self.deserialize_seq(visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self {
            Value::Object(map) => visitor.visit_map(MapDeserializer {
                iter: map.into_iter(),
                next_value: None,
            }),
            other => Err(de::Error::invalid_type(other.unexpected(), &visitor)),
        }
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Error> {
        match self {
            Value::Object(map) => visitor.visit_map(MapDeserializer {
                iter: map.into_iter(),
                next_value: None,
            }),
            Value::Array(items) => visitor.visit_seq(SeqDeserializer {
                iter: items.into_iter(),
            }),
            other => Err(de::Error::invalid_type(other.unexpected(), &visitor)),
        }
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Error> {
        match self {
            Value::String(s) => visitor.visit_enum(EnumDeserializer {
                variant: s,
                value: None,
            }),
            Value::Object(map) => {
                let mut iter = map.into_iter();
                let (variant, value) = iter
                    .next()
                    .ok_or_else(|| Error::new("expected a single-key object for enum"))?;
                if iter.next().is_some() {
                    return Err(Error::new("expected a single-key object for enum"));
                }
                visitor.visit_enum(EnumDeserializer {
                    variant,
                    value: Some(value),
                })
            }
            other => Err(de::Error::invalid_type(other.unexpected(), &visitor)),
        }
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self {
            Value::String(s) => visitor.visit_string(s),
            Value::Number(n) => match n.n {
                N::PosInt(u) => visitor.visit_u64(u),
                N::NegInt(i) => visitor.visit_i64(i),
                N::Float(_) => Err(Error::new("float is not a valid identifier")),
            },
            other => Err(de::Error::invalid_type(other.unexpected(), &visitor)),
        }
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        visitor.visit_unit()
    }
}

// ---------------------------------------------------------------------------
// json! macro (TT muncher, supports nested literals)
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    //////////////////// array ////////////////////
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //////////////////// object ////////////////////
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    //////////////////// primary ////////////////////
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(::std::vec::Vec::new())
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value should serialize")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_values() {
        let id = 7u64;
        let v = json!({
            "id": id,
            "name": format!("seller-{id}"),
            "nested": { "flag": true, "items": [1, 2, 3] },
            "list": [{"a": null}],
        });
        assert_eq!(v["id"].as_u64(), Some(7));
        assert_eq!(v["name"].as_str(), Some("seller-7"));
        assert_eq!(v["nested"]["items"][2].as_i64(), Some(3));
        assert!(v["list"][0]["a"].is_null());
        assert!(v["missing"].is_null());
    }

    #[test]
    fn value_roundtrips_through_text() {
        let v = json!({"a": [1, 2.5, "tre", true, null], "b": {"c": -9}});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = json!({"s": "line\nbreak \"quoted\" \\ tab\t ø 漢"});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = from_str(r#""æ😀""#).unwrap();
        assert_eq!(v.as_str(), Some("æ😀"));
    }

    #[test]
    fn integer_keyed_maps_roundtrip() {
        let mut m = std::collections::BTreeMap::new();
        m.insert(5u64, "five".to_string());
        m.insert(9u64, "nine".to_string());
        let text = to_string(&m).unwrap();
        assert_eq!(text, r#"{"5":"five","9":"nine"}"#);
        let back: std::collections::BTreeMap<u64, String> = from_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "tru", "\"unterminated", "1e", "nul",
            // Strict JSON number grammar: no leading zeros, no bare
            // trailing point, no out-of-range literals silently
            // becoming null.
            "01", "1.", "-", "1e999", ".5",
        ] {
            assert!(from_str::<Value>(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn empty_braced_struct_derives_roundtrip() {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Empty {}
        let text = to_string(&Empty {}).unwrap();
        assert_eq!(text, "{}");
        assert_eq!(from_str::<Empty>(&text).unwrap(), Empty {});
    }

    #[test]
    fn absent_option_fields_default_to_none() {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Body {
            customer: u64,
            note: Option<String>,
        }
        let v: Body = from_str(r#"{"customer": 7}"#).unwrap();
        assert_eq!(
            v,
            Body {
                customer: 7,
                note: None
            }
        );
        // Required fields still error when absent.
        assert!(from_str::<Body>(r#"{"note": "x"}"#).is_err());
    }

    #[test]
    fn pretty_printing_is_indented_and_reparses() {
        let v = json!({"a": {"b": [1]}});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  "));
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
    }
}
