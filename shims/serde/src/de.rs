//! Deserialization half of the serde data model.

use std::fmt::{self, Display};
use std::marker::PhantomData;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// What a deserializer actually encountered, for error messages.
#[derive(Clone, Copy, Debug)]
pub enum Unexpected<'a> {
    Bool(bool),
    Unsigned(u64),
    Signed(i64),
    Float(f64),
    Char(char),
    Str(&'a str),
    Bytes(&'a [u8]),
    Unit,
    Option,
    NewtypeStruct,
    Seq,
    Map,
    Enum,
    UnitVariant,
    NewtypeVariant,
    TupleVariant,
    StructVariant,
    Other(&'a str),
}

impl Display for Unexpected<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Unexpected::*;
        match self {
            Bool(b) => write!(f, "boolean `{b}`"),
            Unsigned(u) => write!(f, "integer `{u}`"),
            Signed(i) => write!(f, "integer `{i}`"),
            Float(v) => write!(f, "floating point `{v}`"),
            Char(c) => write!(f, "character `{c}`"),
            Str(s) => write!(f, "string {s:?}"),
            Bytes(_) => write!(f, "byte array"),
            Unit => write!(f, "unit value"),
            Option => write!(f, "Option value"),
            NewtypeStruct => write!(f, "newtype struct"),
            Seq => write!(f, "sequence"),
            Map => write!(f, "map"),
            Enum => write!(f, "enum"),
            UnitVariant => write!(f, "unit variant"),
            NewtypeVariant => write!(f, "newtype variant"),
            TupleVariant => write!(f, "tuple variant"),
            StructVariant => write!(f, "struct variant"),
            Other(s) => f.write_str(s),
        }
    }
}

/// What a visitor expected, for error messages.
pub trait Expected {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;
}

impl<'de, V: Visitor<'de>> Expected for V {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.expecting(formatter)
    }
}

impl Expected for &str {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        formatter.write_str(self)
    }
}

impl Display for dyn Expected + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Expected::fmt(self, f)
    }
}

/// Error trait every deserializer's error type implements. Only
/// `custom` is required; the helpers are provided on top of it.
pub trait Error: Sized + std::error::Error {
    fn custom<T: Display>(msg: T) -> Self;

    fn invalid_type(unexp: Unexpected<'_>, exp: &dyn Expected) -> Self {
        Self::custom(format_args!("invalid type: {unexp}, expected {exp}"))
    }

    fn invalid_value(unexp: Unexpected<'_>, exp: &dyn Expected) -> Self {
        Self::custom(format_args!("invalid value: {unexp}, expected {exp}"))
    }

    fn invalid_length(len: usize, exp: &dyn Expected) -> Self {
        Self::custom(format_args!("invalid length {len}, expected {exp}"))
    }

    fn unknown_variant(variant: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!(
            "unknown variant `{variant}`, expected one of {expected:?}"
        ))
    }

    fn unknown_field(field: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!(
            "unknown field `{field}`, expected one of {expected:?}"
        ))
    }

    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }

    fn duplicate_field(field: &'static str) -> Self {
        Self::custom(format_args!("duplicate field `{field}`"))
    }
}

// ---------------------------------------------------------------------------
// Core traits
// ---------------------------------------------------------------------------

pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A type deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Stateful deserialization entry point; `PhantomData<T>` is the
/// stateless seed that simply deserializes a `T`.
pub trait DeserializeSeed<'de>: Sized {
    type Value;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

pub trait Deserializer<'de>: Sized {
    type Error: Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// 128-bit integers are funneled through the 64-bit channel by
    /// default, matching how the shim's serializers encode them.
    fn deserialize_i128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_i64(visitor)
    }
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_u64(visitor)
    }
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V)
        -> Result<V::Value, Self::Error>;

    fn is_human_readable(&self) -> bool {
        true
    }
}

pub trait Visitor<'de>: Sized {
    type Value;

    /// "expected a ..." fragment for error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        Err(E::invalid_type(Unexpected::Bool(v), &self))
    }

    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }

    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }

    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }

    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        Err(E::invalid_type(Unexpected::Signed(v), &self))
    }

    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }

    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }

    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }

    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        Err(E::invalid_type(Unexpected::Unsigned(v), &self))
    }

    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(v as f64)
    }

    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        Err(E::invalid_type(Unexpected::Float(v), &self))
    }

    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        self.visit_str(v.encode_utf8(&mut [0u8; 4]))
    }

    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        Err(E::invalid_type(Unexpected::Str(v), &self))
    }

    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }

    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        Err(E::invalid_type(Unexpected::Bytes(v), &self))
    }

    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }

    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }

    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::invalid_type(Unexpected::Option, &self))
    }

    fn visit_some<D: Deserializer<'de>>(self, _deserializer: D) -> Result<Self::Value, D::Error> {
        Err(D::Error::invalid_type(Unexpected::Option, &self))
    }

    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::invalid_type(Unexpected::Unit, &self))
    }

    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        _deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        Err(D::Error::invalid_type(Unexpected::NewtypeStruct, &self))
    }

    fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::invalid_type(Unexpected::Seq, &self))
    }

    fn visit_map<A: MapAccess<'de>>(self, _map: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::invalid_type(Unexpected::Map, &self))
    }

    fn visit_enum<A: EnumAccess<'de>>(self, _data: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::invalid_type(Unexpected::Enum, &self))
    }
}

pub trait SeqAccess<'de> {
    type Error: Error;

    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

pub trait MapAccess<'de> {
    type Error: Error;

    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V)
        -> Result<V::Value, Self::Error>;

    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(k) => Ok(Some((k, self.next_value()?))),
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

pub trait EnumAccess<'de>: Sized {
    type Error: Error;
    type Variant: VariantAccess<'de, Error = Self::Error>;

    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

pub trait VariantAccess<'de>: Sized {
    type Error: Error;

    fn unit_variant(self) -> Result<(), Self::Error>;

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, seed: T)
        -> Result<T::Value, Self::Error>;

    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V)
        -> Result<V::Value, Self::Error>;

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

// ---------------------------------------------------------------------------
// IgnoredAny — swallow any value (used to skip unknown fields)
// ---------------------------------------------------------------------------

/// Efficiently discards whatever value comes next.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IgnoredAny;

impl<'de> Visitor<'de> for IgnoredAny {
    type Value = IgnoredAny;

    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        formatter.write_str("anything at all")
    }

    fn visit_bool<E: Error>(self, _: bool) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_i64<E: Error>(self, _: i64) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_u64<E: Error>(self, _: u64) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_f64<E: Error>(self, _: f64) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_str<E: Error>(self, _: &str) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_bytes<E: Error>(self, _: &[u8]) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_none<E: Error>(self) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_unit<E: Error>(self) -> Result<IgnoredAny, E> {
        Ok(IgnoredAny)
    }
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<IgnoredAny, D::Error> {
        deserializer.deserialize_ignored_any(IgnoredAny)
    }
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<IgnoredAny, D::Error> {
        deserializer.deserialize_ignored_any(IgnoredAny)
    }
    fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<IgnoredAny, A::Error> {
        while seq.next_element::<IgnoredAny>()?.is_some() {}
        Ok(IgnoredAny)
    }
    fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<IgnoredAny, A::Error> {
        while map.next_key::<IgnoredAny>()?.is_some() {
            map.next_value::<IgnoredAny>()?;
        }
        Ok(IgnoredAny)
    }
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<IgnoredAny, A::Error> {
        data.variant::<IgnoredAny>()?.1.newtype_variant::<IgnoredAny>()
    }
}

impl<'de> Deserialize<'de> for IgnoredAny {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_ignored_any(IgnoredAny)
    }
}

// ---------------------------------------------------------------------------
// IntoDeserializer + value deserializers
// ---------------------------------------------------------------------------

pub trait IntoDeserializer<'de, E: Error = value::Error> {
    type Deserializer: Deserializer<'de, Error = E>;
    fn into_deserializer(self) -> Self::Deserializer;
}

pub mod value {
    use super::*;

    /// Minimal string-backed error for standalone value deserializers.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct Error {
        msg: String,
    }

    impl Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl std::error::Error for Error {}

    impl super::Error for Error {
        fn custom<T: Display>(msg: T) -> Self {
            Error {
                msg: msg.to_string(),
            }
        }
    }

    /// Implements every `deserialize_*` method by delegating to
    /// `deserialize_any`, for scalar-backed value deserializers.
    macro_rules! forward_to_any {
        () => {
            fn deserialize_bool<V: Visitor<'de>>(self, v: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
            fn deserialize_i8<V: Visitor<'de>>(self, v: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
            fn deserialize_i16<V: Visitor<'de>>(self, v: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
            fn deserialize_i32<V: Visitor<'de>>(self, v: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
            fn deserialize_i64<V: Visitor<'de>>(self, v: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
            fn deserialize_u8<V: Visitor<'de>>(self, v: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
            fn deserialize_u16<V: Visitor<'de>>(self, v: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
            fn deserialize_u32<V: Visitor<'de>>(self, v: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
            fn deserialize_u64<V: Visitor<'de>>(self, v: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
            fn deserialize_f32<V: Visitor<'de>>(self, v: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
            fn deserialize_f64<V: Visitor<'de>>(self, v: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
            fn deserialize_char<V: Visitor<'de>>(self, v: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
            fn deserialize_str<V: Visitor<'de>>(self, v: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
            fn deserialize_string<V: Visitor<'de>>(self, v: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
            fn deserialize_bytes<V: Visitor<'de>>(self, v: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
            fn deserialize_byte_buf<V: Visitor<'de>>(self, v: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
            fn deserialize_option<V: Visitor<'de>>(self, v: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
            fn deserialize_unit<V: Visitor<'de>>(self, v: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
            fn deserialize_unit_struct<V: Visitor<'de>>(
                self,
                _name: &'static str,
                v: V,
            ) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
            fn deserialize_newtype_struct<V: Visitor<'de>>(
                self,
                _name: &'static str,
                v: V,
            ) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
            fn deserialize_seq<V: Visitor<'de>>(self, v: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
            fn deserialize_tuple<V: Visitor<'de>>(
                self,
                _len: usize,
                v: V,
            ) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
            fn deserialize_tuple_struct<V: Visitor<'de>>(
                self,
                _name: &'static str,
                _len: usize,
                v: V,
            ) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
            fn deserialize_map<V: Visitor<'de>>(self, v: V) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
            fn deserialize_struct<V: Visitor<'de>>(
                self,
                _name: &'static str,
                _fields: &'static [&'static str],
                v: V,
            ) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
            fn deserialize_enum<V: Visitor<'de>>(
                self,
                _name: &'static str,
                _variants: &'static [&'static str],
                v: V,
            ) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
            fn deserialize_identifier<V: Visitor<'de>>(
                self,
                v: V,
            ) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
            fn deserialize_ignored_any<V: Visitor<'de>>(
                self,
                v: V,
            ) -> Result<V::Value, Self::Error> {
                self.deserialize_any(v)
            }
        };
    }

    macro_rules! scalar_deserializer {
        ($name:ident, $ty:ty, $visit:ident) => {
            pub struct $name<E> {
                value: $ty,
                marker: PhantomData<E>,
            }

            impl<E> $name<E> {
                pub fn new(value: $ty) -> Self {
                    Self {
                        value,
                        marker: PhantomData,
                    }
                }
            }

            impl<'de, E: super::Error> Deserializer<'de> for $name<E> {
                type Error = E;

                fn deserialize_any<V: Visitor<'de>>(
                    self,
                    visitor: V,
                ) -> Result<V::Value, Self::Error> {
                    visitor.$visit(self.value)
                }

                forward_to_any!();
            }

            impl<'de, E: super::Error> IntoDeserializer<'de, E> for $ty {
                type Deserializer = $name<E>;
                fn into_deserializer(self) -> $name<E> {
                    $name::new(self)
                }
            }
        };
    }

    scalar_deserializer!(BoolDeserializer, bool, visit_bool);
    scalar_deserializer!(U8Deserializer, u8, visit_u8);
    scalar_deserializer!(U16Deserializer, u16, visit_u16);
    scalar_deserializer!(U32Deserializer, u32, visit_u32);
    scalar_deserializer!(U64Deserializer, u64, visit_u64);
    scalar_deserializer!(I8Deserializer, i8, visit_i8);
    scalar_deserializer!(I16Deserializer, i16, visit_i16);
    scalar_deserializer!(I32Deserializer, i32, visit_i32);
    scalar_deserializer!(I64Deserializer, i64, visit_i64);
    scalar_deserializer!(StringDeserializer, String, visit_string);

    pub struct UsizeDeserializer<E> {
        value: usize,
        marker: PhantomData<E>,
    }

    impl<'de, E: super::Error> Deserializer<'de> for UsizeDeserializer<E> {
        type Error = E;

        fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
            visitor.visit_u64(self.value as u64)
        }

        forward_to_any!();
    }

    impl<'de, E: super::Error> IntoDeserializer<'de, E> for usize {
        type Deserializer = UsizeDeserializer<E>;
        fn into_deserializer(self) -> UsizeDeserializer<E> {
            UsizeDeserializer {
                value: self,
                marker: PhantomData,
            }
        }
    }

    pub struct StrDeserializer<'a, E> {
        value: &'a str,
        marker: PhantomData<E>,
    }

    impl<'a, E> StrDeserializer<'a, E> {
        pub fn new(value: &'a str) -> Self {
            Self {
                value,
                marker: PhantomData,
            }
        }
    }

    impl<'de, 'a, E: super::Error> Deserializer<'de> for StrDeserializer<'a, E> {
        type Error = E;

        fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
            visitor.visit_str(self.value)
        }

        forward_to_any!();
    }

    impl<'de, 'a, E: super::Error> IntoDeserializer<'de, E> for &'a str {
        type Deserializer = StrDeserializer<'a, E>;
        fn into_deserializer(self) -> StrDeserializer<'a, E> {
            StrDeserializer::new(self)
        }
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = bool;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a boolean")
            }
            fn visit_bool<E: Error>(self, v: bool) -> Result<bool, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_bool(V)
    }
}

macro_rules! impl_deserialize_int {
    ($($ty:ty, $method:ident;)*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str(concat!("an integer fitting ", stringify!($ty)))
                    }
                    fn visit_i64<E: Error>(self, v: i64) -> Result<$ty, E> {
                        <$ty>::try_from(v).map_err(|_| {
                            E::invalid_value(Unexpected::Signed(v), &concat!("a ", stringify!($ty)))
                        })
                    }
                    fn visit_u64<E: Error>(self, v: u64) -> Result<$ty, E> {
                        <$ty>::try_from(v).map_err(|_| {
                            E::invalid_value(
                                Unexpected::Unsigned(v),
                                &concat!("a ", stringify!($ty)),
                            )
                        })
                    }
                }
                deserializer.$method(V)
            }
        }
    )*};
}

impl_deserialize_int! {
    i8, deserialize_i8;
    i16, deserialize_i16;
    i32, deserialize_i32;
    i64, deserialize_i64;
    u8, deserialize_u8;
    u16, deserialize_u16;
    u32, deserialize_u32;
    u64, deserialize_u64;
}

impl<'de> Deserialize<'de> for u128 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = u128;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an unsigned 128-bit integer")
            }
            fn visit_u64<E: Error>(self, v: u64) -> Result<u128, E> {
                Ok(v as u128)
            }
            fn visit_i64<E: Error>(self, v: i64) -> Result<u128, E> {
                u128::try_from(v)
                    .map_err(|_| E::invalid_value(Unexpected::Signed(v), &"a u128"))
            }
        }
        deserializer.deserialize_u128(V)
    }
}

impl<'de> Deserialize<'de> for i128 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = i128;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a signed 128-bit integer")
            }
            fn visit_i64<E: Error>(self, v: i64) -> Result<i128, E> {
                Ok(v as i128)
            }
            fn visit_u64<E: Error>(self, v: u64) -> Result<i128, E> {
                Ok(v as i128)
            }
        }
        deserializer.deserialize_i128(V)
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        u64::deserialize(deserializer).map(|v| v as usize)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        i64::deserialize(deserializer).map(|v| v as isize)
    }
}

macro_rules! impl_deserialize_float {
    ($($ty:ty, $method:ident;)*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str("a floating-point number")
                    }
                    fn visit_f64<E: Error>(self, v: f64) -> Result<$ty, E> {
                        Ok(v as $ty)
                    }
                    fn visit_i64<E: Error>(self, v: i64) -> Result<$ty, E> {
                        Ok(v as $ty)
                    }
                    fn visit_u64<E: Error>(self, v: u64) -> Result<$ty, E> {
                        Ok(v as $ty)
                    }
                }
                deserializer.$method(V)
            }
        }
    )*};
}

impl_deserialize_float! {
    f32, deserialize_f32;
    f64, deserialize_f64;
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = char;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a character")
            }
            fn visit_char<E: Error>(self, v: char) -> Result<char, E> {
                Ok(v)
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<char, E> {
                let mut chars = v.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(E::invalid_value(Unexpected::Str(v), &"a single character")),
                }
            }
        }
        deserializer.deserialize_char(V)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(V)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitV;
        impl<'de> Visitor<'de> for UnitV {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitV)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an optional value")
            }
            fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_unit<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Option<T>, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(V(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::VecDeque<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(deserializer).map(Into::into)
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V>(PhantomData<(K, V)>);
        impl<'de, K, V> Visitor<'de> for Vis<K, V>
        where
            K: Deserialize<'de> + Ord,
            V: Deserialize<'de>,
        {
            type Value = std::collections::BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeMap::new();
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

impl<'de, K, V, H> Deserialize<'de> for std::collections::HashMap<K, V, H>
where
    K: Deserialize<'de> + std::hash::Hash + Eq,
    V: Deserialize<'de>,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V, H>(PhantomData<(K, V, H)>);
        impl<'de, K, V, H> Visitor<'de> for Vis<K, V, H>
        where
            K: Deserialize<'de> + std::hash::Hash + Eq,
            V: Deserialize<'de>,
            H: std::hash::BuildHasher + Default,
        {
            type Value = std::collections::HashMap<K, V, H>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out =
                    std::collections::HashMap::with_capacity_and_hasher(0, H::default());
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(deserializer).map(|v| v.into_iter().collect())
    }
}

impl<'de, T, H> Deserialize<'de> for std::collections::HashSet<T, H>
where
    T: Deserialize<'de> + std::hash::Hash + Eq,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(deserializer).map(|v| v.into_iter().collect())
    }
}

macro_rules! impl_deserialize_tuple {
    ($($len:expr => ($($n:tt $t:ident)+),)*) => {$(
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct Vis<$($t),+>(PhantomData<($($t,)+)>);
                impl<'de, $($t: Deserialize<'de>),+> Visitor<'de> for Vis<$($t),+> {
                    type Value = ($($t,)+);
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        write!(f, "a tuple of {} elements", $len)
                    }
                    fn visit_seq<A: SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> Result<Self::Value, A::Error> {
                        Ok(($(
                            match seq.next_element::<$t>()? {
                                Some(v) => v,
                                None => return Err(Error::invalid_length($n, &self)),
                            },
                        )+))
                    }
                }
                deserializer.deserialize_tuple($len, Vis(PhantomData))
            }
        }
    )*};
}

impl_deserialize_tuple! {
    1 => (0 T0),
    2 => (0 T0 1 T1),
    3 => (0 T0 1 T1 2 T2),
    4 => (0 T0 1 T1 2 T2 3 T3),
    5 => (0 T0 1 T1 2 T2 3 T3 4 T4),
    6 => (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5),
    7 => (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5 6 T6),
    8 => (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5 6 T6 7 T7),
    9 => (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5 6 T6 7 T7 8 T8),
    10 => (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5 6 T6 7 T7 8 T8 9 T9),
    11 => (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5 6 T6 7 T7 8 T8 9 T9 10 T10),
    12 => (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5 6 T6 7 T7 8 T8 9 T9 10 T10 11 T11),
}

impl<'de> Deserialize<'de> for std::time::Duration {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = std::time::Duration;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a Duration {secs, nanos} struct")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let secs: u64 = seq
                    .next_element()?
                    .ok_or_else(|| Error::invalid_length(0, &self))?;
                let nanos: u32 = seq
                    .next_element()?
                    .ok_or_else(|| Error::invalid_length(1, &self))?;
                Ok(std::time::Duration::new(secs, nanos))
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut secs: Option<u64> = None;
                let mut nanos: Option<u32> = None;
                while let Some(key) = map.next_key::<String>()? {
                    match key.as_str() {
                        "secs" => secs = Some(map.next_value()?),
                        "nanos" => nanos = Some(map.next_value()?),
                        _ => {
                            map.next_value::<IgnoredAny>()?;
                        }
                    }
                }
                Ok(std::time::Duration::new(
                    secs.ok_or_else(|| Error::missing_field("secs"))?,
                    nanos.ok_or_else(|| Error::missing_field("nanos"))?,
                ))
            }
        }
        deserializer.deserialize_struct("Duration", &["secs", "nanos"], V)
    }
}
