//! Offline shim for the `serde` crate.
//!
//! The build environment has no network access, so this crate
//! reimplements the core serde data model — the `Serialize`/`Serializer`
//! and `Deserialize`/`Deserializer` trait architecture, visitor-based
//! deserialization, and impls for the std types this workspace
//! serializes — plus `serde_derive` proc-macros. Formats written against
//! real serde (the workspace's binary codec, the JSON shim) compile
//! unchanged against this shim.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

// Derive macros live in the same namespace trick real serde uses: the
// trait and the derive share a name but occupy different namespaces.
pub use serde_derive::{Deserialize, Serialize};
