//! Offline shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` — multi-producer multi-consumer
//! bounded/unbounded channels with the same surface the workspace uses
//! (`send`, `recv`, `try_recv`, `recv_timeout`, `iter`, clonable ends,
//! disconnect-on-last-drop semantics). Built on a `Mutex<VecDeque>` and
//! two condvars rather than crossbeam's lock-free internals; correctness
//! over raw speed.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: Option<usize>,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is disconnected"),
            }
        }
    }

    impl<T> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}
    impl std::error::Error for RecvTimeoutError {}

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Creates a bounded MPMC channel; `send` blocks while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                // A zero-capacity crossbeam channel is a rendezvous
                // point; we approximate it with capacity 1 (the sender
                // blocks until the receiver drains the slot).
                match self.shared.cap {
                    Some(cap) if st.queue.len() >= cap.max(1) => {
                        st = self.shared.not_full.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.shared.cap {
                if st.queue.len() >= cap.max(1) {
                    return Err(TrySendError::Full(value));
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = match self.shared.state.lock() {
                Ok(g) => g,
                Err(e) => e.into_inner(),
            };
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap();
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _) = self
                    .shared
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = g;
            }
        }

        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Non-blocking iterator over currently queued messages.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = match self.shared.state.lock() {
                Ok(g) => g,
                Err(e) => e.into_inner(),
            };
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.shared.not_full.notify_all();
            }
        }
    }

    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2).unwrap());
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }

    #[test]
    fn zero_capacity_behaves_as_handoff_not_unbounded() {
        let (tx, rx) = bounded(0);
        tx.send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        let t = thread::spawn(move || tx.send(2).unwrap());
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
    }

    #[test]
    fn mpmc_fanout() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let a = thread::spawn(move || rx.iter().count());
        let b = thread::spawn(move || rx2.iter().count());
        assert_eq!(a.join().unwrap() + b.join().unwrap(), 100);
    }
}
