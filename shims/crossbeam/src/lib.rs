//! Offline shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` — multi-producer multi-consumer
//! bounded/unbounded channels with the same surface the workspace uses
//! (`send`, `recv`, `try_recv`, `recv_timeout`, `iter`, clonable ends,
//! disconnect-on-last-drop semantics).
//!
//! The **unbounded** flavor — the actor mailbox and replication hot path —
//! is a two-lock segmented queue: producers append to a tail segment under
//! the tail lock while consumers drain a head segment under the head lock,
//! so senders and receivers only collide on the brief segment handoff when
//! the head runs dry (consumers swap the whole tail segment in, O(1)).
//! The **bounded** flavor keeps the simpler single Mutex+Condvar design —
//! its capacity handshake needs one predicate anyway and it only carries
//! low-rate control traffic (call replies, quiesce acks).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};
    use std::time::{Duration, Instant};

    // ---------------------------------------------------------------
    // Bounded flavor: single Mutex + two Condvars (capacity handshake).
    // ---------------------------------------------------------------

    struct BoundedState<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Bounded<T> {
        state: Mutex<BoundedState<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: usize,
    }

    // ---------------------------------------------------------------
    // Unbounded flavor: two-lock segmented queue.
    //
    // Invariants:
    // * `len` counts messages in head + tail (fetch_add before the
    //   notify check in send, fetch_sub on every pop).
    // * Receivers hold the head lock from their emptiness check until
    //   `wait()` parks them, and bump `sleepers` under the *tail* lock
    //   after confirming the tail is empty. A sender therefore either
    //   pushed before the check (receiver sees the message) or observes
    //   `sleepers > 0` and acquires the head lock — which it can only
    //   get once the receiver is parked — so the wakeup cannot be lost.
    // * Lock order is head → tail; send takes them one at a time.
    // ---------------------------------------------------------------

    struct Unbounded<T> {
        /// Consumer-side segment.
        head: Mutex<VecDeque<T>>,
        /// Producer-side segment; swapped wholesale into `head` when the
        /// consumer side runs dry.
        tail: Mutex<VecDeque<T>>,
        /// Parked receivers wait here, paired with the `head` mutex.
        not_empty: Condvar,
        len: AtomicUsize,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        /// Receivers parked (or committed to parking) on `not_empty`.
        sleepers: AtomicUsize,
    }

    enum Flavor<T> {
        Bounded(Bounded<T>),
        Unbounded(Unbounded<T>),
    }

    pub struct Sender<T> {
        shared: Arc<Flavor<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Flavor<T>>,
    }

    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is disconnected"),
            }
        }
    }

    impl<T> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}
    impl std::error::Error for RecvTimeoutError {}

    /// Creates an unbounded MPMC channel (two-lock segmented queue).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Flavor::Unbounded(Unbounded {
            head: Mutex::new(VecDeque::new()),
            tail: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            len: AtomicUsize::new(0),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            sleepers: AtomicUsize::new(0),
        }));
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// Creates a bounded MPMC channel; `send` blocks while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Flavor::Bounded(Bounded {
            state: Mutex::new(BoundedState {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            // A zero-capacity crossbeam channel is a rendezvous point; we
            // approximate it with capacity 1 (the sender blocks until the
            // receiver drains the slot).
            cap: cap.max(1),
        }));
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Unbounded<T> {
        /// Wakes a parked receiver if data was published while any
        /// receiver was (about to be) asleep. Taking the head lock first
        /// guarantees the sleeper is parked (its guard released), so the
        /// notification cannot race past it.
        fn wake_receiver(&self) {
            if self.sleepers.load(Ordering::SeqCst) > 0 {
                let _head = lock(&self.head);
                self.not_empty.notify_all();
            }
        }

        fn push(&self, value: T) {
            {
                let mut tail = lock(&self.tail);
                tail.push_back(value);
                // Inside the tail lock: a pop racing the swap must never
                // observe its decrement before this increment (underflow).
                self.len.fetch_add(1, Ordering::SeqCst);
            }
            self.wake_receiver();
        }

        /// Pops under an already-held head lock, refilling the head
        /// segment from the tail when it runs dry. Returns `None` only
        /// when both segments are empty.
        fn pop(&self, head: &mut MutexGuard<'_, VecDeque<T>>) -> Option<T> {
            if let Some(v) = head.pop_front() {
                self.len.fetch_sub(1, Ordering::SeqCst);
                return Some(v);
            }
            let mut tail = lock(&self.tail);
            if tail.is_empty() {
                return None;
            }
            // O(1) segment handoff: the producers' whole backlog becomes
            // the new consumer segment.
            std::mem::swap(&mut **head, &mut *tail);
            drop(tail);
            let v = head.pop_front();
            if v.is_some() {
                self.len.fetch_sub(1, Ordering::SeqCst);
            }
            v
        }
    }

    /// Locks a mutex, riding over poisoning (a panicked worker must not
    /// wedge every other thread on the channel).
    fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        match m.lock() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &*self.shared {
                Flavor::Unbounded(u) => {
                    if u.receivers.load(Ordering::SeqCst) == 0 {
                        return Err(SendError(value));
                    }
                    u.push(value);
                    Ok(())
                }
                Flavor::Bounded(b) => {
                    let mut st = lock(&b.state);
                    loop {
                        if st.receivers == 0 {
                            return Err(SendError(value));
                        }
                        if st.queue.len() < b.cap {
                            break;
                        }
                        st = match b.not_full.wait(st) {
                            Ok(g) => g,
                            Err(e) => e.into_inner(),
                        };
                    }
                    st.queue.push_back(value);
                    drop(st);
                    b.not_empty.notify_one();
                    Ok(())
                }
            }
        }

        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &*self.shared {
                Flavor::Unbounded(u) => {
                    if u.receivers.load(Ordering::SeqCst) == 0 {
                        return Err(TrySendError::Disconnected(value));
                    }
                    u.push(value);
                    Ok(())
                }
                Flavor::Bounded(b) => {
                    let mut st = lock(&b.state);
                    if st.receivers == 0 {
                        return Err(TrySendError::Disconnected(value));
                    }
                    if st.queue.len() >= b.cap {
                        return Err(TrySendError::Full(value));
                    }
                    st.queue.push_back(value);
                    drop(st);
                    b.not_empty.notify_one();
                    Ok(())
                }
            }
        }

        pub fn len(&self) -> usize {
            match &*self.shared {
                Flavor::Unbounded(u) => u.len.load(Ordering::SeqCst),
                Flavor::Bounded(b) => lock(&b.state).queue.len(),
            }
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match &*self.shared {
                Flavor::Unbounded(u) => {
                    u.senders.fetch_add(1, Ordering::SeqCst);
                }
                Flavor::Bounded(b) => {
                    lock(&b.state).senders += 1;
                }
            }
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            match &*self.shared {
                Flavor::Unbounded(u) => {
                    if u.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                        // Wake receivers so they observe the disconnect.
                        let _head = lock(&u.head);
                        u.not_empty.notify_all();
                    }
                }
                Flavor::Bounded(b) => {
                    let mut st = lock(&b.state);
                    st.senders -= 1;
                    if st.senders == 0 {
                        drop(st);
                        b.not_empty.notify_all();
                    }
                }
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            match &*self.shared {
                Flavor::Unbounded(u) => {
                    let mut head = lock(&u.head);
                    loop {
                        if let Some(v) = u.pop(&mut head) {
                            return Ok(v);
                        }
                        {
                            // Re-check emptiness and commit to sleeping
                            // under the tail lock (see struct invariants).
                            let tail = lock(&u.tail);
                            if !tail.is_empty() {
                                continue;
                            }
                            if u.senders.load(Ordering::SeqCst) == 0 {
                                return Err(RecvError);
                            }
                            u.sleepers.fetch_add(1, Ordering::SeqCst);
                        }
                        head = match u.not_empty.wait(head) {
                            Ok(g) => g,
                            Err(e) => e.into_inner(),
                        };
                        u.sleepers.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                Flavor::Bounded(b) => {
                    let mut st = lock(&b.state);
                    loop {
                        if let Some(v) = st.queue.pop_front() {
                            drop(st);
                            b.not_full.notify_one();
                            return Ok(v);
                        }
                        if st.senders == 0 {
                            return Err(RecvError);
                        }
                        st = match b.not_empty.wait(st) {
                            Ok(g) => g,
                            Err(e) => e.into_inner(),
                        };
                    }
                }
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            match &*self.shared {
                Flavor::Unbounded(u) => {
                    let mut head = lock(&u.head);
                    if let Some(v) = u.pop(&mut head) {
                        return Ok(v);
                    }
                    if u.senders.load(Ordering::SeqCst) == 0 {
                        Err(TryRecvError::Disconnected)
                    } else {
                        Err(TryRecvError::Empty)
                    }
                }
                Flavor::Bounded(b) => {
                    let mut st = lock(&b.state);
                    if let Some(v) = st.queue.pop_front() {
                        drop(st);
                        b.not_full.notify_one();
                        return Ok(v);
                    }
                    if st.senders == 0 {
                        Err(TryRecvError::Disconnected)
                    } else {
                        Err(TryRecvError::Empty)
                    }
                }
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            match &*self.shared {
                Flavor::Unbounded(u) => {
                    let mut head = lock(&u.head);
                    loop {
                        if let Some(v) = u.pop(&mut head) {
                            return Ok(v);
                        }
                        {
                            let tail = lock(&u.tail);
                            if !tail.is_empty() {
                                continue;
                            }
                            if u.senders.load(Ordering::SeqCst) == 0 {
                                return Err(RecvTimeoutError::Disconnected);
                            }
                            let now = Instant::now();
                            if now >= deadline {
                                return Err(RecvTimeoutError::Timeout);
                            }
                            u.sleepers.fetch_add(1, Ordering::SeqCst);
                        }
                        let wait = deadline.saturating_duration_since(Instant::now());
                        head = match u.not_empty.wait_timeout(head, wait) {
                            Ok((g, _)) => g,
                            Err(e) => e.into_inner().0,
                        };
                        u.sleepers.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                Flavor::Bounded(b) => {
                    let mut st = lock(&b.state);
                    loop {
                        if let Some(v) = st.queue.pop_front() {
                            drop(st);
                            b.not_full.notify_one();
                            return Ok(v);
                        }
                        if st.senders == 0 {
                            return Err(RecvTimeoutError::Disconnected);
                        }
                        let now = Instant::now();
                        if now >= deadline {
                            return Err(RecvTimeoutError::Timeout);
                        }
                        st = match b.not_empty.wait_timeout(st, deadline - now) {
                            Ok((g, _)) => g,
                            Err(e) => e.into_inner().0,
                        };
                    }
                }
            }
        }

        pub fn len(&self) -> usize {
            match &*self.shared {
                Flavor::Unbounded(u) => u.len.load(Ordering::SeqCst),
                Flavor::Bounded(b) => lock(&b.state).queue.len(),
            }
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Non-blocking iterator over currently queued messages.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            match &*self.shared {
                Flavor::Unbounded(u) => {
                    u.receivers.fetch_add(1, Ordering::SeqCst);
                }
                Flavor::Bounded(b) => {
                    lock(&b.state).receivers += 1;
                }
            }
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            match &*self.shared {
                Flavor::Unbounded(u) => {
                    u.receivers.fetch_sub(1, Ordering::SeqCst);
                }
                Flavor::Bounded(b) => {
                    let mut st = lock(&b.state);
                    st.receivers -= 1;
                    if st.receivers == 0 {
                        drop(st);
                        b.not_full.notify_all();
                    }
                }
            }
        }
    }

    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2).unwrap());
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }

    #[test]
    fn zero_capacity_behaves_as_handoff_not_unbounded() {
        let (tx, rx) = bounded(0);
        tx.send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        let t = thread::spawn(move || tx.send(2).unwrap());
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
    }

    #[test]
    fn mpmc_fanout() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let a = thread::spawn(move || rx.iter().count());
        let b = thread::spawn(move || rx2.iter().count());
        assert_eq!(a.join().unwrap() + b.join().unwrap(), 100);
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
        assert!(matches!(tx.try_send(2), Err(TrySendError::Disconnected(2))));
    }

    #[test]
    fn unbounded_wakeup_is_not_lost_under_races() {
        // Many short ping-pong rounds between a parked receiver and a
        // sender racing the park/notify protocol.
        for _ in 0..200 {
            let (tx, rx) = unbounded::<u32>();
            let t = thread::spawn(move || rx.recv().unwrap());
            tx.send(7).unwrap();
            assert_eq!(t.join().unwrap(), 7);
        }
    }

    #[test]
    fn unbounded_heavy_mpmc_delivers_everything_exactly_once() {
        const SENDERS: usize = 4;
        const RECEIVERS: usize = 4;
        const PER_SENDER: u64 = 5_000;
        let (tx, rx) = unbounded::<u64>();
        let mut producers = Vec::new();
        for s in 0..SENDERS as u64 {
            let tx = tx.clone();
            producers.push(thread::spawn(move || {
                for i in 0..PER_SENDER {
                    tx.send(s * PER_SENDER + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..RECEIVERS {
            let rx = rx.clone();
            consumers.push(thread::spawn(move || {
                let mut got: Vec<u64> = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        all.sort_unstable();
        let expected: Vec<u64> = (0..SENDERS as u64 * PER_SENDER).collect();
        assert_eq!(all, expected, "every message exactly once");
    }

    #[test]
    fn unbounded_len_tracks_segment_handoff() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        assert_eq!(tx.len(), 10);
        assert_eq!(rx.recv(), Ok(0)); // forces the head<->tail swap
        assert_eq!(rx.len(), 9);
        for _ in 0..9 {
            rx.recv().unwrap();
        }
        assert!(rx.is_empty());
    }
}
